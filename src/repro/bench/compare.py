"""Baseline comparison: structured regressions between two bench artifacts.

``compare(baseline, current, tolerance)`` matches benchmarks by name and
classifies each one:

``pass``
    ``current_best / baseline_best`` at or below ``tolerance · warn_fraction``.
``warn``
    Above the warn threshold but within ``tolerance`` — noise territory worth
    a look, not a failure.
``fail``
    Above ``tolerance``, or the benchmark's own verdict flipped from passing
    to failing — a perf *or* correctness regression.
``missing``
    In the baseline but not in the current artifact (treated as a failure:
    a benchmark silently dropping out must not look like a speedup).
``new``
    In the current artifact only (never a failure).

Wall times are compared on the *best* (minimum) measured repeat — the
noise-robust basis — and the tolerance is deliberately generous on CI
runners (the perf gate ships 2.5×): the gate exists to catch a 3× slowdown
in the heuristic, not 10% jitter.

Records that carry a ``fit_exponent`` metric (the stress-xl scaling curve)
are additionally gated on *shape*: the current exponent may exceed the
baseline exponent by at most ``exponent_margin``.  The exponent is
machine-independent where wall times are not — a slower CI runner shifts the
whole curve up without bending it — so this check catches complexity
regressions (an O(n²) path sneaking back in) that a generous wall-time
tolerance would wave through.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.bench.artifact import BenchArtifact
from repro.errors import ConfigurationError
from repro.metrics.report import render_table

__all__ = ["RegressionEntry", "ComparisonReport", "compare"]


@dataclass(frozen=True, slots=True)
class RegressionEntry:
    """Verdict for one benchmark of the comparison."""

    name: str
    #: ``pass`` / ``warn`` / ``fail`` / ``missing`` / ``new``.
    status: str
    baseline_best: float | None = None
    current_best: float | None = None
    #: ``current_best / baseline_best`` (``None`` for missing/new entries).
    ratio: float | None = None
    detail: str = ""

    @property
    def is_regression(self) -> bool:
        """``True`` when the entry should fail a gate."""
        return self.status in ("fail", "missing")

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "status": self.status,
            "baseline_best": self.baseline_best,
            "current_best": self.current_best,
            "ratio": self.ratio,
            "detail": self.detail,
        }


@dataclass(slots=True)
class ComparisonReport:
    """Structured outcome of one baseline comparison."""

    tolerance: float
    warn_fraction: float
    min_delta: float = 0.05
    exponent_margin: float = 0.25
    entries: list[RegressionEntry] = field(default_factory=list)

    @property
    def regressions(self) -> list[RegressionEntry]:
        """Entries that fail the gate (``fail`` and ``missing``)."""
        return [entry for entry in self.entries if entry.is_regression]

    @property
    def warnings(self) -> list[RegressionEntry]:
        """Entries in the warn band."""
        return [entry for entry in self.entries if entry.status == "warn"]

    @property
    def ok(self) -> bool:
        """``True`` when no entry is a regression."""
        return not self.regressions

    def render(self) -> str:
        """ASCII report (what ``repro-lb bench compare`` prints)."""
        rows = []
        for entry in self.entries:
            rows.append(
                [
                    entry.name,
                    "-" if entry.baseline_best is None else f"{entry.baseline_best:.4f}",
                    "-" if entry.current_best is None else f"{entry.current_best:.4f}",
                    "-" if entry.ratio is None else f"{entry.ratio:.2f}x",
                    entry.status.upper(),
                    entry.detail,
                ]
            )
        table = render_table(
            ["benchmark", "baseline best (s)", "current best (s)", "ratio", "status", "detail"],
            rows,
        )
        verdict = "OK" if self.ok else f"REGRESSION ({len(self.regressions)} benchmark(s))"
        return (
            f"bench compare: tolerance {self.tolerance:g}x "
            f"(warn above {self.tolerance * self.warn_fraction:g}x, "
            f"noise floor {self.min_delta:g}s)\n"
            f"{table}\nverdict: {verdict}"
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "tolerance": float(self.tolerance),
            "warn_fraction": float(self.warn_fraction),
            "min_delta": float(self.min_delta),
            "exponent_margin": float(self.exponent_margin),
            "ok": self.ok,
            "entries": [entry.to_dict() for entry in self.entries],
        }


def _coerce(artifact: BenchArtifact | Mapping[str, Any], role: str) -> BenchArtifact:
    if isinstance(artifact, BenchArtifact):
        return artifact
    if isinstance(artifact, Mapping):
        return BenchArtifact.from_dict(artifact)
    raise ConfigurationError(
        f"compare() expects a BenchArtifact or its dict form as the {role}, "
        f"got {type(artifact).__name__}"
    )


def compare(
    baseline: BenchArtifact | Mapping[str, Any],
    current: BenchArtifact | Mapping[str, Any],
    tolerance: float = 2.5,
    *,
    warn_fraction: float = 0.8,
    min_delta: float = 0.05,
    exponent_margin: float = 0.25,
) -> ComparisonReport:
    """Classify every benchmark of ``current`` against ``baseline``.

    ``tolerance`` is the slowdown ratio above which a benchmark fails
    (strictly greater; a ratio exactly at the tolerance passes as ``warn``).
    ``warn_fraction`` places the warn threshold at
    ``tolerance * warn_fraction``.  ``min_delta`` (seconds) is an absolute
    noise floor: a benchmark whose best time grew by less than this never
    fails or warns on the ratio, however large — sub-millisecond tiny-preset
    benchmarks would otherwise turn scheduler jitter into gate failures.
    Verdict regressions (PASS flipping to FAIL) are exempt from the floor.
    Pass ``min_delta=0`` for strict ratio semantics.

    When a baseline record carries a ``fit_exponent`` metric, the matching
    current record must carry one too and may exceed the baseline exponent by
    at most ``exponent_margin`` — the scaling-shape gate (see the module
    docstring).  The exponent gate ignores the wall-time noise floor: it is a
    dimensionless slope, not a duration.
    """
    if tolerance <= 1.0:
        raise ConfigurationError(f"tolerance must exceed 1.0, got {tolerance}")
    if not 0.0 < warn_fraction <= 1.0:
        raise ConfigurationError(
            f"warn_fraction must be in (0, 1], got {warn_fraction}"
        )
    if min_delta < 0:
        raise ConfigurationError(f"min_delta must be non-negative, got {min_delta}")
    if exponent_margin < 0:
        raise ConfigurationError(
            f"exponent_margin must be non-negative, got {exponent_margin}"
        )
    baseline = _coerce(baseline, "baseline")
    current = _coerce(current, "current artifact")
    if baseline.preset != current.preset:
        raise ConfigurationError(
            f"Preset mismatch: baseline ran {baseline.preset!r} but the current "
            f"artifact ran {current.preset!r}; wall times are not comparable"
        )

    entries: list[RegressionEntry] = []
    for base_record in baseline.records:
        record = current.record(base_record.name)
        if record is None:
            entries.append(
                RegressionEntry(
                    name=base_record.name,
                    status="missing",
                    baseline_best=base_record.best,
                    detail="benchmark absent from the current artifact",
                )
            )
            continue
        baseline_best = base_record.best
        current_best = record.best
        ratio = current_best / baseline_best if baseline_best > 0 else float("inf")
        below_floor = (current_best - baseline_best) < min_delta
        base_exponent = base_record.metrics.get("fit_exponent")
        current_exponent = record.metrics.get("fit_exponent")
        if record.passed is False and base_record.passed is not False:
            status, detail = "fail", "experiment verdict regressed to FAIL"
        elif base_exponent is not None and current_exponent is None:
            status, detail = "fail", "scaling exponent missing from the current record"
        elif (
            base_exponent is not None
            and current_exponent > base_exponent + exponent_margin
        ):
            status = "fail"
            detail = (
                f"scaling exponent {current_exponent:.3f} exceeds baseline "
                f"{base_exponent:.3f} + margin {exponent_margin:g}"
            )
        elif below_floor:
            status, detail = "pass", "" if ratio <= 1.0 else "below the min-delta noise floor"
        elif ratio > tolerance:
            status, detail = "fail", f"slower than {tolerance:g}x the baseline"
        elif ratio > tolerance * warn_fraction:
            status, detail = "warn", "within tolerance but above the warn threshold"
        else:
            status, detail = "pass", ""
        entries.append(
            RegressionEntry(
                name=base_record.name,
                status=status,
                baseline_best=baseline_best,
                current_best=current_best,
                ratio=ratio,
                detail=detail,
            )
        )
    for record in current.records:
        if record.name not in {entry.name for entry in entries}:
            entries.append(
                RegressionEntry(
                    name=record.name,
                    status="new",
                    current_best=record.best,
                    detail="no baseline entry",
                )
            )
    # Keep a stable, readable order regardless of artifact ordering.
    entries.sort(key=lambda entry: entry.name)
    return ComparisonReport(
        tolerance=float(tolerance),
        warn_fraction=float(warn_fraction),
        min_delta=float(min_delta),
        exponent_margin=float(exponent_margin),
        entries=entries,
    )
