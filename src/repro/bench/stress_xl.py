"""The ``stress-xl`` bench tier: order-of-magnitude scaling curves.

The ROADMAP north-star asks for balancing at N=5k–50k tasks; this tier
measures how the two hot stages — the initial scheduler and the paper
balancer on the flat-array kernels (:mod:`repro.core.kernels`) — scale with
N at **fixed M**, and records the result as a first-class, diffable
``repro-bench/1`` artifact rather than a one-off timing.

Each tier point runs the full stage pair on a synthetic workload
(``N`` tasks, ``M=16`` processors, utilisation 0.30, a ``base_period=200``
period ladder so the largest N stays schedulable) and is stored as a record
named ``XL-<N>`` whose wall times are the measured *balance* repeats (the
paper's algorithm — the curve the tentpole optimises).  A final synthetic
record named ``XL-curve`` carries the fitted log–log scaling exponent of
best balance time versus N (``time ∝ N^exponent``); its ``passed`` verdict
requires the exponent to stay at or below :data:`EXPONENT_CEILING`.
``repro-lb bench compare`` additionally gates the exponent against the
committed baseline (``BENCH_stress_xl_baseline.json``) through its
``exponent_margin`` — a run can therefore fail on *shape* (the curve bending
upward) even when every individual wall time still passes the tolerance.

The balancer runs with ``verify_result``/``attach_communications`` disabled:
the tier isolates the steady-state hot path, not the (separately benched)
communications synthesis and feasibility sweep.
"""

from __future__ import annotations

import math
import time

import numpy as np

from repro.bench.artifact import BenchArtifact, BenchmarkRecord
from repro.core.load_balancer import LoadBalancerOptions, balance_schedule
from repro.errors import ConfigurationError
from repro.scheduling.heuristic import SchedulerOptions, schedule_application
from repro.workloads.generator import generate_workload
from repro.workloads.seeding import derive_seed
from repro.workloads.spec import WorkloadSpec

__all__ = [
    "XL_PRESETS",
    "XL_CURVE_NAME",
    "EXPONENT_CEILING",
    "run_stress_xl_bench",
    "fit_scaling_exponent",
]

#: Seed stream claimed by the stress-xl workload generator (see
#: :func:`repro.workloads.seeding.derive_seed`).
XL_SEED_STREAM = 0x584C5354  # "XLST"

#: Task counts of each tier, at fixed M: ``smoke`` is the CI-sized rung of
#: the same curve (sub-minute), ``xl`` the committed-baseline scale.
XL_PRESETS: dict[str, tuple[int, ...]] = {
    "smoke": (200, 400, 800),
    "xl": (1000, 5000, 20000),
}

#: Fixed platform of the whole tier (the curve varies N only).
PROCESSOR_COUNT = 16
UTILIZATION = 0.30
BASE_PERIOD = 200

#: Name of the synthetic curve record carrying the fitted exponent.
XL_CURVE_NAME = "XL-curve"

#: Acceptance ceiling on the fitted ``time ∝ N^exponent`` exponent of the
#: balance stage.  The per-block candidate loop is O(M·N_blocks) block
#: evaluations with near-logarithmic per-query cost on the array kernels;
#: allowing up to quadratic growth keeps the gate robust to fit noise on the
#: smoke rung while still catching an O(n²) regression of the seeding or
#: query paths (which lands well above 2 once the linear factors return).
EXPONENT_CEILING = 2.0


def fit_scaling_exponent(
    task_counts: list[int], seconds: list[float]
) -> tuple[float, float]:
    """Least-squares slope of ``log t`` vs ``log N`` and its ``r²``.

    Returns ``(exponent, r_squared)``.  Requires at least two points and
    positive times; degenerate fits (zero variance) report ``r² = 0``.
    """
    if len(task_counts) != len(seconds) or len(task_counts) < 2:
        raise ConfigurationError(
            "Scaling fit needs two or more (task_count, seconds) points, got "
            f"{len(task_counts)} and {len(seconds)}"
        )
    if any(value <= 0 for value in seconds):
        raise ConfigurationError("Scaling fit needs positive wall times")
    log_n = np.log(np.asarray(task_counts, dtype=np.float64))
    log_t = np.log(np.asarray(seconds, dtype=np.float64))
    slope, intercept = np.polyfit(log_n, log_t, 1)
    predicted = slope * log_n + intercept
    residual = float(np.sum((log_t - predicted) ** 2))
    total = float(np.sum((log_t - log_t.mean()) ** 2))
    r_squared = 1.0 - residual / total if total > 0 else 0.0
    return float(slope), float(r_squared)


def run_stress_xl_bench(
    *,
    preset: str = "smoke",
    repeats: int = 2,
    seed: int = 2008,
    engine: str = "array",
) -> BenchArtifact:
    """Run the stress-xl scaling tier and return its artifact.

    One record per tier point (``XL-<N>``: balance wall times per repeat,
    schedule seconds and move statistics in the metrics) plus the
    ``XL-curve`` record whose ``fit_exponent``/``r_squared`` metrics carry
    the scaling fit over the best balance times.
    """
    if preset not in XL_PRESETS:
        raise ConfigurationError(
            f"Unknown stress-xl preset {preset!r}; expected one of {sorted(XL_PRESETS)}"
        )
    if repeats < 1:
        raise ConfigurationError(f"repeats must be >= 1, got {repeats}")
    task_counts = XL_PRESETS[preset]
    options = LoadBalancerOptions(
        attach_communications=False,
        verify_result=False,
        retry_until_feasible=False,
        engine=engine,
    )
    scheduler_options = SchedulerOptions(attach_communications=False)

    records: list[BenchmarkRecord] = []
    best_balance: list[float] = []
    curve_started = time.perf_counter()
    for index, task_count in enumerate(task_counts):
        spec = WorkloadSpec(
            task_count=task_count,
            processor_count=PROCESSOR_COUNT,
            utilization=UTILIZATION,
            base_period=BASE_PERIOD,
            seed=derive_seed(seed, index, stream=XL_SEED_STREAM),
            label=f"stress-xl-N{task_count}-M{PROCESSOR_COUNT}",
        )
        workload = generate_workload(spec)
        schedule_started = time.perf_counter()
        schedule = schedule_application(
            workload.graph, workload.architecture, scheduler_options
        )
        schedule_seconds = time.perf_counter() - schedule_started
        wall_times: list[float] = []
        result = None
        for _repeat in range(repeats):
            balance_started = time.perf_counter()
            result = balance_schedule(schedule, options)
            wall_times.append(time.perf_counter() - balance_started)
        assert result is not None
        moved = sum(
            1
            for decision in result.decisions
            if decision.chosen_processor != decision.block.processor
        )
        records.append(
            BenchmarkRecord(
                name=f"XL-{task_count}",
                title=(
                    f"balance N={task_count} on M={PROCESSOR_COUNT} "
                    f"(engine={engine})"
                ),
                wall_times=wall_times,
                metrics={
                    "task_count": float(task_count),
                    "processor_count": float(PROCESSOR_COUNT),
                    "schedule_seconds": schedule_seconds,
                    "balance_seconds_best": min(wall_times),
                    "block_count": float(len(result.blocks)),
                    "moved_blocks": float(moved),
                    "evaluations": float(result.evaluations),
                },
                passed=True,
            )
        )
        best_balance.append(min(wall_times))

    exponent, r_squared = fit_scaling_exponent(list(task_counts), best_balance)
    records.append(
        BenchmarkRecord(
            name=XL_CURVE_NAME,
            title=(
                f"balance-time scaling over N={list(task_counts)} "
                f"(time ∝ N^{exponent:.2f})"
            ),
            wall_times=[time.perf_counter() - curve_started],
            metrics={
                "fit_exponent": exponent,
                "r_squared": r_squared,
                "exponent_ceiling": EXPONENT_CEILING,
                "points": float(len(task_counts)),
            },
            passed=bool(exponent <= EXPONENT_CEILING and math.isfinite(exponent)),
        )
    )

    return BenchArtifact.now(
        preset=f"stress-xl-{preset}",
        config={
            "tier": "stress-xl",
            "preset": preset,
            "task_counts": list(task_counts),
            "processor_count": PROCESSOR_COUNT,
            "utilization": UTILIZATION,
            "base_period": BASE_PERIOD,
            "repeats": repeats,
            "seed": seed,
            "engine": engine,
            "exponent_ceiling": EXPONENT_CEILING,
        },
        records=records,
        notes=[
            f"stress-xl {preset}: best balance seconds {best_balance} over "
            f"N={list(task_counts)}, fitted exponent {exponent:.3f} "
            f"(r²={r_squared:.3f}, ceiling {EXPONENT_CEILING:g})",
        ],
    )
