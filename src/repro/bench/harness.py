"""The benchmark harness: presets, warmup/repeat control, artifact assembly.

``run_benchmarks(preset="tiny")`` runs every registered benchmark (or a
subset) under one of the bench presets, timing each artefact regeneration
with :func:`repro.timing.measure` — the same instrumentation the pipeline's
stage timings use — and returns the :class:`~repro.bench.artifact.BenchArtifact`
ready to print, save or compare.

Bench presets name *intents* and map onto the experiment presets of
:mod:`repro.experiments.configs`:

========  =================  =======================================
bench     experiment preset  meaning
========  =================  =======================================
tiny      tiny               sub-second; CI perf gate and smoke runs
paper     quick              the scale EXPERIMENTS.md tables use
stress    full               minutes; paper-grade campaign scale
========  =================  =======================================
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.bench.artifact import BenchArtifact, BenchmarkRecord
from repro.bench.registry import available_benchmarks, benchmark_info
from repro.errors import ConfigurationError
from repro.timing import measure

__all__ = ["BENCH_PRESETS", "run_benchmarks"]

#: Bench preset name -> experiment preset name.
BENCH_PRESETS: dict[str, str] = {"tiny": "tiny", "paper": "quick", "stress": "full"}


def _resolve_preset(preset: str) -> str:
    try:
        return BENCH_PRESETS[preset]
    except KeyError:
        raise ConfigurationError(
            f"Unknown bench preset {preset!r}; expected one of {sorted(BENCH_PRESETS)}"
        ) from None


def run_benchmarks(
    names: Sequence[str] | None = None,
    *,
    preset: str = "tiny",
    warmup: int = 1,
    repeats: int = 3,
    notes: Sequence[str] = (),
) -> BenchArtifact:
    """Run benchmarks under ``preset`` and return the artifact.

    ``names`` defaults to every registered benchmark.  Each benchmark's
    experiment runner is called ``warmup`` times unmeasured (imports, caches)
    and then ``repeats`` times measured; the artifact stores every measured
    wall time plus the key metrics and verdict of the last repeat.
    """
    if warmup < 0:
        raise ConfigurationError(f"warmup must be non-negative, got {warmup}")
    if repeats < 1:
        raise ConfigurationError(f"repeats must be at least 1, got {repeats}")
    experiment_preset = _resolve_preset(preset)
    selected = tuple(names) if names else available_benchmarks()
    # Resolve every name before running anything: an unknown benchmark must
    # fail fast, not after minutes of earlier benchmarks whose measurements
    # would be discarded.
    specs = [benchmark_info(name) for name in selected]

    records: list[BenchmarkRecord] = []
    for name, spec in zip(selected, specs, strict=True):
        for _ in range(warmup):
            spec.run(experiment_preset)
        wall_times: list[float] = []
        result = None
        for _ in range(repeats):
            elapsed, result = measure(lambda spec=spec: spec.run(experiment_preset))
            wall_times.append(elapsed)
        records.append(
            BenchmarkRecord(
                name=name,
                title=spec.title,
                wall_times=wall_times,
                metrics=spec.metrics(result),
                passed=result.passed,
                warmup=warmup,
            )
        )

    return BenchArtifact.now(
        preset=preset,
        config={
            "names": list(selected),
            "experiment_preset": experiment_preset,
            "warmup": warmup,
            "repeats": repeats,
        },
        records=records,
        notes=list(notes),
    )
