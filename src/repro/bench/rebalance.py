"""The ``rebalance`` bench tier: incremental repair vs from-scratch rebuild.

Pins the point of the churn pipeline: for a small delta against a large
balanced schedule, :meth:`repro.api.Pipeline.rebalance` must be much
cheaper than re-running the whole pipeline on the post-delta workload.

The tier builds one large prior (N tasks on M processors, the paper
balancer), generates ``deltas`` independent single-task arrivals against
it, and times both paths per delta — the incremental repair and the
from-scratch provided-kind pipeline on the identical post-delta workload —
while cross-checking the feasibility verdicts.  The outcome is the usual
``repro-bench/1`` artifact: one record named ``RBL`` under preset
``"rebalance"`` whose ``passed`` verdict requires the speedup floor *and*
full verdict agreement.  ``BENCH_rebalance_baseline.json`` in the repo
root pins the measured ratio for ``repro-lb bench compare``.
"""

from __future__ import annotations

import random
import time

from repro.api import Pipeline, PipelineConfig, RunResult
from repro.api.config import ReportStage, VerifyStage, WorkloadStage
from repro.bench.artifact import BenchArtifact, BenchmarkRecord
from repro.churn.deltas import AddTask
from repro.errors import ConfigurationError, InfeasibleError
from repro.workloads.seeding import derive_seed
from repro.workloads.spec import WorkloadSpec

__all__ = ["REBALANCE_BENCH_NAME", "run_rebalance_bench"]

#: Record name of the rebalance tier inside its ``repro-bench/1`` artifact.
REBALANCE_BENCH_NAME = "RBL"

#: Seed stream claimed by the bench's arrival-delta generator (see
#: :func:`repro.workloads.seeding.derive_seed`).
REBALANCE_SEED_STREAM = 0x5242414C  # "RBAL"

#: The acceptance floor: incremental repair must be at least this much
#: faster than the from-scratch pipeline for single-task deltas.
SPEEDUP_FLOOR = 3.0


def _arrival_deltas(
    prior: RunResult, count: int, seed: int
) -> list[AddTask]:
    """``count`` independent single-task arrivals against the prior workload."""
    graph = prior.balanced_schedule.graph
    rng = random.Random(derive_seed(seed, 0, stream=REBALANCE_SEED_STREAM))
    periods = graph.distinct_periods()
    deltas = []
    for index in range(count):
        period = int(rng.choice(periods))
        deltas.append(
            AddTask(
                name=f"bench_arrival{index}",
                period=period,
                wcet=round(max(0.01, rng.uniform(0.02, 0.06) * period), 2),
            )
        )
    return deltas


def run_rebalance_bench(
    *,
    task_count: int = 400,
    processor_count: int = 8,
    deltas: int = 8,
    repeats: int = 2,
    seed: int = 2008,
    utilization: float = 0.30,
) -> BenchArtifact:
    """Run the rebalance-vs-scratch comparison and return its artifact.

    ``wall_times`` holds the total incremental-repair seconds of each
    measured repeat (one repeat = all ``deltas`` repaired once); the
    from-scratch totals land in the metrics, and ``speedup`` is the ratio
    of the best repeats.  ``passed`` requires ``speedup >= 3`` *and* verdict
    agreement on every delta.
    """
    if deltas < 1:
        raise ConfigurationError(f"deltas must be >= 1, got {deltas}")
    if repeats < 1:
        raise ConfigurationError(f"repeats must be >= 1, got {repeats}")
    spec = WorkloadSpec(
        task_count=task_count,
        processor_count=processor_count,
        utilization=utilization,
        seed=seed,
        label=f"rebalance-bench-N{task_count}-M{processor_count}",
    )
    config = PipelineConfig.synthetic(spec)
    pipeline = Pipeline(config)
    prior = pipeline.run()
    if not prior.feasible:
        raise ConfigurationError(
            f"rebalance bench prior (N={task_count}, M={processor_count}, "
            f"seed={seed}) is not schedulable; pick another seed"
        )
    arrival_deltas = _arrival_deltas(prior, deltas, seed)

    scratch_config = PipelineConfig(
        workload=WorkloadStage(kind="provided"),
        schedule=config.schedule,
        balance=config.balance,
        verify=VerifyStage(enabled=True, check_memory=False),
        report=ReportStage(enabled=False),
        label=f"{config.label}-scratch",
    )

    rebalance_totals: list[float] = []
    scratch_totals: list[float] = []
    agreements = 0
    checked = 0
    for repeat in range(repeats):
        rebalance_total = 0.0
        scratch_total = 0.0
        for delta in arrival_deltas:
            started = time.perf_counter()
            repaired = pipeline.rebalance(prior, delta)
            rebalance_total += time.perf_counter() - started

            post_graph, post_architecture = delta.apply(
                prior.balanced_schedule.graph, prior.balanced_schedule.architecture
            )
            started = time.perf_counter()
            try:
                scratch = Pipeline(
                    scratch_config, graph=post_graph, architecture=post_architecture
                ).run()
                scratch_feasible = bool(scratch.feasible)
            except InfeasibleError:
                scratch_feasible = False
            scratch_total += time.perf_counter() - started

            if repeat == 0:
                checked += 1
                if bool(repaired.feasible) == scratch_feasible:
                    agreements += 1
        rebalance_totals.append(rebalance_total)
        scratch_totals.append(scratch_total)

    best_rebalance = min(rebalance_totals)
    best_scratch = min(scratch_totals)
    speedup = (best_scratch / best_rebalance) if best_rebalance > 0 else float("inf")
    agreement = (agreements / checked) if checked else 0.0
    record = BenchmarkRecord(
        name=REBALANCE_BENCH_NAME,
        title=(
            f"incremental rebalance vs from-scratch: {deltas} single-task "
            f"arrivals against N={task_count}/M={processor_count}"
        ),
        wall_times=rebalance_totals,
        metrics={
            "deltas": float(deltas),
            "task_count": float(task_count),
            "processor_count": float(processor_count),
            "rebalance_seconds_best": best_rebalance,
            "scratch_seconds_best": best_scratch,
            "rebalance_ms_per_delta": best_rebalance / deltas * 1000.0,
            "scratch_ms_per_delta": best_scratch / deltas * 1000.0,
            "speedup": speedup,
            "verdict_agreement": agreement,
        },
        passed=(speedup >= SPEEDUP_FLOOR and agreement == 1.0),
    )
    return BenchArtifact.now(
        preset="rebalance",
        config={
            "tier": "rebalance",
            "task_count": task_count,
            "processor_count": processor_count,
            "utilization": utilization,
            "seed": seed,
            "deltas": deltas,
            "repeats": repeats,
            "speedup_floor": SPEEDUP_FLOOR,
        },
        records=[record],
        notes=[
            f"rebalance tier: {deltas} deltas, best repair "
            f"{best_rebalance:.3f}s vs scratch {best_scratch:.3f}s "
            f"(speedup {speedup:.1f}x, floor {SPEEDUP_FLOOR:g}x), "
            f"verdict agreement {agreement:.3f}",
        ],
    )
