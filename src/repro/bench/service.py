"""The ``service`` bench tier: load-test the balancing service end to end.

Unlike the solver benchmarks in :mod:`repro.bench.registry` (one function
timed in-process), this tier measures the *service* — a real
:class:`~repro.service.server.ServiceThread` driven by concurrent
:class:`~repro.service.client.ServiceClient` threads over real sockets.  The
workload mix rotates each client through a small pool of unique configs
(client ``i`` starts at offset ``i``), so the run exercises both cold
executions and repeated-config cache hits, and concurrent submissions give
the micro-batcher real batches to coalesce.

The outcome is the same versioned ``repro-bench/1`` artifact the perf gate
already knows how to compare: one record named ``SVC`` under preset
``"service"``, with throughput (requests/sec), nearest-rank p50/p99
latency, cache hit rate, batch statistics, and the ``byte_identical``
metric asserting the service/direct result contract of
:mod:`repro.service.protocol` on every unique config in the mix.
"""

from __future__ import annotations

import json
import math
import threading
import time
from typing import Any

from repro.api import Pipeline, PipelineConfig
from repro.bench.artifact import BenchArtifact, BenchmarkRecord
from repro.errors import ConfigurationError, ReproError
from repro.service.client import ServiceClient, wait_until_ready
from repro.service.protocol import canonical_result_bytes, deterministic_result_dict
from repro.service.server import ServiceThread

__all__ = ["SERVICE_BENCH_NAME", "service_workload_mix", "run_service_bench"]

#: Record name of the service tier inside its ``repro-bench/1`` artifact.
SERVICE_BENCH_NAME = "SVC"


def service_workload_mix(
    preset: str = "tiny", unique: int = 4
) -> list[tuple[PipelineConfig, dict[str, Any]]]:
    """Pick ``unique`` schedulable configs from the scenario grid.

    Candidates come from :func:`~repro.scenarios.sweep.sweep_pipeline_configs`
    (paper balancer only — the mix varies scenarios, not policies).  Each one
    is validated by running the pipeline directly; unschedulable draws are
    skipped rather than poisoning the bench with failures, and the direct
    run's ``repro-run/1`` dict rides along as the byte-identity reference.
    """
    from repro.scenarios.sweep import sweep_pipeline_configs

    if unique < 1:
        raise ConfigurationError(f"unique must be >= 1, got {unique}")
    mix: list[tuple[PipelineConfig, dict[str, Any]]] = []
    seen: set[str] = set()
    for config in sweep_pipeline_configs(preset, balancers=("paper",)):
        fingerprint = config.fingerprint()
        if fingerprint in seen:
            continue
        seen.add(fingerprint)
        try:
            reference = Pipeline(config).run().to_dict()
        except ReproError:
            continue
        mix.append((config, reference))
        if len(mix) >= unique:
            break
    if not mix:
        raise ConfigurationError(
            f"no schedulable configs found in sweep preset {preset!r}"
        )
    return mix


def _nearest_rank(sorted_values: list[float], percentile: float) -> float:
    """Nearest-rank percentile of an ascending-sorted non-empty list."""
    rank = math.ceil(percentile / 100.0 * len(sorted_values))
    return sorted_values[max(rank, 1) - 1]


def run_service_bench(
    *,
    clients: int = 8,
    requests_per_client: int = 10,
    unique: int = 4,
    preset: str = "tiny",
    jobs: int | None = None,
    pool: str = "process",
    max_batch: int = 16,
    batch_window_ms: float = 5.0,
) -> BenchArtifact:
    """Run the service load test and return its ``repro-bench/1`` artifact.

    Spins up one :class:`ServiceThread`, fires ``clients`` threads (each with
    its own keep-alive :class:`ServiceClient` and a rotation offset into the
    config mix), then folds wall-clock, per-request latencies, server stats
    and the byte-identity probe into a single ``SVC`` record under preset
    ``"service"`` — comparable by ``repro-lb bench compare`` like any other
    bench artifact.
    """
    if clients < 1:
        raise ConfigurationError(f"clients must be >= 1, got {clients}")
    if requests_per_client < 1:
        raise ConfigurationError(
            f"requests_per_client must be >= 1, got {requests_per_client}"
        )
    mix = service_workload_mix(preset, unique)
    configs = [config.to_dict() for config, _reference in mix]

    latencies: list[list[float]] = [[] for _ in range(clients)]
    errors = [0] * clients
    barrier = threading.Barrier(clients + 1)

    def drive(index: int, host: str, port: int) -> None:
        with ServiceClient(host, port) as client:
            barrier.wait()
            for step in range(requests_per_client):
                body = configs[(index + step) % len(configs)]
                started = time.perf_counter()
                try:
                    job = client.submit(body, wait=True)
                    if job.get("status") != "done":
                        errors[index] += 1
                except ReproError:
                    errors[index] += 1
                latencies[index].append(time.perf_counter() - started)

    handle = ServiceThread(
        pool=pool,
        jobs=jobs,
        max_batch=max_batch,
        batch_window_ms=batch_window_ms,
    )
    with handle:
        wait_until_ready(handle.host, handle.port)
        threads = [
            threading.Thread(
                target=drive, args=(index, handle.host, handle.port), daemon=True
            )
            for index in range(clients)
        ]
        for thread in threads:
            thread.start()
        barrier.wait()
        clock_start = time.perf_counter()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - clock_start

        # Byte-identity probe: every cached result must match its direct-run
        # reference after dropping the volatile wall-clock keys.
        identical = 0
        probed = 0
        with ServiceClient(handle.host, handle.port) as client:
            for config, reference in mix:
                cached = client.cached_result(config.fingerprint())
                if cached is None:
                    continue
                probed += 1
                served = deterministic_result_dict(json.loads(cached))
                direct = deterministic_result_dict(reference)
                if canonical_result_bytes(served) == canonical_result_bytes(direct):
                    identical += 1
            stats = client.stats()

    flat = sorted(second for bucket in latencies for second in bucket)
    total_requests = len(flat)
    total_errors = sum(errors)
    cache = stats.get("cache", {})
    batcher = stats.get("batcher", {})
    record = BenchmarkRecord(
        name=SERVICE_BENCH_NAME,
        title=(
            f"service load test: {clients} clients x {requests_per_client} requests, "
            f"{len(mix)} unique configs ({pool} pool)"
        ),
        wall_times=[elapsed],
        metrics={
            "requests": float(total_requests),
            "errors": float(total_errors),
            "requests_per_sec": (total_requests / elapsed) if elapsed > 0 else 0.0,
            "p50_ms": _nearest_rank(flat, 50.0) * 1000.0,
            "p99_ms": _nearest_rank(flat, 99.0) * 1000.0,
            "mean_ms": (sum(flat) / total_requests) * 1000.0,
            "max_ms": flat[-1] * 1000.0,
            "cache_hit_rate": float(cache.get("hit_rate", 0.0)),
            "cache_hits": float(cache.get("hits", 0)),
            "batches": float(batcher.get("batches", 0)),
            "max_batch": float(batcher.get("max_batch", 0)),
            "mean_batch": float(batcher.get("mean_batch", 0.0)),
            "coalesced": float(batcher.get("coalesced", 0)),
            "byte_identical": (identical / probed) if probed else 0.0,
        },
        passed=(total_errors == 0 and probed == identical and probed > 0),
    )
    return BenchArtifact.now(
        preset="service",
        config={
            "tier": "service",
            "clients": clients,
            "requests_per_client": requests_per_client,
            "unique_configs": len(mix),
            "workload_preset": preset,
            "pool": pool,
            "jobs": handle.service.workers if handle.service is not None else jobs,
            "max_batch": max_batch,
            "batch_window_ms": batch_window_ms,
        },
        records=[record],
        notes=[
            f"service tier: {total_requests} requests over {elapsed:.3f}s "
            f"({total_requests / elapsed if elapsed else 0.0:.1f} req/s), "
            f"cache hit rate {cache.get('hit_rate', 0.0):.3f}, "
            f"byte_identical {record.metrics['byte_identical']:.3f}",
        ],
    )
