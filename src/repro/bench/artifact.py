"""The versioned ``BENCH_*.json`` performance artifact (schema ``repro-bench/1``).

One :class:`BenchArtifact` records one harness invocation: which preset ran,
every benchmark's wall times (one per measured repeat) and key metrics, an
environment fingerprint (interpreter, platform, dependency versions) and an
echo of the harness configuration.  The artifact round-trips through
``to_dict()`` / ``from_dict()`` exactly like ``repro-run/1`` and
``repro-pipeline/1`` do, and :meth:`BenchArtifact.save` writes the
conventional ``BENCH_<timestamp>.json`` file the CI perf gate uploads and
:func:`repro.bench.compare.compare` reads.
"""

from __future__ import annotations

import os
import platform
import sys
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Mapping

from repro import jsonio
from repro._version import __version__
from repro.errors import ConfigurationError
from repro.schemas import BENCH_SCHEMA

__all__ = ["BENCH_SCHEMA", "BenchmarkRecord", "BenchArtifact", "environment_fingerprint"]


def environment_fingerprint() -> dict[str, Any]:
    """Where the numbers came from: interpreter, platform, dependency versions.

    Baseline comparisons are only meaningful within a comparable environment;
    the fingerprint lets ``compare`` (and a human reading the artifact) see at
    a glance when two artifacts were produced on different interpreters or
    library versions.
    """
    versions: dict[str, str] = {"repro": __version__}
    for module_name in ("numpy", "networkx"):
        try:
            module = __import__(module_name)
            versions[module_name] = str(getattr(module, "__version__", "unknown"))
        except ImportError:  # pragma: no cover - both are hard dependencies
            versions[module_name] = "absent"
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count() or 1,
        "executable": sys.executable,
        "versions": versions,
    }


@dataclass(slots=True)
class BenchmarkRecord:
    """Measured outcome of one benchmark inside one harness run."""

    #: Registry key, e.g. ``"E3"``.
    name: str
    title: str
    #: Seconds of each *measured* repeat (warmup calls are not recorded).
    wall_times: list[float]
    #: Key metrics extracted from the benchmark's experiment result.
    metrics: dict[str, float] = field(default_factory=dict)
    #: The experiment's own verdict (``None`` for descriptive experiments).
    passed: bool | None = None
    #: Warmup calls executed before the measured repeats.
    warmup: int = 0

    @property
    def best(self) -> float:
        """Fastest measured repeat — the noise-robust comparison basis."""
        return min(self.wall_times)

    @property
    def mean(self) -> float:
        """Mean of the measured repeats."""
        return sum(self.wall_times) / len(self.wall_times)

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "title": self.title,
            "wall_times": [float(value) for value in self.wall_times],
            "best": float(self.best),
            "mean": float(self.mean),
            "metrics": {key: float(value) for key, value in self.metrics.items()},
            "passed": self.passed,
            "warmup": int(self.warmup),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "BenchmarkRecord":
        wall_times = [float(value) for value in data.get("wall_times") or []]
        if not wall_times:
            raise ConfigurationError(
                f"Benchmark record {data.get('name')!r} has no wall times"
            )
        return cls(
            name=str(data.get("name", "")),
            title=str(data.get("title", "")),
            wall_times=wall_times,
            metrics={k: float(v) for k, v in (data.get("metrics") or {}).items()},
            passed=data.get("passed"),
            warmup=int(data.get("warmup", 0)),
        )


@dataclass(slots=True)
class BenchArtifact:
    """One serialisable harness invocation (schema ``repro-bench/1``)."""

    #: Bench preset that ran (``tiny`` / ``paper`` / ``stress``).
    preset: str
    #: UTC creation time, ISO-8601.
    created: str
    #: See :func:`environment_fingerprint`.
    environment: dict[str, Any] = field(default_factory=environment_fingerprint)
    #: Echo of the harness configuration (warmup, repeats, benchmark names,
    #: the experiment preset the bench preset mapped to).
    config: dict[str, Any] = field(default_factory=dict)
    records: list[BenchmarkRecord] = field(default_factory=list)
    #: Free-form provenance notes (e.g. the measured before/after numbers of
    #: the optimization a baseline pins down).
    notes: list[str] = field(default_factory=list)
    schema: str = BENCH_SCHEMA

    @classmethod
    def now(cls, preset: str, **kwargs: Any) -> "BenchArtifact":
        """Artifact stamped with the current UTC time."""
        created = datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ")
        return cls(preset=preset, created=created, **kwargs)

    def record(self, name: str) -> BenchmarkRecord | None:
        """The record of benchmark ``name`` (``None`` when it did not run)."""
        for entry in self.records:
            if entry.name == name:
                return entry
        return None

    @property
    def benchmark_names(self) -> tuple[str, ...]:
        """Names of the benchmarks the artifact covers, in run order."""
        return tuple(entry.name for entry in self.records)

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": self.schema,
            "preset": self.preset,
            "created": self.created,
            "environment": dict(self.environment),
            "config": dict(self.config),
            "results": [entry.to_dict() for entry in self.records],
            "notes": list(self.notes),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "BenchArtifact":
        jsonio.check_artifact_schema(data, "repro-bench", 1, kind="bench artifact")
        schema = data.get("schema", BENCH_SCHEMA)
        return cls(
            preset=str(data.get("preset", "")),
            created=str(data.get("created", "")),
            environment=dict(data.get("environment") or {}),
            config=dict(data.get("config") or {}),
            records=[BenchmarkRecord.from_dict(entry) for entry in data.get("results") or []],
            notes=list(data.get("notes") or []),
            schema=schema,
        )

    def dumps(self) -> str:
        """Deterministic strict-JSON form (sorted keys, trailing newline).

        Non-finite metric values serialise as ``null`` — the per-benchmark
        verdict lives in the explicit ``passed`` field, never in the number.
        """
        return jsonio.dumps(self.to_dict()) + "\n"

    def save(self, target: str | Path) -> Path:
        """Write the artifact to ``target``.

        A directory target receives the conventional ``BENCH_<timestamp>.json``
        name (directories are created as needed); any other target is treated
        as the exact file path.
        """
        target = Path(target)
        try:
            if target.is_dir() or not target.suffix:
                target.mkdir(parents=True, exist_ok=True)
                stamp = self.created.replace("-", "").replace(":", "")
                target = target / f"BENCH_{stamp}.json"
            else:
                target.parent.mkdir(parents=True, exist_ok=True)
            jsonio.write_text_atomic(target, self.dumps())
        except OSError as error:
            raise ConfigurationError(
                f"Cannot write bench artifact to {target}: {error}"
            ) from None
        return target

    @classmethod
    def load(cls, path: str | Path) -> "BenchArtifact":
        """Read an artifact back from disk."""
        return cls.from_dict(
            jsonio.load_artifact(path, "repro-bench", 1, kind="bench artifact")
        )
