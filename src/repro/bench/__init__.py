"""Unified performance-measurement subsystem (``repro-lb bench``).

* :mod:`~repro.bench.registry` — string-keyed registry of the E1–E8
  benchmarks (same pattern as :mod:`repro.api.balancers`);
* :mod:`~repro.bench.harness` — presets (``tiny``/``paper``/``stress``),
  warmup + repeat control, artifact assembly;
* :mod:`~repro.bench.artifact` — the versioned ``BENCH_*.json`` artifact
  (schema ``repro-bench/1``);
* :mod:`~repro.bench.compare` — baseline comparison returning structured
  regressions (what the CI perf gate exits non-zero on);
* :mod:`~repro.bench.service` — the ``service`` tier
  (``repro-lb bench service``): load-test the balancing service end to end
  with concurrent clients over real sockets;
* :mod:`~repro.bench.rebalance` — the ``rebalance`` tier
  (``repro-lb bench rebalance``): pin the incremental-repair-vs-from-scratch
  speedup of ``Pipeline.rebalance`` for single-task deltas;
* :mod:`~repro.bench.stress_xl` — the ``stress-xl`` tier
  (``repro-lb bench stress-xl``): time-vs-N scaling curves of the balancer
  on the flat-array kernels, gated on the fitted exponent.
"""

from repro.bench.artifact import (
    BENCH_SCHEMA,
    BenchArtifact,
    BenchmarkRecord,
    environment_fingerprint,
)
from repro.bench.compare import ComparisonReport, RegressionEntry, compare
from repro.bench.harness import BENCH_PRESETS, run_benchmarks
from repro.bench.registry import (
    BenchmarkSpec,
    available_benchmarks,
    bench_script,
    benchmark_info,
    register_benchmark,
)
from repro.bench.rebalance import run_rebalance_bench
from repro.bench.service import run_service_bench, service_workload_mix
from repro.bench.stress_xl import (
    XL_PRESETS,
    fit_scaling_exponent,
    run_stress_xl_bench,
)

__all__ = [
    "BENCH_PRESETS",
    "BENCH_SCHEMA",
    "BenchArtifact",
    "BenchmarkRecord",
    "BenchmarkSpec",
    "ComparisonReport",
    "RegressionEntry",
    "XL_PRESETS",
    "available_benchmarks",
    "bench_script",
    "benchmark_info",
    "compare",
    "environment_fingerprint",
    "fit_scaling_exponent",
    "register_benchmark",
    "run_benchmarks",
    "run_rebalance_bench",
    "run_service_bench",
    "run_stress_xl_bench",
    "service_workload_mix",
]
