"""String-keyed registry of the E1–E8 benchmarks.

Mirrors :mod:`repro.api.balancers`: every benchmark registers one
:class:`BenchmarkSpec` — the experiment runner to time (accepting an
experiment preset name) plus a key-metric extractor turning the experiment's
:class:`~repro.experiments.tables.ExperimentResult` into the flat float
mapping the ``repro-bench/1`` artifact stores.  The ``benchmarks/bench_e*.py``
scripts are thin shells over :func:`bench_script`, so adding a benchmark
means adding one registry entry, not a new script worth of boilerplate.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.experiments import (
    AblationConfig,
    ComparisonConfig,
    ComplexityConfig,
    IdleFractionConfig,
    MultirateConfig,
    Theorem1Config,
    Theorem2Config,
    run_e1_paper_example,
    run_e2_multirate_buffering,
    run_e3_complexity,
    run_e4_theorem1,
    run_e5_theorem2,
    run_e6_baseline_comparison,
    run_e7_ablation,
    run_e8_idle_fraction,
)
from repro.experiments.tables import ExperimentResult

__all__ = [
    "BenchmarkSpec",
    "available_benchmarks",
    "bench_script",
    "benchmark_info",
    "register_benchmark",
]


@dataclass(frozen=True, slots=True)
class BenchmarkSpec:
    """One registry entry: what to run and which metrics to keep."""

    #: Registry key (``"E1"`` .. ``"E8"``).
    name: str
    #: One-line title shown by ``repro-lb bench list``.
    title: str
    description: str
    #: Regenerate the experiment at an *experiment* preset (``tiny`` /
    #: ``quick`` / ``full``) — this call is what the harness times.
    runner: Callable[[str], ExperimentResult]
    #: Extract the artifact's key metrics from the experiment result.
    metrics: Callable[[ExperimentResult], dict[str, float]]

    def run(self, experiment_preset: str) -> ExperimentResult:
        """Regenerate the artefact once (the harness's timed unit)."""
        return self.runner(experiment_preset)


_REGISTRY: dict[str, BenchmarkSpec] = {}


def register_benchmark(spec: BenchmarkSpec) -> BenchmarkSpec:
    """Add ``spec`` to the registry (duplicate names are configuration errors)."""
    if spec.name in _REGISTRY:
        raise ConfigurationError(f"Benchmark {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec
    return spec


def available_benchmarks() -> tuple[str, ...]:
    """Registered benchmark names, sorted (``E1`` .. ``E8``)."""
    return tuple(sorted(_REGISTRY))


def benchmark_info(name: str) -> BenchmarkSpec:
    """Registry entry of ``name`` (raises :class:`ConfigurationError` if absent)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"Unknown benchmark {name!r}; registered: {list(available_benchmarks())}"
        ) from None


def bench_script(name: str):
    """``(run, main)`` entry points for a ``benchmarks/bench_e*.py`` shell.

    ``run(preset)`` regenerates the experiment's artefact at an experiment
    preset and returns the :class:`ExperimentResult`; ``main(argv)`` is the
    ``--preset`` CLI the scripts always had.  Timing, repeats and artifact IO
    live in :mod:`repro.bench.harness`, not in the scripts.
    """
    spec = benchmark_info(name)

    def run(preset: str = "quick") -> ExperimentResult:
        return spec.run(preset)

    run.__doc__ = f"Regenerate the {name} artefact at the given experiment preset."

    def main(argv=None) -> int:
        from repro.experiments.configs import preset_cli

        return preset_cli(run, spec.description, argv)

    main.__doc__ = f"Entry point: ``python benchmarks/bench_* [--preset tiny|quick|full]`` ({name})."
    return run, main


# ----------------------------------------------------------------------
# Key-metric extractors (what lands in the artifact next to the wall times)
# ----------------------------------------------------------------------
def _mean(values) -> float:
    values = [float(value) for value in values]
    return sum(values) / len(values) if values else 0.0


def _e1_metrics(result: ExperimentResult) -> dict[str, float]:
    data = result.data
    return {
        "makespan_after": float(data["makespan_after"]),
        "ratio_makespan_after": float(data["ratio_makespan_after"]),
        "max_memory_after": max(float(v) for v in data["memory_after"].values()),
        "decisions": float(len(data["decisions"])),
    }


def _e2_metrics(result: ExperimentResult) -> dict[str, float]:
    peaks = result.data["peaks"]
    return {
        "ratios": float(len(peaks)),
        "max_peak_buffer": max((float(v) for v in peaks.values()), default=0.0),
    }


def _e3_metrics(result: ExperimentResult) -> dict[str, float]:
    data = result.data
    fit = data["fit"]
    samples = data["samples"]
    return {
        "samples": float(len(samples)),
        "balancer_seconds_total": float(sum(sample.seconds for sample in samples)),
        "work_total": float(sum(sample.work for sample in samples)),
        "fit_slope_ms": float(fit.slope * 1000.0),
        "fit_r_squared": float(fit.r_squared),
        "evaluations_match": 1.0 if data["evaluations_match"] else 0.0,
    }


def _e4_metrics(result: ExperimentResult) -> dict[str, float]:
    campaigns = result.data["campaigns"].values()
    return {
        "runs": float(sum(c.samples for c in campaigns)),
        "excluded": float(result.data["excluded"]),
        "max_gain": max((float(c.max_gain) for c in campaigns), default=0.0),
        "violations_lower": float(sum(c.violations_lower for c in campaigns)),
    }


def _e5_metrics(result: ExperimentResult) -> dict[str, float]:
    campaigns = result.data["campaigns"].values()
    return {
        "instances": float(sum(c.samples for c in campaigns)),
        "worst_ratio": max((float(c.worst_ratio) for c in campaigns), default=0.0),
        "violations": float(sum(c.violations for c in campaigns)),
    }


def _e6_metrics(result: ExperimentResult) -> dict[str, float]:
    proposed = result.data["metrics"].get("proposed (ratio)", {})
    return {
        "strategies": float(len(result.data["metrics"])),
        "proposed_mean_gain": _mean(proposed.get("gain", [])),
        "proposed_mean_max_memory": _mean(proposed.get("max_memory", [])),
        "proposed_feasible": _mean(proposed.get("feasible", [])),
    }


def _e7_metrics(result: ExperimentResult) -> dict[str, float]:
    default = result.data["metrics"].get("ratio (default)", {})
    return {
        "variants": float(len(result.data["metrics"])),
        "default_mean_gain": _mean(default.get("gain", [])),
        "default_mean_moves": _mean(default.get("moves", [])),
        "default_feasible": _mean(default.get("feasible", [])),
    }


def _e8_metrics(result: ExperimentResult) -> dict[str, float]:
    points = result.data.values()
    return {
        "utilizations": float(len(result.data)),
        "mean_idle_before": _mean(point["before"] for point in points),
        "mean_idle_after": _mean(point["after"] for point in points),
    }


# ----------------------------------------------------------------------
# Registrations (one per experiment, E1..E8)
# ----------------------------------------------------------------------
register_benchmark(
    BenchmarkSpec(
        name="E1",
        title="worked example (Figures 2-4)",
        description="regenerate the paper's worked example (E1; preset is ignored)",
        runner=lambda preset: run_e1_paper_example(),
        metrics=_e1_metrics,
    )
)
register_benchmark(
    BenchmarkSpec(
        name="E2",
        title="multi-rate buffering (Figure 1)",
        description="regenerate the Figure-1 buffering study (E2)",
        runner=lambda preset: run_e2_multirate_buffering(MultirateConfig.from_preset(preset)),
        metrics=_e2_metrics,
    )
)
register_benchmark(
    BenchmarkSpec(
        name="E3",
        title="complexity study (section 4)",
        description="regenerate the complexity study (E3)",
        runner=lambda preset: run_e3_complexity(ComplexityConfig.from_preset(preset)),
        metrics=_e3_metrics,
    )
)
register_benchmark(
    BenchmarkSpec(
        name="E4",
        title="Theorem 1 gain bounds",
        description="validate Theorem 1 bounds (E4)",
        runner=lambda preset: run_e4_theorem1(Theorem1Config.from_preset(preset)),
        metrics=_e4_metrics,
    )
)
register_benchmark(
    BenchmarkSpec(
        name="E5",
        title="Theorem 2 approximation",
        description="validate the Theorem-2 approximation (E5)",
        runner=lambda preset: run_e5_theorem2(Theorem2Config.from_preset(preset)),
        metrics=_e5_metrics,
    )
)
register_benchmark(
    BenchmarkSpec(
        name="E6",
        title="heuristic vs baselines",
        description="compare against the baselines (E6)",
        runner=lambda preset: run_e6_baseline_comparison(ComparisonConfig.from_preset(preset)),
        metrics=_e6_metrics,
    )
)
register_benchmark(
    BenchmarkSpec(
        name="E7",
        title="cost-policy / rule ablation",
        description="ablate cost policies and rules (E7)",
        runner=lambda preset: run_e7_ablation(AblationConfig.from_preset(preset)),
        metrics=_e7_metrics,
    )
)
register_benchmark(
    BenchmarkSpec(
        name="E8",
        title="idle fraction before/after",
        description="measure idle fractions (E8)",
        runner=lambda preset: run_e8_idle_fraction(IdleFractionConfig.from_preset(preset)),
        metrics=_e8_metrics,
    )
)
