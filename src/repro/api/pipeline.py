"""The ``Pipeline`` facade and the structured ``RunResult`` artifact.

A :class:`Pipeline` executes one :class:`~repro.api.config.PipelineConfig`
through its declarative stages — workload, initial schedule, balancing (any
registered balancer), verification, reporting — and returns a
:class:`RunResult`: metrics, decision trace, per-stage timings, a config
echo and the rendered report, all serialisable through ``to_dict()`` /
``from_dict()`` (schema ``repro-run/1``).  The CLI prints
``RunResult.report`` verbatim; the campaign runner stores
``RunResult.to_dict()`` verbatim in its manifests.

:meth:`Pipeline.rebalance` is the incremental entry point: given the prior
:class:`RunResult` and a churn delta (:class:`~repro.churn.ChurnTimeline` or
a single delta), it repairs the prior schedule in place via
:func:`repro.churn.repair_schedule` instead of recomputing, falling back to
the from-scratch pipeline when the repair cannot place a task — so a
feasible post-delta workload always yields a feasible rebalance result.
Rebalance results carry the ``repro-run/2`` envelope: everything of ``/1``
plus a ``rebalance`` provenance block (prior config fingerprint, delta
digest, repair stats).  ``Pipeline.run()`` keeps emitting byte-identical
``repro-run/1`` artifacts — the service's cache byte-identity contract
depends on it — and :meth:`RunResult.from_dict` reads both versions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Mapping

from repro import jsonio
from repro.api.balancers import BalanceOutcome, balance
from repro.api.config import PipelineConfig
from repro.core.result import LoadBalanceResult
from repro.errors import ConfigurationError, InfeasibleError
from repro.metrics.report import ScheduleReport, compare_schedules
from repro.model.architecture import Architecture
from repro.model.graph import TaskGraph
from repro.scheduling.feasibility import check_schedule
from repro.scheduling.heuristic import PlacementPolicy, SchedulerOptions, schedule_application
from repro.scheduling.schedule import Schedule
from repro.schemas import RUN_SCHEMA, RUN_SCHEMA_V2
from repro.timing import StageTimer
from repro.workloads.generator import generate_workload
from repro.workloads.paper_example import paper_initial_schedule

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.churn.deltas import ChurnTimeline, Delta

__all__ = ["RUN_SCHEMA", "RUN_SCHEMA_V2", "RunResult", "Pipeline", "run_pipeline", "rebalance_run"]


@dataclass(slots=True)
class RunResult:
    """Structured artifact of one pipeline run."""

    label: str
    #: Echo of the config that produced the run (``PipelineConfig.to_dict()``).
    config: dict[str, Any]
    #: Registry key of the balancer that ran.
    balancer: str
    #: Verification verdict (``None`` when the verify stage was disabled and
    #: the balancer's own verdict is reported instead — see ``metrics``).
    feasible: bool | None
    violations: list[str] = field(default_factory=list)
    warnings: list[str] = field(default_factory=list)
    safety_level: str = "paper"
    #: Headline metrics plus full before/after schedule reports.
    metrics: dict[str, Any] = field(default_factory=dict)
    #: Uniform per-block decision trace (see :class:`BalanceOutcome`).
    trace: list[dict[str, Any]] = field(default_factory=list)
    #: Wall-clock seconds per executed stage.
    timings: dict[str, float] = field(default_factory=dict)
    #: One-line workload description ("" for the paper example).
    workload_description: str = ""
    #: Rendered textual report (what the CLI prints).
    report: str = ""
    #: ``repro-conformance/1`` report of the balanced schedule (``None`` when
    #: the conformance oracle was not enabled).
    conformance: dict[str, Any] | None = None
    #: Delta provenance of a rebalance result (prior fingerprint, delta
    #: digest, repair stats); ``None`` for from-scratch runs.  Present iff
    #: the result is a ``repro-run/2`` envelope.
    rebalance: dict[str, Any] | None = None
    schema: str = RUN_SCHEMA
    #: Runtime handles, not serialised.
    initial_schedule: Schedule | None = None
    balanced_schedule: Schedule | None = None
    outcome: BalanceOutcome | None = None

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe serialisation (schedules and outcome handles excluded)."""
        data = {
            "schema": self.schema,
            "label": self.label,
            "config": dict(self.config),
            "balancer": self.balancer,
            "feasible": self.feasible,
            "violations": list(self.violations),
            "warnings": list(self.warnings),
            "safety_level": self.safety_level,
            "metrics": dict(self.metrics),
            "trace": [dict(entry) for entry in self.trace],
            "timings": {name: float(value) for name, value in self.timings.items()},
            "workload_description": self.workload_description,
            "report": self.report,
        }
        if self.conformance is not None:
            data["conformance"] = dict(self.conformance)
        if self.rebalance is not None:
            data["rebalance"] = dict(self.rebalance)
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunResult":
        """Rebuild a (schedule-less) run result from its serialised form.

        Accepts both the ``repro-run/1`` envelope and the ``repro-run/2``
        extension (``/2`` adds the optional ``rebalance`` provenance block;
        every ``/1`` field keeps its meaning unchanged).
        """
        jsonio.check_artifact_schema(data, "repro-run", 2, kind="run result")
        schema = data.get("schema", RUN_SCHEMA)
        return cls(
            label=str(data.get("label", "")),
            config=dict(data.get("config") or {}),
            balancer=str(data.get("balancer", "")),
            feasible=data.get("feasible"),
            violations=list(data.get("violations") or []),
            warnings=list(data.get("warnings") or []),
            safety_level=str(data.get("safety_level", "paper")),
            metrics=dict(data.get("metrics") or {}),
            trace=[dict(entry) for entry in data.get("trace") or []],
            timings={k: float(v) for k, v in (data.get("timings") or {}).items()},
            workload_description=str(data.get("workload_description", "")),
            report=str(data.get("report", "")),
            conformance=(
                dict(data["conformance"]) if data.get("conformance") is not None else None
            ),
            rebalance=(
                dict(data["rebalance"]) if data.get("rebalance") is not None else None
            ),
            schema=schema,
        )


class Pipeline:
    """Executes one :class:`PipelineConfig` end to end.

    For the ``provided`` workload kind, pass the in-memory problem: either a
    ready ``initial_schedule`` (the schedule stage is skipped) or a ``graph``
    plus ``architecture`` (the configured initial scheduler runs on them).
    """

    def __init__(
        self,
        config: PipelineConfig,
        *,
        graph: TaskGraph | None = None,
        architecture: Architecture | None = None,
        initial_schedule: Schedule | None = None,
    ) -> None:
        if not isinstance(config, PipelineConfig):
            raise ConfigurationError(
                "Pipeline expects a PipelineConfig; build one with "
                "PipelineConfig.from_dict(...) or the front-end constructors"
            )
        if config.workload.kind == "provided":
            if initial_schedule is None and (graph is None or architecture is None):
                raise ConfigurationError(
                    'workload kind "provided" requires an initial_schedule or a '
                    "graph and an architecture"
                )
        elif graph is not None or architecture is not None or initial_schedule is not None:
            raise ConfigurationError(
                f"workload kind {config.workload.kind!r} is declarative; in-memory "
                'objects are only accepted with kind "provided"'
            )
        self.config = config
        self._graph = graph
        self._architecture = architecture
        self._initial_schedule = initial_schedule

    # ------------------------------------------------------------------
    def run(self) -> RunResult:
        """Execute every configured stage and assemble the artifact."""
        config = self.config
        timer = StageTimer()
        workload_description = ""

        # -- workload + initial schedule -----------------------------------
        if config.workload.kind == "paper_example":
            with timer.stage("workload"):
                pass
            with timer.stage("schedule"):
                initial = paper_initial_schedule()
        elif config.workload.kind == "spec":
            with timer.stage("workload"):
                workload = generate_workload(config.workload.spec)
                workload_description = workload.describe()
            with timer.stage("schedule"):
                initial = schedule_application(
                    workload.graph, workload.architecture, self._scheduler_options()
                )
        else:  # provided
            with timer.stage("workload"):
                pass
            with timer.stage("schedule"):
                if self._initial_schedule is not None:
                    initial = self._initial_schedule
                else:
                    initial = schedule_application(
                        self._graph, self._architecture, self._scheduler_options()
                    )
                workload_description = (
                    f"{initial.graph.name or 'provided'}: {len(initial.graph)} tasks, "
                    f"{len(initial.architecture)} processors, "
                    f"hyper-period {initial.graph.hyper_period:g}"
                )

        # -- balance --------------------------------------------------------
        with timer.stage("balance"):
            outcome = balance(initial, config.balance.to_dict())

        # -- verify ---------------------------------------------------------
        feasible: bool | None
        violations: list[str]
        if config.verify.enabled:
            with timer.stage("verify"):
                if config.verify.check_memory:
                    verdict = check_schedule(outcome.schedule, check_memory=True)
                    feasible = verdict.is_feasible
                    violations = verdict.all_violations
                else:
                    # The outcome already carries this exact verdict (every
                    # balancer computes it once, with check_memory=False) —
                    # re-running the checker would only duplicate the work.
                    feasible = outcome.feasible
                    violations = list(outcome.violations)
        else:
            feasible = None
            violations = []

        # -- conformance ----------------------------------------------------
        conformance: dict[str, Any] | None = None
        if config.verify.conformance:
            from repro.conformance import ConformanceOptions, check_conformance

            from repro.scheduling.feasibility import FeasibilityReport

            with timer.stage("conformance"):
                precomputed = outcome.feasibility_report
                conformance = check_conformance(
                    outcome.schedule,
                    ConformanceOptions(
                        hyper_periods=config.verify.conformance_hyper_periods
                    ),
                    label=config.label or config.balance.balancer,
                    feasibility=(
                        precomputed
                        if isinstance(precomputed, FeasibilityReport)
                        else None
                    ),
                ).to_dict()

        # -- report ---------------------------------------------------------
        report_text = ""
        if config.report.enabled:
            with timer.stage("report"):
                report_text = self._render_report(workload_description, initial, outcome)
        timings = timer.timings

        metrics = {
            "makespan_before": float(outcome.makespan_before),
            "makespan_after": float(outcome.makespan_after),
            "total_gain": float(outcome.total_gain),
            "memory_before": {
                k: float(v) for k, v in sorted(initial.memory_by_processor().items())
            },
            "memory_after": {
                k: float(v) for k, v in sorted(outcome.memory_by_processor.items())
            },
            "max_memory_after": float(outcome.max_memory),
            "max_execution_after": float(outcome.max_execution),
            "moves": outcome.moves,
            "balancer_feasible": outcome.feasible,
            "initial_report": ScheduleReport.of("initial", initial).to_dict(),
            "balanced_report": ScheduleReport.of("balanced", outcome.schedule).to_dict(),
        }
        metrics["info"] = {k: float(v) for k, v in outcome.info.items()}

        return RunResult(
            label=config.label,
            config=config.to_dict(),
            balancer=config.balance.balancer,
            feasible=feasible,
            violations=violations,
            warnings=list(outcome.warnings),
            safety_level=outcome.safety_level,
            metrics=metrics,
            trace=[dict(entry) for entry in outcome.trace],
            timings=timings,
            workload_description=workload_description,
            report=report_text,
            conformance=conformance,
            initial_schedule=initial,
            balanced_schedule=outcome.schedule,
            outcome=outcome,
        )

    # ------------------------------------------------------------------
    def rebalance(self, prior: RunResult, delta: "Delta | ChurnTimeline") -> RunResult:
        """Incrementally rebalance ``prior`` under a churn ``delta``.

        Applies the delta (a single delta or a :class:`ChurnTimeline`) to the
        prior balanced schedule's workload, repairs the schedule in place via
        :func:`repro.churn.repair_schedule` (conflict-engine
        ``occupy``/``release``/``shift``), and assembles a ``repro-run/2``
        result whose ``rebalance`` block records the prior config
        fingerprint, the delta digest and the repair statistics.

        When the repair cannot re-place a displaced task (or its result fails
        verification) the method falls back to the full from-scratch pipeline
        on the post-delta workload — so the feasibility verdict always agrees
        with the from-scratch oracle: a workload the pipeline can balance is
        never reported infeasible by ``rebalance``.

        ``prior`` must carry its in-memory ``balanced_schedule`` (results
        deserialised with :meth:`RunResult.from_dict` do not); re-run the
        pipeline to obtain one.
        """
        from repro.churn.deltas import as_timeline
        from repro.churn.repair import RepairStats, repair_schedule

        if prior.balanced_schedule is None:
            raise ConfigurationError(
                "rebalance needs the prior result's in-memory balanced_schedule; "
                "results loaded from disk are schedule-less — re-run the pipeline "
                "on the prior config first"
            )
        timeline = as_timeline(delta)
        config = self.config
        timer = StageTimer()

        with timer.stage("delta"):
            graph, architecture = timeline.apply(
                prior.balanced_schedule.graph, prior.balanced_schedule.architecture
            )
            workload_description = (
                f"{graph.name or 'workload'} after {len(timeline)} delta(s): "
                f"{len(graph)} tasks, {len(architecture)} processors, "
                f"hyper-period {graph.hyper_period:g}"
            )

        stats: RepairStats
        outcome: BalanceOutcome | None = None
        schedule: Schedule | None = None
        scratch_violations: list[str] = []
        with timer.stage("repair"):
            try:
                schedule, stats = repair_schedule(
                    prior.balanced_schedule, graph, architecture
                )
            except InfeasibleError as error:
                stats = RepairStats(
                    hyper_period_before=prior.balanced_schedule.graph.hyper_period,
                    hyper_period_after=graph.hyper_period,
                    fallback=True,
                    fallback_reason=str(error),
                )
                try:
                    initial = schedule_application(
                        graph, architecture, self._scheduler_options()
                    )
                    outcome = balance(initial, config.balance.to_dict())
                    schedule = outcome.schedule
                except InfeasibleError as scratch_error:
                    scratch_violations = [str(scratch_error)]
                    schedule = None

        feasible: bool | None
        violations: list[str]
        if schedule is None:
            # Neither the repair nor the from-scratch pipeline could place
            # the post-delta workload: report it as infeasible.
            feasible = False
            violations = scratch_violations
        elif config.verify.enabled:
            with timer.stage("verify"):
                if outcome is not None and not config.verify.check_memory:
                    feasible = outcome.feasible
                    violations = list(outcome.violations)
                else:
                    verdict = check_schedule(
                        schedule, check_memory=config.verify.check_memory
                    )
                    feasible = verdict.is_feasible
                    violations = verdict.all_violations
        else:
            feasible = None
            violations = []

        conformance: dict[str, Any] | None = None
        if schedule is not None and config.verify.conformance:
            from repro.conformance import ConformanceOptions, check_conformance

            with timer.stage("conformance"):
                conformance = check_conformance(
                    schedule,
                    ConformanceOptions(
                        hyper_periods=config.verify.conformance_hyper_periods
                    ),
                    label=f"{config.label or config.balance.balancer}+rebalance",
                ).to_dict()

        makespan_before = prior.balanced_schedule.makespan
        metrics: dict[str, Any] = {
            "makespan_before": float(makespan_before),
            "makespan_after": float(schedule.makespan) if schedule is not None else None,
            "total_gain": (
                float(makespan_before - schedule.makespan) if schedule is not None else None
            ),
            "moves": stats.displaced,
            "balancer_feasible": feasible if feasible is not None else schedule is not None,
        }
        if schedule is not None:
            metrics["memory_after"] = {
                k: float(v) for k, v in sorted(schedule.memory_by_processor().items())
            }
            metrics["balanced_report"] = ScheduleReport.of("rebalanced", schedule).to_dict()

        report_text = ""
        if config.report.enabled:
            with timer.stage("report"):
                mode = "from-scratch fallback" if stats.fallback else "incremental repair"
                lines = [
                    workload_description,
                    f"rebalance via {mode}: {stats.survivors} survivor(s), "
                    f"{stats.displaced} displaced, {stats.released} released, "
                    f"{stats.occupied} occupied, {stats.shifted} shifted",
                ]
                if schedule is not None:
                    lines.append(
                        f"makespan {makespan_before:g} -> {schedule.makespan:g}"
                    )
                else:
                    lines.append("post-delta workload is unschedulable")
                report_text = "\n".join(lines)

        provenance = {
            "prior_fingerprint": PipelineConfig.from_dict(prior.config).fingerprint()
            if prior.config
            else None,
            "prior_label": prior.label,
            "delta_digest": timeline.digest(),
            "delta": timeline.to_dict(),
            "stats": stats.to_dict(),
        }

        return RunResult(
            label=config.label,
            config=config.to_dict(),
            balancer=config.balance.balancer,
            feasible=feasible,
            violations=violations,
            warnings=list(outcome.warnings) if outcome is not None else [],
            safety_level=outcome.safety_level if outcome is not None else "paper",
            metrics=metrics,
            trace=[dict(entry) for entry in outcome.trace] if outcome is not None else [],
            timings=timer.timings,
            workload_description=workload_description,
            report=report_text,
            conformance=conformance,
            rebalance=provenance,
            schema=RUN_SCHEMA_V2,
            initial_schedule=prior.balanced_schedule,
            balanced_schedule=schedule,
            outcome=outcome,
        )

    # ------------------------------------------------------------------
    def _scheduler_options(self) -> SchedulerOptions:
        try:
            policy = PlacementPolicy(self.config.schedule.policy)
        except ValueError:
            raise ConfigurationError(
                f"Unknown placement policy {self.config.schedule.policy!r}; expected "
                f"one of {[p.value for p in PlacementPolicy]}"
            ) from None
        return SchedulerOptions(policy=policy)

    def _render_report(
        self, workload_description: str, initial: Schedule, outcome: BalanceOutcome
    ) -> str:
        """Render the textual report the CLI prints (section order is part of
        the CLI's golden output — see ``tests/test_api.py``)."""
        report = self.config.report
        paper = self.config.workload.kind == "paper_example"
        lines: list[str] = []
        if report.describe_workload and workload_description:
            lines.append(workload_description)
        if report.show_schedules:
            lines.append("Initial schedule (Figure 3):" if paper else "Initial schedule:")
            lines.append(initial.describe())
            lines.append("")
            if report.steps:
                lines.extend(self._step_lines(outcome))
            lines.append("Balanced schedule (Figure 4):" if paper else "Balanced schedule:")
            lines.append(outcome.schedule.describe())
            lines.append("")
        elif report.steps:
            lines.extend(self._step_lines(outcome))
        lines.append(outcome.summary())
        if report.compare:
            lines.append("")
            lines.append(
                compare_schedules(
                    [
                        ScheduleReport.of("initial", initial),
                        ScheduleReport.of("balanced", outcome.schedule),
                    ]
                )
            )
        if report.simulate:
            from repro.simulation.engine import SimulationOptions, simulate

            for label, candidate in (("initial", initial), ("balanced", outcome.schedule)):
                lines.append("")
                lines.append(f"simulation of the {label} schedule:")
                lines.append(
                    simulate(
                        candidate,
                        SimulationOptions(hyper_periods=report.simulate_hyper_periods),
                    ).summary()
                )
        return "\n".join(lines)

    @staticmethod
    def _step_lines(outcome: BalanceOutcome) -> list[str]:
        """Per-decision trace section (full detail for the paper heuristic)."""
        lines: list[str] = []
        if isinstance(outcome.raw, LoadBalanceResult):
            for step, decision in enumerate(outcome.raw.decisions, start=1):
                lines.append(f"step {step}:")
                lines.append(decision.describe())
                lines.append("")
        else:
            for step, entry in enumerate(outcome.trace, start=1):
                arrow = "->" if entry.get("moved") else "stays on"
                lines.append(
                    f"step {step}: {entry['block']} {entry['from']} {arrow} {entry['to']}"
                )
            if lines:
                lines.append("")
        return lines


def run_pipeline(
    config: PipelineConfig | Mapping[str, Any],
    *,
    graph: TaskGraph | None = None,
    architecture: Architecture | None = None,
    initial_schedule: Schedule | None = None,
) -> RunResult:
    """Convenience: accept a config (or its dict form) and run it."""
    if not isinstance(config, PipelineConfig):
        config = PipelineConfig.from_dict(config)
    return Pipeline(
        config,
        graph=graph,
        architecture=architecture,
        initial_schedule=initial_schedule,
    ).run()


def rebalance_run(
    prior: RunResult,
    delta: "Delta | ChurnTimeline",
    *,
    config: PipelineConfig | Mapping[str, Any] | None = None,
) -> RunResult:
    """Convenience: rebalance ``prior`` under ``delta``.

    ``config`` defaults to the prior result's config echo; it only controls
    the verify/conformance/report stages of the rebalance (the workload comes
    from the prior schedule plus the delta, never from the config's workload
    stage).
    """
    if config is None:
        config = PipelineConfig.from_dict(prior.config)
    elif not isinstance(config, PipelineConfig):
        config = PipelineConfig.from_dict(config)
    if config.workload.kind == "provided":
        pipeline = Pipeline(
            config,
            initial_schedule=prior.initial_schedule or prior.balanced_schedule,
        )
    else:
        pipeline = Pipeline(config)
    return pipeline.rebalance(prior, delta)
