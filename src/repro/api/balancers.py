"""One ``Balancer`` protocol and a string-keyed registry over every strategy.

Before this module existed, the paper heuristic and the six baselines exposed
incompatible call signatures (``LoadBalancer(schedule, opts).run()`` versus
free functions returning :class:`~repro.baselines.base.AssignmentResult`),
so every consumer — the CLI, the E6/E7 runners, the examples — hand-wired
its own glue.  The registry adapts all of them behind one interface::

    from repro.api import balance, available_balancers

    outcome = balance(schedule, "paper", policy="lexicographic")
    outcome = balance(schedule, "genetic", generations=40)

Every strategy returns a :class:`BalanceOutcome` carrying the balanced
schedule, a uniform decision trace, the per-processor memory and the
feasibility verdict — computed once, the same way for every strategy, so
consumers never re-run :func:`~repro.scheduling.feasibility.check_schedule`
themselves.

Registered strategies
---------------------
``paper``
    Algorithm 3.2 (the paper's contribution).  Accepts every
    :class:`~repro.core.load_balancer.LoadBalancerOptions` field as a keyword
    parameter, with ``policy`` given as a string — which makes all
    :class:`~repro.core.cost.CostPolicy` interpretations (``ratio``,
    ``ratio_strict``, ``lexicographic``, plus the ``memory_only`` /
    ``load_only`` ablations) reachable through one key.
``no_balancing``
    Identity assignment (the paper's reference point).
``greedy_load``
    Longest-Processing-Time list rule on block execution times (memory-blind,
    assignment-level).
``bin_packing``
    Best-fit-decreasing packing of block memories onto the processors.
``memory_balancer``
    The bare greedy memory-only rule bounded by Theorem 2.
``genetic``
    The Greene-style GA baseline; accepts every
    :class:`~repro.baselines.genetic.GeneticOptions` field.
``branch_and_bound``
    Exact min-max-memory partitioning (``ω_opt``) for small instances;
    accepts ``node_limit``.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping
from dataclasses import dataclass, field, fields as dataclass_fields
from typing import Any, Protocol, runtime_checkable

from repro.baselines.base import AssignmentResult
from repro.baselines.bin_packing import ffd_memory_assignment
from repro.baselines.branch_and_bound import optimal_memory_assignment
from repro.baselines.genetic import GeneticOptions, genetic_assignment
from repro.baselines.greedy_load import lpt_assignment
from repro.baselines.memory_balancer import greedy_memory_assignment
from repro.baselines.no_balancing import no_balancing
from repro.core.blocks import BlockBuildOptions, build_blocks
from repro.core.cost import CostPolicy
from repro.core.load_balancer import LoadBalancer, LoadBalancerOptions
from repro.core.result import LoadBalanceResult
from repro.errors import ConfigurationError
from repro.metrics.balance import busy_time_by_processor
from repro.scheduling.feasibility import check_schedule
from repro.scheduling.schedule import Schedule

__all__ = [
    "Balancer",
    "BalanceOutcome",
    "BalancerSpec",
    "available_balancers",
    "balancer_info",
    "balance",
    "get_balancer",
    "register_balancer",
]


@dataclass(slots=True)
class BalanceOutcome:
    """Uniform outcome of any registered balancing strategy."""

    #: Registry key of the strategy that produced the outcome.
    balancer: str
    initial_schedule: Schedule
    #: The (re)balanced schedule.
    schedule: Schedule
    #: Feasibility verdict of the balanced schedule (dependences, strict
    #: periodicity, overlaps — memory capacity is a metrics concern), computed
    #: once with the same checker for every strategy.
    feasible: bool
    #: Constraint violations behind a negative verdict.
    violations: list[str] = field(default_factory=list)
    #: Strategy warnings (forced placements, retry-ladder notes, ...).
    warnings: list[str] = field(default_factory=list)
    #: Uniform per-block decision trace: ``{"block", "from", "to", "moved"}``
    #: entries, extended with ``start``/``gain``/``forced`` for the paper
    #: heuristic whose moves carry timing decisions.
    trace: list[dict[str, Any]] = field(default_factory=list)
    #: Which rule set produced the result (``"paper"``/``"conservative"``/
    #: ``"no-op"`` for the heuristic's retry ladder, ``"assignment"`` for the
    #: timing-blind baselines).
    safety_level: str = "assignment"
    #: Algorithm-specific extras (GA fitness, branch-and-bound nodes, λ
    #: evaluation count, ...).
    info: dict[str, float] = field(default_factory=dict)
    #: Underlying result object (:class:`LoadBalanceResult` or
    #: :class:`AssignmentResult`) for consumers needing full detail.
    raw: object | None = None
    #: The :class:`~repro.scheduling.feasibility.FeasibilityReport` behind
    #: ``feasible``/``violations`` (``check_memory=False`` semantics).  A
    #: runtime handle like ``raw``: consumers such as the conformance oracle
    #: reuse it instead of re-running the checker.
    feasibility_report: object | None = None

    # -- headline numbers ---------------------------------------------------
    @property
    def makespan_before(self) -> float:
        """Total execution time of the initial schedule."""
        return self.initial_schedule.makespan

    @property
    def makespan_after(self) -> float:
        """Total execution time of the balanced schedule."""
        return self.schedule.makespan

    @property
    def total_gain(self) -> float:
        """``G_total = L_former - L_new``."""
        return self.makespan_before - self.makespan_after

    @property
    def memory_by_processor(self) -> dict[str, float]:
        """Per-processor memory of the balanced schedule."""
        return self.schedule.memory_by_processor()

    @property
    def max_memory(self) -> float:
        """``ω``: the largest per-processor memory after balancing."""
        return max(self.memory_by_processor.values(), default=0.0)

    @property
    def max_execution(self) -> float:
        """Largest per-processor busy time after balancing."""
        return max(busy_time_by_processor(self.schedule).values(), default=0.0)

    @property
    def moves(self) -> int:
        """Number of blocks that changed processor."""
        return sum(1 for entry in self.trace if entry.get("moved"))

    def summary(self) -> str:
        """Human-readable wrap-up (delegates to the underlying result)."""
        raw_summary = getattr(self.raw, "summary", None)
        if callable(raw_summary):
            return raw_summary()
        return (
            f"{self.balancer}: makespan {self.makespan_before:g} -> "
            f"{self.makespan_after:g}, max memory {self.max_memory:g}, "
            f"{self.moves} block move(s), feasible={self.feasible}"
        )

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe summary of the outcome (no schedule objects)."""
        return {
            "balancer": self.balancer,
            "feasible": self.feasible,
            "violations": list(self.violations),
            "warnings": list(self.warnings),
            "safety_level": self.safety_level,
            "makespan_before": float(self.makespan_before),
            "makespan_after": float(self.makespan_after),
            "total_gain": float(self.total_gain),
            "memory_by_processor": {
                name: float(amount)
                for name, amount in sorted(self.memory_by_processor.items())
            },
            "max_memory": float(self.max_memory),
            "max_execution": float(self.max_execution),
            "moves": self.moves,
            "trace": [dict(entry) for entry in self.trace],
            "info": {key: float(value) for key, value in self.info.items()},
        }


@runtime_checkable
class Balancer(Protocol):
    """What every registered strategy exposes: one ``balance`` entry point."""

    name: str
    description: str

    def balance(self, schedule: Schedule, **params: Any) -> BalanceOutcome:
        """Run the strategy on ``schedule`` and return its uniform outcome."""
        ...  # pragma: no cover - protocol definition


@dataclass(frozen=True, slots=True)
class BalancerSpec:
    """One registry entry (implements the :class:`Balancer` protocol)."""

    name: str
    description: str
    #: Parameter names the strategy accepts (documentation for ``repro-lb list``).
    params: tuple[str, ...]
    runner: Callable[..., BalanceOutcome]

    def balance(self, schedule: Schedule, **params: Any) -> BalanceOutcome:
        """Run the strategy (rejecting unknown parameters up front)."""
        unknown = sorted(set(params) - set(self.params))
        if unknown:
            raise ConfigurationError(
                f"Balancer {self.name!r} does not accept parameter(s) {unknown}; "
                f"supported: {sorted(self.params)}"
            )
        return self.runner(schedule, **params)


_REGISTRY: dict[str, BalancerSpec] = {}


def register_balancer(
    name: str, description: str, params: tuple[str, ...] = ()
) -> Callable[[Callable[..., BalanceOutcome]], Callable[..., BalanceOutcome]]:
    """Register ``runner`` under ``name`` (decorator form)."""

    def decorator(runner: Callable[..., BalanceOutcome]) -> Callable[..., BalanceOutcome]:
        if name in _REGISTRY:
            raise ConfigurationError(f"Balancer {name!r} is already registered")
        _REGISTRY[name] = BalancerSpec(
            name=name, description=description, params=params, runner=runner
        )
        return runner

    return decorator


def available_balancers() -> tuple[str, ...]:
    """Registered balancer names, sorted."""
    return tuple(sorted(_REGISTRY))


def balancer_info(name: str) -> BalancerSpec:
    """Registry entry of ``name`` (raises :class:`ConfigurationError` if absent)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"Unknown balancer {name!r}; registered: {list(available_balancers())}"
        ) from None


def get_balancer(name: str) -> Balancer:
    """The :class:`Balancer` registered under ``name``."""
    return balancer_info(name)


def balance(
    schedule: Schedule,
    balancer: str | Mapping[str, Any] = "paper",
    **params: Any,
) -> BalanceOutcome:
    """Run any registered strategy: ``balance(schedule, config) -> BalanceOutcome``.

    ``balancer`` is either a registry key (keyword parameters passed
    directly) or a config mapping ``{"balancer": name, "params": {...}}`` —
    the exact shape :class:`~repro.api.config.BalanceStage` serialises to.
    """
    if isinstance(balancer, Mapping):
        if params:
            raise ConfigurationError(
                "Pass parameters either inside the config mapping or as keywords, not both"
            )
        name = balancer.get("balancer", "paper")
        params = dict(balancer.get("params") or {})
    else:
        name = balancer
    return get_balancer(name).balance(schedule, **params)


# ----------------------------------------------------------------------
# Adapters
# ----------------------------------------------------------------------
def _verdict(schedule: Schedule):
    report = check_schedule(schedule, check_memory=False)
    return report.is_feasible, report.all_violations, report


def _heuristic_outcome(name: str, result: LoadBalanceResult) -> BalanceOutcome:
    trace = [
        {
            "block": decision.block.label,
            "from": decision.block.processor,
            "to": decision.chosen_processor,
            "moved": decision.moved_away,
            "start": float(decision.placement_start),
            "gain": float(decision.gain),
            "forced": decision.forced,
            "updated_blocks": list(decision.updated_blocks),
        }
        for decision in result.decisions
    ]
    feasible, violations, report = _verdict(result.balanced_schedule)
    return BalanceOutcome(
        balancer=name,
        initial_schedule=result.initial_schedule,
        schedule=result.balanced_schedule,
        feasible=feasible,
        violations=violations,
        feasibility_report=report,
        warnings=list(result.warnings),
        trace=trace,
        safety_level=result.safety_level,
        info={"evaluations": float(result.evaluations)},
        raw=result,
    )


def _assignment_outcome(
    name: str, initial: Schedule, result: AssignmentResult
) -> BalanceOutcome:
    # Block labels/origins are recorded by AssignmentResult.build; rebuilding
    # the blocks here is only needed for hand-rolled results.
    origin = result.block_origins or {
        block.id: (block.label, block.processor)
        for block in build_blocks(initial, BlockBuildOptions())
    }
    trace = [
        {
            "block": origin[block_id][0],
            "from": origin[block_id][1],
            "to": target,
            "moved": target != origin[block_id][1],
        }
        for block_id, target in sorted(result.assignment.items())
    ]
    return BalanceOutcome(
        balancer=name,
        initial_schedule=initial,
        schedule=result.schedule,
        feasible=result.feasible,
        violations=list(result.violations),
        trace=trace,
        safety_level="assignment",
        info=dict(result.info),
        raw=result,
        feasibility_report=result.feasibility_report,
    )


def _coerce_options(params: dict[str, Any]) -> LoadBalancerOptions:
    """Build :class:`LoadBalancerOptions` from JSON-friendly parameters."""
    if "policy" in params:
        policy = params["policy"]
        if isinstance(policy, str):
            try:
                params["policy"] = CostPolicy(policy)
            except ValueError:
                raise ConfigurationError(
                    f"Unknown cost policy {policy!r}; expected one of "
                    f"{[p.value for p in CostPolicy]}"
                ) from None
    return LoadBalancerOptions(**params)


_PAPER_PARAMS = tuple(
    f.name for f in dataclass_fields(LoadBalancerOptions) if f.name != "block_options"
)

_GENETIC_PARAMS = tuple(f.name for f in dataclass_fields(GeneticOptions))


@register_balancer(
    "paper",
    "Algorithm 3.2 — block moves under dependence/periodicity constraints "
    "(policy: ratio | ratio_strict | lexicographic | memory_only | load_only)",
    params=_PAPER_PARAMS,
)
def _paper(schedule: Schedule, **params: Any) -> BalanceOutcome:
    result = LoadBalancer(schedule, _coerce_options(params)).run()
    return _heuristic_outcome("paper", result)


@register_balancer(
    "no_balancing", "identity assignment — keep the initial schedule (reference point)"
)
def _no_balancing(schedule: Schedule) -> BalanceOutcome:
    return _assignment_outcome("no_balancing", schedule, no_balancing(schedule))


@register_balancer(
    "greedy_load",
    "LPT list rule on block execution times (memory- and timing-blind)",
)
def _greedy_load(schedule: Schedule) -> BalanceOutcome:
    return _assignment_outcome("greedy_load", schedule, lpt_assignment(schedule))


@register_balancer(
    "bin_packing", "best-fit-decreasing packing of block memories onto the processors"
)
def _bin_packing(schedule: Schedule) -> BalanceOutcome:
    return _assignment_outcome("bin_packing", schedule, ffd_memory_assignment(schedule))


@register_balancer(
    "memory_balancer",
    "greedy memory-only rule (the (2 - 1/M)-approximation of Theorem 2)",
)
def _memory_balancer(schedule: Schedule) -> BalanceOutcome:
    return _assignment_outcome(
        "memory_balancer", schedule, greedy_memory_assignment(schedule)
    )


@register_balancer(
    "genetic",
    "Greene-style genetic-algorithm assignment baseline",
    params=_GENETIC_PARAMS,
)
def _genetic(schedule: Schedule, **params: Any) -> BalanceOutcome:
    options = GeneticOptions(**params) if params else None
    return _assignment_outcome(
        "genetic", schedule, genetic_assignment(schedule, options)
    )


@register_balancer(
    "branch_and_bound",
    "exact min-max-memory partitioning (ω_opt) — small instances only",
    params=("node_limit",),
)
def _branch_and_bound(schedule: Schedule, **params: Any) -> BalanceOutcome:
    return _assignment_outcome(
        "branch_and_bound", schedule, optimal_memory_assignment(schedule, **params)
    )
