"""Declarative pipeline configuration (schema ``repro-pipeline/1``).

A :class:`PipelineConfig` describes one end-to-end run — workload, initial
schedule, balancing strategy, verification and reporting — as plain data, so
campaign manifests, CLI flags and tests all speak one schema::

    {
      "schema": "repro-pipeline/1",
      "label": "quickstart",
      "workload": {"kind": "spec", "spec": {"task_count": 40, ...}},
      "schedule": {"policy": "least_loaded"},
      "balance": {"balancer": "paper", "params": {"policy": "ratio"}},
      "verify": {"enabled": true, "check_memory": false},
      "report": {"enabled": true, "steps": false, "compare": true, ...}
    }

``PipelineConfig.from_dict(cfg.to_dict()) == cfg`` holds for every config
(the round trip is property-tested); unknown keys and schema mismatches are
rejected so stale manifests fail loudly instead of silently degrading.
"""

from __future__ import annotations

import dataclasses
import hashlib
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro import jsonio
from repro.errors import ConfigurationError, WorkloadError
from repro.schemas import PIPELINE_SCHEMA
from repro.workloads.spec import WorkloadSpec

__all__ = [
    "PIPELINE_SCHEMA",
    "WorkloadStage",
    "ScheduleStage",
    "BalanceStage",
    "VerifyStage",
    "ReportStage",
    "PipelineConfig",
]

#: Recognised workload kinds.
_WORKLOAD_KINDS = ("spec", "paper_example", "provided")


def _spec_to_dict(spec: WorkloadSpec) -> dict[str, Any]:
    return spec.to_dict()


def _spec_from_dict(data: Mapping[str, Any]) -> WorkloadSpec:
    # The spec owns its serialisation; config-level consumers keep seeing
    # ConfigurationError for malformed payloads.
    try:
        return WorkloadSpec.from_dict(data)
    except WorkloadError as error:
        raise ConfigurationError(str(error)) from None


def _check_keys(data: Mapping[str, Any], allowed: tuple[str, ...], stage: str) -> None:
    unknown = sorted(set(data) - set(allowed))
    if unknown:
        raise ConfigurationError(
            f"Unknown {stage} key(s) {unknown}; supported: {sorted(allowed)}"
        )


@dataclass(frozen=True, slots=True)
class WorkloadStage:
    """Where the problem instance comes from.

    ``spec``
        Synthetic workload described by a :class:`WorkloadSpec` (fully
        declarative, serialisable).
    ``paper_example``
        The worked example of the paper (Figures 2–3), including its fixed
        initial schedule.
    ``provided``
        The graph and architecture are supplied in memory to
        :class:`~repro.api.pipeline.Pipeline` (the examples do this); such a
        config still serialises, but running it requires the objects.
    """

    kind: str = "spec"
    spec: WorkloadSpec | None = None

    def __post_init__(self) -> None:
        if self.kind not in _WORKLOAD_KINDS:
            raise ConfigurationError(
                f"Unknown workload kind {self.kind!r}; expected one of {_WORKLOAD_KINDS}"
            )
        if self.kind == "spec" and self.spec is None:
            raise ConfigurationError('workload kind "spec" requires a workload spec')
        if self.kind != "spec" and self.spec is not None:
            raise ConfigurationError(
                f'workload kind {self.kind!r} does not take a spec'
            )

    def to_dict(self) -> dict[str, Any]:
        data: dict[str, Any] = {"kind": self.kind}
        if self.spec is not None:
            data["spec"] = _spec_to_dict(self.spec)
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "WorkloadStage":
        _check_keys(data, ("kind", "spec"), "workload stage")
        spec = data.get("spec")
        return cls(
            kind=data.get("kind", "spec"),
            spec=_spec_from_dict(spec) if spec is not None else None,
        )


@dataclass(frozen=True, slots=True)
class ScheduleStage:
    """Initial distributed scheduling (ignored for ``paper_example``, whose
    Figure-3 schedule is fixed)."""

    #: :class:`~repro.scheduling.heuristic.PlacementPolicy` value.
    policy: str = "least_loaded"

    def to_dict(self) -> dict[str, Any]:
        return {"policy": self.policy}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScheduleStage":
        _check_keys(data, ("policy",), "schedule stage")
        return cls(policy=data.get("policy", "least_loaded"))


@dataclass(frozen=True, slots=True)
class BalanceStage:
    """Which registered balancer runs, with which parameters."""

    balancer: str = "paper"
    params: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {"balancer": self.balancer, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "BalanceStage":
        _check_keys(data, ("balancer", "params"), "balance stage")
        return cls(
            balancer=data.get("balancer", "paper"),
            params=dict(data.get("params") or {}),
        )


@dataclass(frozen=True, slots=True)
class VerifyStage:
    """Feasibility verification of the balanced schedule."""

    enabled: bool = True
    #: Also check per-processor memory capacities.
    check_memory: bool = False
    #: Replay the balanced schedule in the discrete-event simulator and diff
    #: the trace against the analytical model (the ``repro-conformance/1``
    #: report lands in ``RunResult.conformance``).  Runs independently of
    #: ``enabled`` — the oracle computes its own feasibility verdict.
    conformance: bool = False
    #: Hyper-periods the conformance replay covers (≥ 2 exercises the
    #: repeatability condition).
    conformance_hyper_periods: int = 2

    def __post_init__(self) -> None:
        if self.conformance_hyper_periods < 1:
            raise ConfigurationError(
                f"conformance_hyper_periods must be >= 1, got "
                f"{self.conformance_hyper_periods}"
            )

    def to_dict(self) -> dict[str, Any]:
        return {
            "enabled": self.enabled,
            "check_memory": self.check_memory,
            "conformance": self.conformance,
            "conformance_hyper_periods": self.conformance_hyper_periods,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "VerifyStage":
        _check_keys(
            data,
            ("enabled", "check_memory", "conformance", "conformance_hyper_periods"),
            "verify stage",
        )
        return cls(
            enabled=bool(data.get("enabled", True)),
            check_memory=bool(data.get("check_memory", False)),
            conformance=bool(data.get("conformance", False)),
            conformance_hyper_periods=int(data.get("conformance_hyper_periods", 2)),
        )


@dataclass(frozen=True, slots=True)
class ReportStage:
    """What the rendered report of the run contains."""

    enabled: bool = True
    #: Lead with the workload description line.
    describe_workload: bool = True
    #: Print the initial and balanced schedules in full.
    show_schedules: bool = False
    #: Print the per-block decision trace.
    steps: bool = False
    #: Append the before/after metric comparison table.
    compare: bool = True
    #: Replay both schedules in the discrete-event simulator.
    simulate: bool = False
    #: Hyper-periods the simulation replays.
    simulate_hyper_periods: int = 2

    def to_dict(self) -> dict[str, Any]:
        return {
            "enabled": self.enabled,
            "describe_workload": self.describe_workload,
            "show_schedules": self.show_schedules,
            "steps": self.steps,
            "compare": self.compare,
            "simulate": self.simulate,
            "simulate_hyper_periods": self.simulate_hyper_periods,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ReportStage":
        _check_keys(
            data,
            (
                "enabled",
                "describe_workload",
                "show_schedules",
                "steps",
                "compare",
                "simulate",
                "simulate_hyper_periods",
            ),
            "report stage",
        )
        defaults = cls()
        return cls(
            enabled=bool(data.get("enabled", defaults.enabled)),
            describe_workload=bool(
                data.get("describe_workload", defaults.describe_workload)
            ),
            show_schedules=bool(data.get("show_schedules", defaults.show_schedules)),
            steps=bool(data.get("steps", defaults.steps)),
            compare=bool(data.get("compare", defaults.compare)),
            simulate=bool(data.get("simulate", defaults.simulate)),
            simulate_hyper_periods=int(
                data.get("simulate_hyper_periods", defaults.simulate_hyper_periods)
            ),
        )


@dataclass(frozen=True, slots=True)
class PipelineConfig:
    """One declarative end-to-end run (see the module docstring)."""

    workload: WorkloadStage
    schedule: ScheduleStage = field(default_factory=ScheduleStage)
    balance: BalanceStage = field(default_factory=BalanceStage)
    verify: VerifyStage = field(default_factory=VerifyStage)
    report: ReportStage = field(default_factory=ReportStage)
    label: str = ""

    def to_dict(self) -> dict[str, Any]:
        """Serialise the config (round-trippable through :meth:`from_dict`)."""
        return {
            "schema": PIPELINE_SCHEMA,
            "label": self.label,
            "workload": self.workload.to_dict(),
            "schedule": self.schedule.to_dict(),
            "balance": self.balance.to_dict(),
            "verify": self.verify.to_dict(),
            "report": self.report.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PipelineConfig":
        """Rebuild a config from its serialised form (strict: version-checked)."""
        jsonio.check_artifact_schema(data, "repro-pipeline", 1, kind="pipeline config")
        _check_keys(
            data,
            ("schema", "label", "workload", "schedule", "balance", "verify", "report"),
            "pipeline config",
        )
        if "workload" not in data:
            raise ConfigurationError("Pipeline config requires a workload stage")
        return cls(
            workload=WorkloadStage.from_dict(data["workload"]),
            schedule=ScheduleStage.from_dict(data.get("schedule") or {}),
            balance=BalanceStage.from_dict(data.get("balance") or {}),
            verify=VerifyStage.from_dict(data.get("verify") or {}),
            report=ReportStage.from_dict(data.get("report") or {}),
            label=str(data.get("label", "")),
        )

    def canonical_bytes(self) -> bytes:
        """Canonical strict-JSON serialisation of the config (UTF-8 bytes).

        Compact separators, sorted keys, non-finite floats as ``null`` — the
        same :mod:`repro.jsonio` rules every artifact writer uses, so two
        equal configs always produce identical bytes whatever dict ordering
        built them.
        """
        return jsonio.dumps(self.to_dict(), indent=None).encode("utf-8")

    def fingerprint(self) -> str:
        """SHA-256 hex digest of :meth:`canonical_bytes`.

        The identity contract of the config: ``a == b`` implies
        ``a.fingerprint() == b.fingerprint()``.  The balancing service keys
        its result cache on it (identical configs return byte-identical
        cached results) and the campaign runner uses it to dedupe identical
        pipeline configs within one manifest batch.
        """
        return hashlib.sha256(self.canonical_bytes()).hexdigest()

    def with_conformance(self, *, hyper_periods: int | None = None) -> "PipelineConfig":
        """Copy of the config with the conformance oracle forced on.

        The ``repro-lb conform`` verb uses this to re-run any serialised
        config under the oracle without editing the file.
        """
        verify = dataclasses.replace(
            self.verify,
            conformance=True,
            conformance_hyper_periods=(
                self.verify.conformance_hyper_periods
                if hyper_periods is None
                else hyper_periods
            ),
        )
        return dataclasses.replace(self, verify=verify)

    # -- front-end constructors --------------------------------------------
    @classmethod
    def paper_example(
        cls, *, policy: str = "lexicographic", steps: bool = False
    ) -> "PipelineConfig":
        """The worked example of the paper, as the CLI ``example`` command runs it."""
        return cls(
            workload=WorkloadStage(kind="paper_example"),
            balance=BalanceStage(balancer="paper", params={"policy": policy}),
            report=ReportStage(
                describe_workload=False,
                show_schedules=True,
                steps=steps,
                compare=False,
            ),
            label="paper-example",
        )

    @classmethod
    def synthetic(
        cls,
        spec: WorkloadSpec,
        *,
        initial_policy: str = "least_loaded",
        balancer: str = "paper",
        params: Mapping[str, Any] | None = None,
        simulate: bool = False,
    ) -> "PipelineConfig":
        """A synthetic-workload run, as the CLI ``random`` command runs it."""
        return cls(
            workload=WorkloadStage(kind="spec", spec=spec),
            schedule=ScheduleStage(policy=initial_policy),
            balance=BalanceStage(balancer=balancer, params=dict(params or {})),
            report=ReportStage(simulate=simulate),
            label=spec.label or "synthetic",
        )
