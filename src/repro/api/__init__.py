"""Unified pipeline API: one Balancer protocol, a registry, structured runs.

This package is the canonical top-level surface — examples, the CLI and the
service import from here rather than reaching into ``repro.core`` /
``repro.scheduling`` internals:

* :mod:`repro.api.balancers` — the :class:`Balancer` protocol, the
  string-keyed registry adapting the paper heuristic and all six baselines,
  and the uniform :class:`BalanceOutcome`;
* :mod:`repro.api.config` — the declarative, versioned
  :class:`PipelineConfig` (schema ``repro-pipeline/1``);
* :mod:`repro.api.pipeline` — the :class:`Pipeline` facade and the
  serialisable :class:`RunResult` artifact (schema ``repro-run/1``, or
  ``repro-run/2`` for :meth:`Pipeline.rebalance` results carrying delta
  provenance);
* :mod:`repro.churn` (re-exported here) — the typed workload deltas
  (:class:`AddTask`, :class:`RemoveTask`, :class:`WcetDrift`,
  :class:`ProcessorLoss`), the :class:`ChurnTimeline` envelope and the
  incremental repair entry points :meth:`Pipeline.rebalance` /
  :func:`rebalance_run`.

Frequently-needed pieces of the underlying layers are re-exported as part of
the stable surface: :class:`CostPolicy` (the paper's cost definitions),
:class:`PlacementPolicy` (initial-scheduler placement) and
:class:`SchedulerOptions` (the initial scheduler's knobs).
"""

from repro.api.balancers import (
    BalanceOutcome,
    Balancer,
    BalancerSpec,
    available_balancers,
    balance,
    balancer_info,
    get_balancer,
    register_balancer,
)
from repro.api.config import (
    PIPELINE_SCHEMA,
    BalanceStage,
    PipelineConfig,
    ReportStage,
    ScheduleStage,
    VerifyStage,
    WorkloadStage,
)
from repro.api.pipeline import (
    RUN_SCHEMA,
    RUN_SCHEMA_V2,
    Pipeline,
    RunResult,
    rebalance_run,
    run_pipeline,
)
from repro.churn import (
    DELTA_SCHEMA,
    AddTask,
    ChurnTimeline,
    ProcessorLoss,
    RemoveTask,
    WcetDrift,
    delta_from_dict,
    timeline_from_payload,
)
from repro.core.cost import CostPolicy
from repro.scheduling.heuristic import PlacementPolicy, SchedulerOptions

__all__ = [
    "DELTA_SCHEMA",
    "PIPELINE_SCHEMA",
    "RUN_SCHEMA",
    "RUN_SCHEMA_V2",
    "AddTask",
    "BalanceOutcome",
    "BalanceStage",
    "Balancer",
    "BalancerSpec",
    "ChurnTimeline",
    "CostPolicy",
    "Pipeline",
    "PipelineConfig",
    "PlacementPolicy",
    "ProcessorLoss",
    "RemoveTask",
    "ReportStage",
    "RunResult",
    "ScheduleStage",
    "SchedulerOptions",
    "VerifyStage",
    "WcetDrift",
    "WorkloadStage",
    "available_balancers",
    "balance",
    "balancer_info",
    "delta_from_dict",
    "get_balancer",
    "register_balancer",
    "rebalance_run",
    "run_pipeline",
    "timeline_from_payload",
]
