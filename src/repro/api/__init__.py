"""Unified pipeline API: one Balancer protocol, a registry, structured runs.

This package is the composable surface every front-end builds on:

* :mod:`repro.api.balancers` — the :class:`Balancer` protocol, the
  string-keyed registry adapting the paper heuristic and all six baselines,
  and the uniform :class:`BalanceOutcome`;
* :mod:`repro.api.config` — the declarative, versioned
  :class:`PipelineConfig` (schema ``repro-pipeline/1``);
* :mod:`repro.api.pipeline` — the :class:`Pipeline` facade and the
  serialisable :class:`RunResult` artifact (schema ``repro-run/1``).
"""

from repro.api.balancers import (
    BalanceOutcome,
    Balancer,
    BalancerSpec,
    available_balancers,
    balance,
    balancer_info,
    get_balancer,
    register_balancer,
)
from repro.api.config import (
    PIPELINE_SCHEMA,
    BalanceStage,
    PipelineConfig,
    ReportStage,
    ScheduleStage,
    VerifyStage,
    WorkloadStage,
)
from repro.api.pipeline import RUN_SCHEMA, Pipeline, RunResult, run_pipeline

__all__ = [
    "PIPELINE_SCHEMA",
    "RUN_SCHEMA",
    "BalanceOutcome",
    "BalanceStage",
    "Balancer",
    "BalancerSpec",
    "Pipeline",
    "PipelineConfig",
    "ReportStage",
    "RunResult",
    "ScheduleStage",
    "VerifyStage",
    "WorkloadStage",
    "available_balancers",
    "balance",
    "balancer_info",
    "get_balancer",
    "register_balancer",
    "run_pipeline",
]
