"""Command-line interface (installed as ``repro-lb``).

Three subcommands cover the common workflows:

``repro-lb example``
    Reproduce the paper's worked example (Figures 2–4) and print the
    before/after schedules and the step-by-step decisions.

``repro-lb experiment E1 [E2 ...] [--full]``
    Run one or more of the experiments E1–E8 and print their tables (the same
    code the benchmarks call).

``repro-lb random --tasks N --processors M [--shape ...] [--seed ...]``
    Generate a synthetic workload, run the initial scheduler and the load
    balancer, and print the comparison (optionally simulating both schedules).

``repro-lb campaign E3 E6 [--preset ...] [--jobs N] [--output DIR] [--resume]``
    Fan one or more experiment sweeps out over a process pool, writing
    per-run JSON manifests and a campaign summary artifact (resumable).
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from repro._version import __version__
from repro.core.cost import CostPolicy
from repro.errors import ConfigurationError
from repro.core.load_balancer import LoadBalancer, LoadBalancerOptions
from repro.experiments import ALL_EXPERIMENTS, PRESET_NAMES, run_campaign
from repro.metrics.report import ScheduleReport, compare_schedules
from repro.scheduling.heuristic import PlacementPolicy, SchedulerOptions
from repro.simulation.engine import SimulationOptions, simulate
from repro.workloads.generator import scheduled_workload
from repro.workloads.paper_example import paper_initial_schedule
from repro.workloads.spec import GraphShape, WorkloadSpec

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Build the ``repro-lb`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-lb",
        description="Load balancing and efficient memory usage for homogeneous distributed "
        "real-time embedded systems (Kermia & Sorel, 2008) — reproduction toolkit.",
    )
    parser.add_argument("--version", action="version", version=f"%(prog)s {__version__}")
    subparsers = parser.add_subparsers(dest="command", required=True)

    example = subparsers.add_parser("example", help="reproduce the paper's worked example")
    example.add_argument(
        "--policy",
        choices=[policy.value for policy in CostPolicy],
        default=CostPolicy.LEXICOGRAPHIC.value,
        help="cost-function policy (default: lexicographic, which matches the paper's trace)",
    )
    example.add_argument(
        "--steps", action="store_true", help="print the per-block decision trace"
    )

    experiment = subparsers.add_parser("experiment", help="run experiments E1..E8")
    experiment.add_argument(
        "names",
        nargs="+",
        choices=sorted(ALL_EXPERIMENTS) + ["all"],
        help="experiment identifiers (or 'all')",
    )

    campaign = subparsers.add_parser(
        "campaign", help="run a parallel, resumable experiment campaign"
    )
    campaign.add_argument(
        "names",
        nargs="+",
        choices=sorted(ALL_EXPERIMENTS) + ["all"],
        help="experiment identifiers (or 'all')",
    )
    campaign.add_argument(
        "--preset",
        choices=PRESET_NAMES,
        default="quick",
        help="config preset of every run (default: quick)",
    )
    campaign.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="process-pool width (default: one worker per CPU; 1 runs inline)",
    )
    campaign.add_argument(
        "--output",
        default="campaign-results",
        help="directory receiving run manifests and campaign.json",
    )
    campaign.add_argument(
        "--resume",
        action="store_true",
        help="skip runs whose manifest already records a successful outcome",
    )
    campaign.add_argument(
        "--no-split-seeds",
        action="store_true",
        help="keep each experiment's seed sweep in a single run",
    )

    random_cmd = subparsers.add_parser("random", help="balance a synthetic workload")
    random_cmd.add_argument("--tasks", type=int, default=40)
    random_cmd.add_argument("--processors", type=int, default=4)
    random_cmd.add_argument("--utilization", type=float, default=0.3)
    random_cmd.add_argument(
        "--shape", choices=[shape.value for shape in GraphShape], default=GraphShape.PIPELINE.value
    )
    random_cmd.add_argument("--seed", type=int, default=2008)
    random_cmd.add_argument(
        "--initial-policy",
        choices=[policy.value for policy in PlacementPolicy],
        default=PlacementPolicy.LEAST_LOADED.value,
    )
    random_cmd.add_argument(
        "--policy",
        choices=[policy.value for policy in CostPolicy],
        default=CostPolicy.RATIO.value,
    )
    random_cmd.add_argument(
        "--simulate", action="store_true", help="replay both schedules in the simulator"
    )
    return parser


def _run_example(args: argparse.Namespace) -> int:
    schedule = paper_initial_schedule()
    options = LoadBalancerOptions(policy=CostPolicy(args.policy))
    result = LoadBalancer(schedule, options).run()
    print("Initial schedule (Figure 3):")
    print(schedule.describe())
    print()
    if args.steps:
        for step, decision in enumerate(result.decisions, start=1):
            print(f"step {step}:")
            print(decision.describe())
            print()
    print("Balanced schedule (Figure 4):")
    print(result.balanced_schedule.describe())
    print()
    print(result.summary())
    return 0


def _run_experiments(args: argparse.Namespace) -> int:
    names = sorted(ALL_EXPERIMENTS) if "all" in args.names else args.names
    failures = 0
    for name in names:
        result = ALL_EXPERIMENTS[name]()
        print(result.render())
        print()
        if result.passed is False:
            failures += 1
    return 1 if failures else 0


def _run_campaign(args: argparse.Namespace) -> int:
    names = sorted(ALL_EXPERIMENTS) if "all" in args.names else args.names
    try:
        summary = run_campaign(
            names,
            args.preset,
            output_dir=args.output,
            jobs=args.jobs,
            resume=args.resume,
            split_seeds=not args.no_split_seeds,
        )
    except ConfigurationError as error:
        print(f"repro-lb campaign: error: {error}", file=sys.stderr)
        return 2
    print(summary.render())
    print()
    print(
        f"campaign: {len(summary.records)} runs in {summary.seconds:.1f}s, "
        f"{len(summary.failures)} failure(s); summary written to {summary.summary_path}"
    )
    return 0 if summary.ok else 1


def _run_random(args: argparse.Namespace) -> int:
    spec = WorkloadSpec(
        task_count=args.tasks,
        processor_count=args.processors,
        utilization=args.utilization,
        shape=GraphShape(args.shape),
        seed=args.seed,
        label=f"cli-{args.shape}-{args.seed}",
    )
    workload, schedule = scheduled_workload(
        spec, SchedulerOptions(policy=PlacementPolicy(args.initial_policy))
    )
    print(workload.describe())
    result = LoadBalancer(schedule, LoadBalancerOptions(policy=CostPolicy(args.policy))).run()
    print(result.summary())
    print()
    print(
        compare_schedules(
            [
                ScheduleReport.of("initial", schedule),
                ScheduleReport.of("balanced", result.balanced_schedule),
            ]
        )
    )
    if args.simulate:
        for label, candidate in (
            ("initial", schedule),
            ("balanced", result.balanced_schedule),
        ):
            print()
            print(f"simulation of the {label} schedule:")
            print(simulate(candidate, SimulationOptions(hyper_periods=2)).summary())
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point of the ``repro-lb`` command."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "example":
        return _run_example(args)
    if args.command == "experiment":
        return _run_experiments(args)
    if args.command == "campaign":
        return _run_campaign(args)
    if args.command == "random":
        return _run_random(args)
    parser.error(f"unknown command {args.command!r}")  # pragma: no cover
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
