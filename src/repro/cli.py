"""Command-line interface (installed as ``repro-lb``).

Every workflow is a thin front-end over the unified :mod:`repro.api`
pipeline — the CLI builds a :class:`~repro.api.PipelineConfig`, runs it and
prints the :class:`~repro.api.RunResult` report (or its JSON form):

``repro-lb example``
    Reproduce the paper's worked example (Figures 2–4) and print the
    before/after schedules and the step-by-step decisions.

``repro-lb run --config file.json``
    Execute any serialised pipeline config (schema ``repro-pipeline/1``).

``repro-lb random --tasks N --processors M [--balancer NAME] [...]``
    Generate a synthetic workload and run any registered balancer on it.

``repro-lb experiment E1 [E2 ...]``
    Run one or more of the experiments E1–E8 and print their tables (the same
    code the benchmarks call).

``repro-lb campaign E3 E6 [--preset ...] [--jobs N] [--output DIR] [--resume]``
    Fan one or more experiment sweeps out over a process pool, writing
    per-run JSON manifests and a campaign summary artifact (resumable).

``repro-lb bench list | run | compare | service | rebalance``
    The unified benchmark harness: list the registered benchmarks, run them
    under a bench preset (``tiny``/``paper``/``stress``) emitting a
    ``repro-bench/1`` artifact, compare two artifacts against a slowdown
    tolerance (non-zero exit on regression — the CI perf gate), load-test
    the service, or pin the incremental-rebalance speedup.

``repro-lb rebalance --config file.json --delta delta.json | --grid``
    Incremental rebalancing under churn: repair a prior run against a
    ``repro-delta/1`` delta (emitting a ``repro-run/2`` result), or replay
    the churn scenario grid under the differential and conformance oracles
    (``repro-churn/1`` artifact, non-zero exit on any finding — the CI
    churn gate).

``repro-lb sweep [--preset ...] [--scenarios ...] [--balancers ...]``
    The differential sweep: run every registered balancer over the scenario
    x seed grid, cross-check invariants on every run, and emit a
    ``repro-sweep/1`` artifact (non-zero exit on any finding — the CI
    scenario gate).

``repro-lb conform [--paper | --config file.json | grid flags]``
    The simulation-conformance oracle: replay schedules in the
    discrete-event simulator and structurally diff the traces against the
    analytical model (``repro-conformance/1`` reports).  Single-run mode
    (``--paper``/``--config``) exits non-zero when the replay diverges from
    the schedule; grid mode replays every cell of the scenario grid and
    exits non-zero on any simulator/model contradiction (the CI
    conformance gate).

``repro-lb hunt --objective NAME [--budget tiny|quick|full] [--seed N]``
    Adversarial scenario search: mutate workload-spec parameters (simulated
    annealing + a genetic refinement loop) to maximise a registered badness
    objective, shrink every find with the delta-debugging minimiser, and
    emit a ``repro-search/1`` artifact; ``--freeze`` merges the survivors
    into the frozen ``regression/*`` scenario registry the sweep and
    conformance gates replay.

``repro-lb lint PATH [PATH ...] [--rules a,b] [--output DIR] [--json]``
    The invariant linter: run the registered AST rules (strict JSON via
    jsonio, atomic writes, canonical EPSILON, seeded randomness, central
    schema table, never-raises manifest shells, no wall-clock timing,
    registry completeness) over Python sources and emit a ``repro-lint/1``
    findings artifact (non-zero exit on any finding — the CI invariant
    gate; the repo itself must stay clean).

``repro-lb list [--json]``
    Print every user-facing registry — balancers, cost/placement policies,
    scenario and churn families, hunt objectives, experiments, campaign and
    bench presets, benchmarks, lint rules, artifact schemas — through one
    uniform catalog (``--json`` emits it machine-readable).

``example``, ``random``, ``run`` and ``experiment`` accept ``--json`` to emit
machine-readable output instead of the ASCII report.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence
from pathlib import Path

from repro import jsonio
from repro._version import __version__
from repro.api import (
    CostPolicy,
    Pipeline,
    PipelineConfig,
    PlacementPolicy,
    available_balancers,
    balancer_info,
)
from repro.bench import (
    BENCH_PRESETS,
    BenchArtifact,
    available_benchmarks,
    benchmark_info,
    compare as compare_artifacts,
    run_benchmarks,
)
from repro.errors import ConfigurationError, ReproError
from repro.experiments import ALL_EXPERIMENTS, PRESET_NAMES, run_campaign
from repro.experiments.campaign import experiment_result_dict
from repro.lint import available_rules as available_lint_rules
from repro.lint import lint_paths
from repro.lint import rule_info as lint_rule_info
from repro.scenarios import (
    SCENARIO_PRESETS,
    available_churn_scenarios,
    available_scenarios,
    churn_scenario_info,
    run_churn_grid,
    run_sweep,
    scenario_info,
)
from repro.schemas import SCHEMA_TABLE
from repro.search import (
    BUDGETS,
    SearchOptions,
    available_objectives,
    freeze_counterexamples,
    objective_info,
    run_hunt,
)
from repro.workloads.spec import GraphShape, WorkloadSpec

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Build the ``repro-lb`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-lb",
        description="Load balancing and efficient memory usage for homogeneous distributed "
        "real-time embedded systems (Kermia & Sorel, 2008) — reproduction toolkit.",
    )
    parser.add_argument("--version", action="version", version=f"%(prog)s {__version__}")
    subparsers = parser.add_subparsers(dest="command", required=True)

    example = subparsers.add_parser("example", help="reproduce the paper's worked example")
    example.add_argument(
        "--policy",
        choices=[policy.value for policy in CostPolicy],
        default=CostPolicy.LEXICOGRAPHIC.value,
        help="cost-function policy (default: lexicographic, which matches the paper's trace)",
    )
    example.add_argument(
        "--steps", action="store_true", help="print the per-block decision trace"
    )
    example.add_argument(
        "--json", action="store_true", help="emit the structured RunResult as JSON"
    )

    run_cmd = subparsers.add_parser(
        "run", help="execute a serialised pipeline config (repro-pipeline/1)"
    )
    run_cmd.add_argument(
        "--config", required=True, help="path of the pipeline-config JSON file"
    )
    run_cmd.add_argument(
        "--json", action="store_true", help="emit the structured RunResult as JSON"
    )

    experiment = subparsers.add_parser("experiment", help="run experiments E1..E8")
    experiment.add_argument(
        "names",
        nargs="+",
        choices=sorted(ALL_EXPERIMENTS) + ["all"],
        help="experiment identifiers (or 'all')",
    )
    experiment.add_argument(
        "--json", action="store_true", help="emit the experiment results as JSON"
    )

    campaign = subparsers.add_parser(
        "campaign", help="run a parallel, resumable experiment campaign"
    )
    campaign.add_argument(
        "names",
        nargs="+",
        choices=sorted(ALL_EXPERIMENTS) + ["all"],
        help="experiment identifiers (or 'all')",
    )
    campaign.add_argument(
        "--preset",
        choices=PRESET_NAMES,
        default="quick",
        help="config preset of every run (default: quick)",
    )
    campaign.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="process-pool width (default: one worker per CPU; 1 runs inline)",
    )
    campaign.add_argument(
        "--output",
        default="campaign-results",
        help="directory receiving run manifests and campaign.json",
    )
    campaign.add_argument(
        "--resume",
        action="store_true",
        help="skip runs whose manifest already records a successful outcome",
    )
    campaign.add_argument(
        "--no-split-seeds",
        action="store_true",
        help="keep each experiment's seed sweep in a single run",
    )

    random_cmd = subparsers.add_parser("random", help="balance a synthetic workload")
    random_cmd.add_argument("--tasks", type=int, default=40)
    random_cmd.add_argument("--processors", type=int, default=4)
    random_cmd.add_argument("--utilization", type=float, default=0.3)
    random_cmd.add_argument(
        "--shape", choices=[shape.value for shape in GraphShape], default=GraphShape.PIPELINE.value
    )
    random_cmd.add_argument("--seed", type=int, default=2008)
    random_cmd.add_argument(
        "--initial-policy",
        choices=[policy.value for policy in PlacementPolicy],
        default=PlacementPolicy.LEAST_LOADED.value,
    )
    random_cmd.add_argument(
        "--balancer",
        choices=list(available_balancers()),
        default="paper",
        help="registered balancing strategy (default: the paper heuristic)",
    )
    random_cmd.add_argument(
        "--policy",
        choices=[policy.value for policy in CostPolicy],
        default=CostPolicy.RATIO.value,
        help="cost policy of the paper heuristic (ignored by the other balancers)",
    )
    random_cmd.add_argument(
        "--simulate", action="store_true", help="replay both schedules in the simulator"
    )
    random_cmd.add_argument(
        "--json", action="store_true", help="emit the structured RunResult as JSON"
    )

    bench = subparsers.add_parser(
        "bench", help="unified benchmark harness (repro-bench/1 artifacts)"
    )
    bench_sub = bench.add_subparsers(dest="bench_command", required=True)

    bench_sub.add_parser("list", help="list the registered benchmarks")

    bench_run = bench_sub.add_parser(
        "run", help="run benchmarks and emit a BENCH_*.json artifact"
    )
    bench_run.add_argument(
        "names",
        nargs="*",
        metavar="NAME",
        help="benchmark names (default: all registered benchmarks)",
    )
    bench_run.add_argument(
        "--preset",
        choices=sorted(BENCH_PRESETS),
        default="tiny",
        help="bench preset (default: tiny; paper ~ EXPERIMENTS.md scale, stress ~ full)",
    )
    bench_run.add_argument(
        "--warmup", type=int, default=1, help="unmeasured calls per benchmark (default: 1)"
    )
    bench_run.add_argument(
        "--repeats", type=int, default=3, help="measured calls per benchmark (default: 3)"
    )
    bench_run.add_argument(
        "--output",
        metavar="PATH",
        help="write the artifact here (a directory gets BENCH_<timestamp>.json)",
    )
    bench_run.add_argument(
        "--json", action="store_true", help="print the artifact JSON to stdout"
    )

    bench_compare = bench_sub.add_parser(
        "compare", help="compare a current artifact against a baseline"
    )
    bench_compare.add_argument("baseline", help="path of the baseline BENCH_*.json")
    bench_compare.add_argument("current", help="path of the current BENCH_*.json")
    bench_compare.add_argument(
        "--tolerance",
        type=float,
        default=2.5,
        help="slowdown ratio above which a benchmark fails (default: 2.5)",
    )
    bench_compare.add_argument(
        "--min-delta",
        type=float,
        default=0.05,
        help="absolute noise floor in seconds (default: 0.05; 0 disables it)",
    )
    bench_compare.add_argument(
        "--exponent-margin",
        type=float,
        default=0.25,
        help="allowed fit_exponent growth over the baseline for scaling-curve "
        "records (default: 0.25)",
    )
    bench_compare.add_argument(
        "--json", action="store_true", help="print the comparison report as JSON"
    )

    bench_service = bench_sub.add_parser(
        "service",
        help="load-test the balancing service (concurrent clients over sockets)",
    )
    bench_service.add_argument(
        "--clients", type=int, default=8, help="concurrent client threads (default: 8)"
    )
    bench_service.add_argument(
        "--requests",
        type=int,
        default=10,
        help="requests per client (default: 10)",
    )
    bench_service.add_argument(
        "--unique",
        type=int,
        default=4,
        help="unique configs in the workload mix (default: 4)",
    )
    bench_service.add_argument(
        "--workload-preset",
        default="tiny",
        help="scenario-sweep preset the mix draws from (default: tiny)",
    )
    bench_service.add_argument(
        "--jobs", type=int, default=None, help="worker-pool width (default: auto)"
    )
    bench_service.add_argument(
        "--pool",
        choices=("process", "thread"),
        default="process",
        help="worker-pool kind (default: process)",
    )
    bench_service.add_argument(
        "--max-batch", type=int, default=16, help="micro-batch size limit (default: 16)"
    )
    bench_service.add_argument(
        "--batch-window-ms",
        type=float,
        default=5.0,
        help="micro-batch collection window in ms (default: 5)",
    )
    bench_service.add_argument(
        "--output",
        metavar="PATH",
        help="write the artifact here (a directory gets BENCH_<timestamp>.json)",
    )
    bench_service.add_argument(
        "--json", action="store_true", help="print the artifact JSON to stdout"
    )

    bench_rebalance = bench_sub.add_parser(
        "rebalance",
        help="pin the incremental-rebalance-vs-from-scratch speedup",
    )
    bench_rebalance.add_argument(
        "--tasks", type=int, default=400, help="prior workload size (default: 400)"
    )
    bench_rebalance.add_argument(
        "--processors", type=int, default=8, help="processor count (default: 8)"
    )
    bench_rebalance.add_argument(
        "--deltas",
        type=int,
        default=8,
        help="independent single-task arrivals timed per repeat (default: 8)",
    )
    bench_rebalance.add_argument(
        "--repeats", type=int, default=2, help="measured repeats (default: 2)"
    )
    bench_rebalance.add_argument(
        "--seed", type=int, default=2008, help="workload seed (default: 2008)"
    )
    bench_rebalance.add_argument(
        "--output",
        metavar="PATH",
        help="write the artifact here (a directory gets BENCH_<timestamp>.json)",
    )
    bench_rebalance.add_argument(
        "--json", action="store_true", help="print the artifact JSON to stdout"
    )

    bench_xl = bench_sub.add_parser(
        "stress-xl",
        help="time-vs-N scaling curve of the balancer on the array kernels",
    )
    bench_xl.add_argument(
        "--preset",
        choices=("smoke", "xl"),
        default="smoke",
        help="tier sizes: smoke = N in (200, 400, 800) (CI-sized), "
        "xl = N in (1000, 5000, 20000) (default: smoke)",
    )
    bench_xl.add_argument(
        "--repeats", type=int, default=2, help="balance repeats per N (default: 2)"
    )
    bench_xl.add_argument(
        "--seed", type=int, default=2008, help="workload seed (default: 2008)"
    )
    bench_xl.add_argument(
        "--engine",
        choices=("array", "python"),
        default="array",
        help="occupancy engine to time (default: array)",
    )
    bench_xl.add_argument(
        "--output",
        metavar="PATH",
        help="write the artifact here (a directory gets BENCH_<timestamp>.json)",
    )
    bench_xl.add_argument(
        "--json", action="store_true", help="print the artifact JSON to stdout"
    )

    rebalance = subparsers.add_parser(
        "rebalance",
        help="incremental rebalance under churn (repro-run/2 / repro-churn/1)",
        description="Repair a balanced schedule against a workload delta "
        "instead of recomputing it.  With --config and --delta, runs the "
        "prior pipeline, applies the delta incrementally and prints the "
        "repro-run/2 result.  With --grid, replays the whole churn scenario "
        "grid under the differential (rebalance vs from-scratch) and "
        "conformance oracles, exiting non-zero on any finding (the CI "
        "churn gate).",
    )
    rebalance.add_argument(
        "--config",
        metavar="PATH",
        help="prior pipeline config (repro-pipeline/1) the delta applies to",
    )
    rebalance.add_argument(
        "--delta",
        metavar="PATH",
        help="repro-delta/1 file: one delta (a dict with a 'kind') or a timeline",
    )
    rebalance.add_argument(
        "--grid",
        action="store_true",
        help="replay the churn scenario grid instead of a single config+delta",
    )
    rebalance.add_argument(
        "--preset",
        choices=sorted(SCENARIO_PRESETS),
        default="tiny",
        help="churn grid scale (default: tiny)",
    )
    rebalance.add_argument(
        "--scenarios",
        nargs="+",
        metavar="NAME",
        choices=list(available_churn_scenarios()),
        help="churn families to replay (default: every registered family)",
    )
    rebalance.add_argument(
        "--balancer",
        choices=list(available_balancers()),
        default="paper",
        help="balancer of the prior pipeline (default: paper)",
    )
    rebalance.add_argument(
        "--hyper-periods",
        type=int,
        default=2,
        help="hyper-periods each conformance replay covers (default: 2)",
    )
    rebalance.add_argument(
        "--output",
        metavar="PATH",
        help="grid mode: write the artifact here "
        "(a directory gets CHURN_<timestamp>.json)",
    )
    rebalance.add_argument(
        "--json", action="store_true", help="emit machine-readable output"
    )

    sweep = subparsers.add_parser(
        "sweep", help="differential scenario sweep (repro-sweep/1 artifacts)"
    )
    sweep.add_argument(
        "--preset",
        choices=sorted(SCENARIO_PRESETS),
        default="tiny",
        help="scenario grid scale (default: tiny)",
    )
    sweep.add_argument(
        "--scenarios",
        nargs="+",
        metavar="NAME",
        choices=list(available_scenarios()),
        help="scenario families to sweep (default: every registered family)",
    )
    sweep.add_argument(
        "--balancers",
        nargs="+",
        metavar="NAME",
        choices=list(available_balancers()),
        help="balancers to run (default: every registered balancer)",
    )
    sweep.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="process-pool width (default: one worker per CPU; 1 runs inline)",
    )
    sweep.add_argument(
        "--oracle-stride",
        type=int,
        default=3,
        help="run every Nth paper cell in conflict-engine oracle mode "
        "(default: 3; 0 disables)",
    )
    sweep.add_argument(
        "--conformance-stride",
        type=int,
        default=0,
        help="replay every Nth cell in the simulation-conformance oracle "
        "(default: 0 = off; see 'repro-lb conform' for the full-grid gate)",
    )
    sweep.add_argument(
        "--output",
        metavar="PATH",
        help="write the artifact here (a directory gets SWEEP_<timestamp>.json)",
    )
    sweep.add_argument(
        "--json", action="store_true", help="print the artifact JSON to stdout"
    )

    conform = subparsers.add_parser(
        "conform",
        help="simulation-conformance oracle (repro-conformance/1 reports)",
        description="Replay schedules in the discrete-event simulator and "
        "cross-check the traces against the analytical model.  With --config "
        "or --paper, one pipeline run is conformance-checked and the exit "
        "code reflects its 'conforms' verdict; otherwise the whole scenario "
        "grid is swept with the deep tier on every cell and any "
        "simulator/model contradiction exits non-zero.",
    )
    conform.add_argument(
        "--config",
        metavar="PATH",
        help="conformance-check one serialised pipeline config (repro-pipeline/1)",
    )
    conform.add_argument(
        "--paper",
        action="store_true",
        help="conformance-check the paper's worked example",
    )
    conform.add_argument(
        "--preset",
        choices=sorted(SCENARIO_PRESETS),
        default="tiny",
        help="scenario grid scale for grid mode (default: tiny)",
    )
    conform.add_argument(
        "--scenarios",
        nargs="+",
        metavar="NAME",
        choices=list(available_scenarios()),
        help="scenario families to check (default: every registered family)",
    )
    conform.add_argument(
        "--balancers",
        nargs="+",
        metavar="NAME",
        choices=list(available_balancers()),
        help="balancers to run (default: every registered balancer)",
    )
    conform.add_argument(
        "--hyper-periods",
        type=int,
        default=2,
        help="hyper-periods each conformance replay covers (default: 2)",
    )
    conform.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="process-pool width for grid mode (default: one worker per CPU; "
        "1 runs inline)",
    )
    conform.add_argument(
        "--output",
        metavar="PATH",
        help="write the grid-mode sweep artifact here "
        "(a directory gets SWEEP_<timestamp>.json)",
    )
    conform.add_argument(
        "--json", action="store_true", help="emit machine-readable output"
    )

    hunt = subparsers.add_parser(
        "hunt",
        help="adversarial scenario search (repro-search/1 artifacts)",
        description="Mutate workload-spec parameters to maximise a badness "
        "objective, minimise every counterexample found, and optionally "
        "freeze the survivors as permanent regression/* scenarios.",
    )
    hunt.add_argument(
        "--objective",
        required=True,
        choices=list(available_objectives()),
        help="registered badness objective to maximise",
    )
    hunt.add_argument(
        "--budget",
        choices=sorted(BUDGETS),
        default="tiny",
        help="named evaluation budget (default: tiny)",
    )
    hunt.add_argument(
        "--evaluations",
        type=int,
        default=None,
        metavar="N",
        help="explicit evaluation budget (overrides --budget)",
    )
    hunt.add_argument(
        "--seed", type=int, default=0, help="root seed of the hunt (default: 0)"
    )
    hunt.add_argument(
        "--threshold",
        type=float,
        default=None,
        help="firing threshold (default: the objective's registered default)",
    )
    hunt.add_argument(
        "--max-survivors",
        type=int,
        default=5,
        help="counterexamples kept after minimisation and dedup (default: 5)",
    )
    hunt.add_argument(
        "--no-minimize",
        action="store_true",
        help="freeze survivors as found, skipping the delta-debugging minimiser",
    )
    hunt.add_argument(
        "--freeze",
        action="store_true",
        help="merge the survivors into the frozen regression-scenario registry",
    )
    hunt.add_argument(
        "--registry",
        metavar="PATH",
        help="regression registry file --freeze writes "
        "(default: the packaged regression.json)",
    )
    hunt.add_argument(
        "--output",
        metavar="PATH",
        help="write the artifact here (a directory gets HUNT_<timestamp>.json)",
    )
    hunt.add_argument(
        "--json", action="store_true", help="print the artifact JSON to stdout"
    )

    serve = subparsers.add_parser(
        "serve", help="run the balancing service (HTTP, see DESIGN.md §11)"
    )
    serve.add_argument(
        "--host", default="127.0.0.1", help="listen address (default: 127.0.0.1)"
    )
    serve.add_argument(
        "--port", type=int, default=8420, help="listen port, 0 picks one (default: 8420)"
    )
    serve.add_argument(
        "--jobs", type=int, default=None, help="worker-pool width (default: auto)"
    )
    serve.add_argument(
        "--pool",
        choices=("process", "thread"),
        default="process",
        help="worker-pool kind (default: process)",
    )
    serve.add_argument(
        "--max-batch", type=int, default=16, help="micro-batch size limit (default: 16)"
    )
    serve.add_argument(
        "--batch-window-ms",
        type=float,
        default=5.0,
        help="micro-batch collection window in ms (default: 5)",
    )
    serve.add_argument(
        "--cache-entries",
        type=int,
        default=256,
        help="result-cache capacity in entries (default: 256)",
    )

    lint = subparsers.add_parser(
        "lint", help="check project invariants with the registered AST rules"
    )
    lint.add_argument(
        "paths",
        nargs="+",
        metavar="PATH",
        help="Python files or directories to lint (e.g. src)",
    )
    lint.add_argument(
        "--rules",
        metavar="RULE[,RULE...]",
        help="comma-separated subset of rules to run (default: all registered; "
        "see 'repro-lb list')",
    )
    lint.add_argument(
        "--output",
        metavar="PATH",
        help="write the repro-lint/1 artifact here (a directory gets "
        "LINT_<timestamp>.json)",
    )
    lint.add_argument(
        "--json", action="store_true", help="print the artifact JSON to stdout"
    )

    list_cmd = subparsers.add_parser(
        "list",
        help="list registered balancers, policies, scenarios, churn families, "
        "objectives, experiments, benchmarks and presets",
    )
    list_cmd.add_argument(
        "--json", action="store_true", help="emit the registry catalog as JSON"
    )
    return parser


def _load_pipeline_config(path: Path, verb: str) -> PipelineConfig | int:
    """Load a serialised pipeline config, or return the error exit code.

    Every failure mode — unreadable file, malformed JSON, a payload that is
    not an object, schema/validation rejection — exits cleanly (code 2) with
    the offending path named, instead of surfacing a traceback.  The read and
    object checks live in :func:`repro.jsonio.load_json_path`, shared with
    every artifact loader.
    """
    try:
        data = jsonio.load_json_path(path, kind="pipeline config")
    except ConfigurationError as error:
        print(f"repro-lb {verb}: error: {error}", file=sys.stderr)
        return 2
    try:
        return PipelineConfig.from_dict(data)
    except ReproError as error:
        print(
            f"repro-lb {verb}: error: invalid pipeline config {path}: {error}",
            file=sys.stderr,
        )
        return 2


def _emit(result, as_json: bool) -> int:
    """Print a pipeline run (report or JSON); exit code reflects feasibility."""
    if as_json:
        print(jsonio.dumps(result.to_dict()))
    else:
        print(result.report)
    return 0 if result.feasible is not False else 1


def _run_example(args: argparse.Namespace) -> int:
    config = PipelineConfig.paper_example(policy=args.policy, steps=args.steps)
    return _emit(Pipeline(config).run(), args.json)


def _run_config(args: argparse.Namespace) -> int:
    config = _load_pipeline_config(Path(args.config), "run")
    if isinstance(config, int):
        return config
    result = Pipeline(config).run()
    return _emit(result, args.json)


def _run_experiments(args: argparse.Namespace) -> int:
    names = sorted(ALL_EXPERIMENTS) if "all" in args.names else args.names
    failures = 0
    payloads = []
    for name in names:
        result = ALL_EXPERIMENTS[name]()
        if args.json:
            payloads.append(experiment_result_dict(result))
        else:
            print(result.render())
            print()
        if result.passed is False:
            failures += 1
    if args.json:
        print(jsonio.dumps(payloads))
    return 1 if failures else 0


def _run_campaign(args: argparse.Namespace) -> int:
    names = sorted(ALL_EXPERIMENTS) if "all" in args.names else args.names
    try:
        summary = run_campaign(
            names,
            args.preset,
            output_dir=args.output,
            jobs=args.jobs,
            resume=args.resume,
            split_seeds=not args.no_split_seeds,
        )
    except ConfigurationError as error:
        print(f"repro-lb campaign: error: {error}", file=sys.stderr)
        return 2
    print(summary.render())
    print()
    print(
        f"campaign: {len(summary.records)} runs in {summary.seconds:.1f}s, "
        f"{len(summary.failures)} failure(s); summary written to {summary.summary_path}"
    )
    return 0 if summary.ok else 1


def _run_random(args: argparse.Namespace) -> int:
    spec = WorkloadSpec(
        task_count=args.tasks,
        processor_count=args.processors,
        utilization=args.utilization,
        shape=GraphShape(args.shape),
        seed=args.seed,
        label=f"cli-{args.shape}-{args.seed}",
    )
    params = {"policy": args.policy} if args.balancer == "paper" else {}
    config = PipelineConfig.synthetic(
        spec,
        initial_policy=args.initial_policy,
        balancer=args.balancer,
        params=params,
        simulate=args.simulate,
    )
    return _emit(Pipeline(config).run(), args.json)


def _run_bench(args: argparse.Namespace) -> int:
    if args.bench_command == "list":
        print("benchmarks:")
        for name in available_benchmarks():
            spec = benchmark_info(name)
            print(f"  {name:<4} {spec.title}")
        print()
        print("bench presets (bench -> experiment preset):")
        for bench_preset, experiment_preset in BENCH_PRESETS.items():
            print(f"  {bench_preset:<8} {experiment_preset}")
        return 0

    if args.bench_command == "run":
        artifact = run_benchmarks(
            args.names or None,
            preset=args.preset,
            warmup=args.warmup,
            repeats=args.repeats,
        )
        written = None
        if args.output:
            written = artifact.save(args.output)
        if args.json:
            print(jsonio.dumps(artifact.to_dict()))
        else:
            rows = []
            for record in artifact.records:
                verdict = "-" if record.passed is None else ("PASS" if record.passed else "FAIL")
                rows.append(
                    f"  {record.name:<4} best {record.best:8.4f}s  "
                    f"mean {record.mean:8.4f}s  ({len(record.wall_times)} repeat(s))  {verdict}"
                )
            print(f"bench run: preset {artifact.preset} ({artifact.created})")
            print("\n".join(rows))
            if written is not None:
                print(f"artifact written to {written}")
        failed = [record.name for record in artifact.records if record.passed is False]
        if failed:
            print(f"repro-lb bench: FAIL verdict in {failed}", file=sys.stderr)
            return 1
        return 0

    if args.bench_command == "service":
        from repro.bench.service import run_service_bench

        artifact = run_service_bench(
            clients=args.clients,
            requests_per_client=args.requests,
            unique=args.unique,
            preset=args.workload_preset,
            jobs=args.jobs,
            pool=args.pool,
            max_batch=args.max_batch,
            batch_window_ms=args.batch_window_ms,
        )
        written = artifact.save(args.output) if args.output else None
        if args.json:
            print(jsonio.dumps(artifact.to_dict()))
        else:
            record = artifact.records[0]
            metrics = record.metrics
            print(f"bench service: preset {artifact.preset} ({artifact.created})")
            print(f"  {record.title}")
            print(
                f"  {metrics['requests']:.0f} requests in {record.best:.3f}s "
                f"({metrics['requests_per_sec']:.1f} req/s), "
                f"{metrics['errors']:.0f} error(s)"
            )
            print(
                f"  latency p50 {metrics['p50_ms']:.2f}ms  p99 {metrics['p99_ms']:.2f}ms  "
                f"max {metrics['max_ms']:.2f}ms"
            )
            print(
                f"  cache hit rate {metrics['cache_hit_rate']:.3f}  "
                f"batches {metrics['batches']:.0f} (max {metrics['max_batch']:.0f}, "
                f"mean {metrics['mean_batch']:.2f})  coalesced {metrics['coalesced']:.0f}"
            )
            print(f"  byte_identical {metrics['byte_identical']:.3f}")
            if written is not None:
                print(f"artifact written to {written}")
        if artifact.records[0].passed is False:
            print("repro-lb bench service: FAIL verdict", file=sys.stderr)
            return 1
        return 0

    if args.bench_command == "rebalance":
        from repro.bench.rebalance import run_rebalance_bench

        artifact = run_rebalance_bench(
            task_count=args.tasks,
            processor_count=args.processors,
            deltas=args.deltas,
            repeats=args.repeats,
            seed=args.seed,
        )
        written = artifact.save(args.output) if args.output else None
        if args.json:
            print(jsonio.dumps(artifact.to_dict()))
        else:
            record = artifact.records[0]
            metrics = record.metrics
            print(f"bench rebalance: preset {artifact.preset} ({artifact.created})")
            print(f"  {record.title}")
            print(
                f"  repair {metrics['rebalance_seconds_best']:.3f}s vs scratch "
                f"{metrics['scratch_seconds_best']:.3f}s over {metrics['deltas']:.0f} "
                f"delta(s) — speedup {metrics['speedup']:.1f}x "
                f"({metrics['rebalance_ms_per_delta']:.1f}ms vs "
                f"{metrics['scratch_ms_per_delta']:.1f}ms per delta)"
            )
            print(f"  verdict agreement {metrics['verdict_agreement']:.3f}")
            if written is not None:
                print(f"artifact written to {written}")
        if artifact.records[0].passed is False:
            print("repro-lb bench rebalance: FAIL verdict", file=sys.stderr)
            return 1
        return 0

    if args.bench_command == "stress-xl":
        from repro.bench.stress_xl import XL_CURVE_NAME, run_stress_xl_bench

        artifact = run_stress_xl_bench(
            preset=args.preset,
            repeats=args.repeats,
            seed=args.seed,
            engine=args.engine,
        )
        written = artifact.save(args.output) if args.output else None
        if args.json:
            print(jsonio.dumps(artifact.to_dict()))
        else:
            print(f"bench stress-xl: preset {artifact.preset} ({artifact.created})")
            for record in artifact.records:
                if record.name == XL_CURVE_NAME:
                    continue
                metrics = record.metrics
                print(
                    f"  N={metrics['task_count']:>6.0f}  "
                    f"schedule {metrics['schedule_seconds']:8.3f}s  "
                    f"balance best {metrics['balance_seconds_best']:8.3f}s  "
                    f"({metrics['block_count']:.0f} blocks, "
                    f"{metrics['moved_blocks']:.0f} moved)"
                )
            curve = artifact.record(XL_CURVE_NAME)
            assert curve is not None
            print(
                f"  curve: time ∝ N^{curve.metrics['fit_exponent']:.3f} "
                f"(r²={curve.metrics['r_squared']:.3f}, "
                f"ceiling {curve.metrics['exponent_ceiling']:g}) "
                f"{'PASS' if curve.passed else 'FAIL'}"
            )
            if written is not None:
                print(f"artifact written to {written}")
        if any(record.passed is False for record in artifact.records):
            print("repro-lb bench stress-xl: FAIL verdict", file=sys.stderr)
            return 1
        return 0

    # compare
    report = compare_artifacts(
        BenchArtifact.load(args.baseline),
        BenchArtifact.load(args.current),
        args.tolerance,
        min_delta=args.min_delta,
        exponent_margin=args.exponent_margin,
    )
    if args.json:
        print(jsonio.dumps(report.to_dict()))
    else:
        print(report.render())
    return 0 if report.ok else 1


def _run_conform(args: argparse.Namespace) -> int:
    if args.config and args.paper:
        print(
            "repro-lb conform: error: --config and --paper are mutually exclusive",
            file=sys.stderr,
        )
        return 2

    if args.config or args.paper:
        # Single-run mode: the exit code reflects the strict 'conforms'
        # verdict — did the replay match the schedule's own promises?
        from repro.conformance import ConformanceReport

        if args.paper:
            config = PipelineConfig.paper_example()
        else:
            config = _load_pipeline_config(Path(args.config), "conform")
            if isinstance(config, int):
                return config
        config = config.with_conformance(hyper_periods=args.hyper_periods)
        result = Pipeline(config).run()
        report = ConformanceReport.from_dict(result.conformance)
        if args.json:
            print(jsonio.dumps(result.conformance))
        else:
            print(report.render())
        if not report.conforms:
            print(
                f"repro-lb conform: {report.divergences} divergence(s) between the "
                "schedule and its replay",
                file=sys.stderr,
            )
            return 1
        return 0

    # Grid mode: every cell of the scenario grid runs the deep tier; the
    # exit code reflects simulator/model agreement across the whole grid.
    artifact = run_sweep(
        args.preset,
        tuple(args.scenarios) if args.scenarios else None,
        tuple(args.balancers) if args.balancers else None,
        jobs=args.jobs,
        oracle_stride=0,
        conformance_stride=1,
        conformance_hyper_periods=args.hyper_periods,
    )
    written = artifact.save(args.output) if args.output else None
    if args.json:
        print(jsonio.dumps(artifact.to_dict()))
    else:
        counts = artifact.counts
        # Only ok cells carry a report dict; unschedulable/errored ones keep
        # the boolean request flag and were never replayed.
        checked = sum(
            1 for cell in artifact.cells if isinstance(cell.get("conformance"), dict)
        )
        print(f"conform: preset {artifact.preset} ({artifact.created})")
        print(artifact.render())
        print()
        print(
            f"{counts['cells']} cell(s): {counts['ok']} ok, "
            f"{counts['unschedulable']} unschedulable, {counts['error']} error(s); "
            f"{checked} conformance replay(s), {counts['findings']} finding(s)"
        )
        if written is not None:
            print(f"artifact written to {written}")
    if not artifact.ok:
        print(
            f"repro-lb conform: {len(artifact.findings)} finding(s)", file=sys.stderr
        )
        return 1
    return 0


def _run_rebalance(args: argparse.Namespace) -> int:
    if args.grid:
        if args.config or args.delta:
            print(
                "repro-lb rebalance: error: --grid is mutually exclusive with "
                "--config/--delta",
                file=sys.stderr,
            )
            return 2
        artifact = run_churn_grid(
            args.preset,
            tuple(args.scenarios) if args.scenarios else None,
            balancer=args.balancer,
            conformance_hyper_periods=args.hyper_periods,
        )
        written = artifact.save(args.output) if args.output else None
        if args.json:
            print(jsonio.dumps(artifact.to_dict()))
        else:
            print(artifact.render())
            if written is not None:
                print(f"artifact written to {written}")
        if not artifact.ok:
            print(
                f"repro-lb rebalance: {len(artifact.findings)} churn finding(s)",
                file=sys.stderr,
            )
            return 1
        return 0

    if not args.config or not args.delta:
        print(
            "repro-lb rebalance: error: needs --config and --delta (or --grid)",
            file=sys.stderr,
        )
        return 2
    from repro.churn import timeline_from_payload

    config = _load_pipeline_config(Path(args.config), "rebalance")
    if isinstance(config, int):
        return config
    try:
        delta_data = jsonio.load_json_path(Path(args.delta), kind="delta")
        timeline = timeline_from_payload(delta_data)
    except ConfigurationError as error:
        print(f"repro-lb rebalance: error: {error}", file=sys.stderr)
        return 2
    pipeline = Pipeline(config)
    prior = pipeline.run()
    if not prior.feasible:
        print(
            "repro-lb rebalance: error: the prior pipeline run is infeasible; "
            "nothing to repair",
            file=sys.stderr,
        )
        return 1
    return _emit(pipeline.rebalance(prior, timeline), args.json)


def _run_sweep(args: argparse.Namespace) -> int:
    artifact = run_sweep(
        args.preset,
        tuple(args.scenarios) if args.scenarios else None,
        tuple(args.balancers) if args.balancers else None,
        jobs=args.jobs,
        oracle_stride=args.oracle_stride,
        conformance_stride=args.conformance_stride,
    )
    written = None
    if args.output:
        written = artifact.save(args.output)
    if args.json:
        print(jsonio.dumps(artifact.to_dict()))
    else:
        counts = artifact.counts
        print(f"sweep: preset {artifact.preset} ({artifact.created})")
        print(artifact.render())
        print()
        print(
            f"{counts['cells']} cell(s): {counts['ok']} ok, "
            f"{counts['unschedulable']} unschedulable, {counts['error']} error(s), "
            f"{counts['findings']} finding(s)"
        )
        if written is not None:
            print(f"artifact written to {written}")
    if not artifact.ok:
        print(
            f"repro-lb sweep: {len(artifact.findings)} invariant finding(s)",
            file=sys.stderr,
        )
        return 1
    return 0


def _run_hunt(args: argparse.Namespace) -> int:
    options = SearchOptions(
        objective=args.objective,
        budget=args.budget,
        evaluations=args.evaluations,
        seed=args.seed,
        threshold=args.threshold,
        max_survivors=args.max_survivors,
        minimize=not args.no_minimize,
    )
    artifact = run_hunt(options)
    written = artifact.save(args.output) if args.output else None
    frozen = ()
    if args.freeze and artifact.counterexamples:
        frozen = freeze_counterexamples(artifact, args.registry)
    if args.json:
        print(jsonio.dumps(artifact.to_dict()))
    else:
        print(artifact.render())
        if written is not None:
            print(f"artifact written to {written}")
        for entry in frozen:
            print(f"frozen: {entry.name}")
        if args.freeze and artifact.counterexamples and not frozen:
            print("nothing frozen: every survivor is already in the registry")
    return 0


def _run_lint(args: argparse.Namespace) -> int:
    rules = None
    if args.rules:
        rules = tuple(name.strip() for name in args.rules.split(",") if name.strip())
    artifact = lint_paths(args.paths, rules=rules)
    if args.output:
        target = artifact.save(args.output)
        print(f"lint artifact written to {target}", file=sys.stderr)
    if args.json:
        print(artifact.dumps(), end="")
    else:
        print(artifact.render())
    return 0 if artifact.ok else 1


def _registry_catalog() -> dict[str, list[dict[str, str]]]:
    """Every user-facing registry as one uniform ``section -> entries`` map.

    Each entry is ``{"name": ..., "summary": ...}`` — the single source both
    renderings of ``repro-lb list`` (text and ``--json``) walk, so a registry
    added anywhere shows up in both by editing exactly one place.
    """

    def entries(names, summary) -> list[dict[str, str]]:
        return [{"name": str(name), "summary": summary(name)} for name in names]

    def experiment_summary(name: str) -> str:
        doc = (ALL_EXPERIMENTS[name].__doc__ or "").strip().splitlines()
        return doc[0] if doc else ""

    return {
        "balancers": entries(
            available_balancers(),
            lambda name: balancer_info(name).description
            + (
                f" (params: {', '.join(balancer_info(name).params)})"
                if balancer_info(name).params
                else ""
            ),
        ),
        "cost policies (paper balancer)": entries(
            (policy.value for policy in CostPolicy), lambda _name: ""
        ),
        "initial placement policies": entries(
            (policy.value for policy in PlacementPolicy), lambda _name: ""
        ),
        "scenarios (see 'repro-lb sweep')": entries(
            available_scenarios(), lambda name: scenario_info(name).title
        ),
        "churn scenarios (see 'repro-lb rebalance --grid')": entries(
            available_churn_scenarios(), lambda name: churn_scenario_info(name).title
        ),
        "hunt objectives (see 'repro-lb hunt')": entries(
            available_objectives(), lambda name: objective_info(name).title
        ),
        "experiments": entries(sorted(ALL_EXPERIMENTS), experiment_summary),
        "campaign presets": entries(PRESET_NAMES, lambda _name: ""),
        "benchmarks (see 'repro-lb bench list')": entries(
            available_benchmarks(), lambda name: benchmark_info(name).title
        ),
        "bench presets": entries(
            sorted(BENCH_PRESETS),
            lambda name: f"maps to experiment preset {BENCH_PRESETS[name]!r}",
        ),
        "lint rules (see 'repro-lb lint')": entries(
            available_lint_rules(), lambda name: lint_rule_info(name).title
        ),
        "artifact schemas": [
            {"name": tag, "summary": f"owned by {module}"}
            for tag, module in SCHEMA_TABLE.items()
        ],
    }


def _run_list(args: argparse.Namespace) -> int:
    catalog = _registry_catalog()
    if getattr(args, "json", False):
        print(jsonio.dumps(catalog))
        return 0
    blocks = []
    for section, items in catalog.items():
        width = max((len(entry["name"]) for entry in items), default=0)
        lines = [f"{section}:"]
        lines.extend(
            f"  {entry['name']:<{width}}  {entry['summary']}".rstrip() for entry in items
        )
        blocks.append("\n".join(lines))
    print("\n\n".join(blocks))
    return 0


def _run_serve(args: argparse.Namespace) -> int:
    from repro.service.server import BalancingService, run_service

    service = BalancingService(
        args.host,
        args.port,
        jobs=args.jobs,
        pool=args.pool,
        max_batch=args.max_batch,
        batch_window_ms=args.batch_window_ms,
        cache_entries=args.cache_entries,
    )
    return run_service(service)


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point of the ``repro-lb`` command."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "example": _run_example,
        "run": _run_config,
        "experiment": _run_experiments,
        "campaign": _run_campaign,
        "random": _run_random,
        "bench": _run_bench,
        "rebalance": _run_rebalance,
        "sweep": _run_sweep,
        "conform": _run_conform,
        "hunt": _run_hunt,
        "serve": _run_serve,
        "lint": _run_lint,
        "list": _run_list,
    }
    handler = handlers.get(args.command)
    if handler is None:  # pragma: no cover
        parser.error(f"unknown command {args.command!r}")
        return 2
    try:
        return handler(args)
    except ReproError as error:
        print(f"repro-lb {args.command}: error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
