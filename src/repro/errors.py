"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised by the library derive from :class:`ReproError`, so a
caller can catch every library-specific failure with a single ``except``
clause while still being able to distinguish model errors from scheduling
errors, infeasibility and configuration problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by the :mod:`repro` library."""


class ModelError(ReproError):
    """The application or architecture model is malformed.

    Raised for structural problems: duplicate task names, negative periods,
    dependences referring to unknown tasks, cyclic task graphs, non-harmonic
    period ratios on a dependence, and so on.
    """


class ArchitectureError(ModelError):
    """The architecture description is malformed or not homogeneous."""


class SchedulingError(ReproError):
    """The scheduling substrate failed to produce a valid schedule."""


class InfeasibleError(SchedulingError):
    """No feasible schedule (or block placement) exists for the given input.

    The message carries a human readable diagnosis; the optional
    :attr:`detail` attribute carries a machine readable payload (for example
    the task that could not be placed).
    """

    def __init__(self, message: str, detail: object | None = None) -> None:
        super().__init__(message)
        self.detail = detail


class ValidationError(ReproError):
    """A schedule violates one of the constraints it is supposed to satisfy.

    Used by :mod:`repro.scheduling.feasibility` when verification of strict
    periodicity, precedence, non-overlap or memory capacity fails.
    """

    def __init__(self, message: str, violations: list[str] | None = None) -> None:
        super().__init__(message)
        self.violations: list[str] = list(violations or [])


class ConfigurationError(ReproError):
    """An option combination passed to the library does not make sense."""


class ArtifactError(ConfigurationError):
    """A persisted artifact failed loading or schema/version validation.

    Raised by :func:`repro.jsonio.load_artifact` (and the per-artifact
    ``from_dict`` loaders built on it) for every artifact failure mode:
    unreadable file, malformed JSON, a payload that is not an object, a
    missing/malformed ``schema`` tag, a foreign schema family, or a version
    newer than the build can read.  Subclassing :class:`ConfigurationError`
    keeps every existing ``except`` clause and the CLI's exit-2 mapping
    working unchanged.
    """

    def __init__(
        self,
        message: str,
        *,
        path: object | None = None,
        schema: str | None = None,
    ) -> None:
        super().__init__(message)
        #: Offending file, when the failure came from a disk load.
        self.path = path
        #: Offending schema tag, when the failure was a schema rejection.
        self.schema = schema


class WorkloadError(ReproError):
    """A workload generator received parameters it cannot honour."""


class AnalysisError(ReproError):
    """An analysis routine (bounds, approximation, complexity) failed."""
