"""Empirical complexity study (section 4 of the paper, experiment E3).

Section 4 argues that the heuristic runs in ``O(M · N_blocks)`` — it
evaluates every block against every processor once — and that ``N_blocks``
is small in practice because the number of distinct periods is small.  This
module measures the heuristic's wall-clock time over workload sweeps and fits
the measurements against the ``M · N_blocks`` model, reporting the fit
quality so the claim can be checked quantitatively rather than taken on
faith.
"""

from __future__ import annotations

import time
from collections.abc import Iterable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.load_balancer import LoadBalancer, LoadBalancerOptions
from repro.errors import AnalysisError
from repro.scheduling.schedule import Schedule

__all__ = ["ComplexitySample", "measure_runtime", "ComplexityFit", "fit_complexity"]


@dataclass(frozen=True, slots=True)
class ComplexitySample:
    """One timing measurement of the load balancer."""

    tasks: int
    instances: int
    processors: int
    blocks: int
    seconds: float
    label: str = ""

    @property
    def work(self) -> float:
        """The model's work term ``M · N_blocks``."""
        return float(self.processors * self.blocks)


def measure_runtime(
    schedule: Schedule,
    options: LoadBalancerOptions | None = None,
    *,
    repetitions: int = 1,
    label: str = "",
) -> ComplexitySample:
    """Time the load balancer on one schedule (best of ``repetitions`` runs)."""
    if repetitions < 1:
        raise AnalysisError("repetitions must be >= 1")
    balancer = LoadBalancer(schedule, options)
    best = float("inf")
    result = None
    for _ in range(repetitions):
        start = time.perf_counter()
        result = balancer.run()
        best = min(best, time.perf_counter() - start)
    assert result is not None
    return ComplexitySample(
        tasks=len(schedule.graph),
        instances=len(schedule),
        processors=len(schedule.architecture),
        blocks=len(result.blocks),
        seconds=best,
        label=label,
    )


@dataclass(frozen=True, slots=True)
class ComplexityFit:
    """Least-squares fit of runtime against the ``M · N_blocks`` model."""

    #: Fitted seconds per unit of ``M · N_blocks``.
    slope: float
    #: Fitted constant overhead in seconds.
    intercept: float
    #: Coefficient of determination of the linear fit.
    r_squared: float
    samples: int

    @property
    def is_linear(self) -> bool:
        """``True`` when the linear model explains at least 80% of the variance."""
        return self.r_squared >= 0.80


def fit_complexity(samples: Iterable[ComplexitySample] | Sequence[ComplexitySample]) -> ComplexityFit:
    """Fit measured runtimes against ``seconds ≈ slope · (M · N_blocks) + intercept``."""
    collected = list(samples)
    if len(collected) < 3:
        raise AnalysisError("fit_complexity needs at least 3 samples")
    work = np.array([sample.work for sample in collected], dtype=float)
    seconds = np.array([sample.seconds for sample in collected], dtype=float)
    design = np.vstack([work, np.ones_like(work)]).T
    (slope, intercept), residuals, _rank, _sv = np.linalg.lstsq(design, seconds, rcond=None)
    predicted = design @ np.array([slope, intercept])
    total_variance = float(np.sum((seconds - seconds.mean()) ** 2))
    if total_variance <= 0:
        r_squared = 1.0
    else:
        r_squared = 1.0 - float(np.sum((seconds - predicted) ** 2)) / total_variance
    return ComplexityFit(
        slope=float(slope),
        intercept=float(intercept),
        r_squared=r_squared,
        samples=len(collected),
    )
