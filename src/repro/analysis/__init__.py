"""Analysis tools turning the paper's analytical claims into measurements.

* :mod:`~repro.analysis.bounds` — Theorem 1 (gain bounds);
* :mod:`~repro.analysis.approximation` — Theorem 2 (``2 − 1/M`` approximation);
* :mod:`~repro.analysis.complexity` — section 4 (``O(M · N_blocks)`` runtime).
"""

from repro.analysis.approximation import (
    ApproximationCampaign,
    ApproximationSample,
    approximation_campaign,
    measure_greedy_ratio,
    theorem2_bound,
)
from repro.analysis.bounds import (
    Theorem1Campaign,
    Theorem1Check,
    check_theorem1,
    theorem1_campaign,
)
from repro.analysis.complexity import (
    ComplexityFit,
    ComplexitySample,
    fit_complexity,
    measure_runtime,
)

__all__ = [
    "ApproximationCampaign",
    "ApproximationSample",
    "ComplexityFit",
    "ComplexitySample",
    "Theorem1Campaign",
    "Theorem1Check",
    "approximation_campaign",
    "check_theorem1",
    "fit_complexity",
    "measure_greedy_ratio",
    "measure_runtime",
    "theorem1_campaign",
    "theorem2_bound",
]
