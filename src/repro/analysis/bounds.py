"""Empirical validation of Theorem 1 (bounds on the total-execution-time gain).

Theorem 1 states that the gain obtained by the load-balancing heuristic,
``G_total = L_former − L_new``, satisfies

    0 <= G_total <= γ · (M − 1)!

where ``γ`` is the longest communication time that a block move can suppress
and ``M`` is the number of processors.  (The paper equates ``(M−1)!`` with
"the number of distinct processor pairs"; the reproduction also reports the
tighter pair-count form ``γ · M(M−1)/2`` — see DESIGN.md §2, item A5.)

:func:`check_theorem1` evaluates one load-balancing result against both
bounds; :func:`theorem1_campaign` aggregates a whole batch of results into
the table of experiment E4.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from repro.core.result import LoadBalanceResult
from repro.epsilon import EPSILON

__all__ = ["Theorem1Check", "check_theorem1", "Theorem1Campaign", "theorem1_campaign"]

_EPS = EPSILON


@dataclass(frozen=True, slots=True)
class Theorem1Check:
    """Theorem-1 verdict for one load-balancing run."""

    gain: float
    gamma: float
    processors: int
    factorial_bound: float
    pair_bound: float
    lower_ok: bool
    factorial_ok: bool
    pair_ok: bool

    @property
    def holds(self) -> bool:
        """``True`` when the paper's stated bounds (lower and factorial upper) hold."""
        return self.lower_ok and self.factorial_ok


def _gamma(result: LoadBalanceResult) -> float:
    """Longest communication time of the initial schedule (the paper's γ).

    When the initial schedule contains no inter-processor communication the
    heuristic cannot gain anything by suppressing one, so γ is 0.
    """
    durations = [op.duration for op in result.initial_schedule.communications]
    return max(durations, default=0.0)


def check_theorem1(result: LoadBalanceResult) -> Theorem1Check:
    """Evaluate the Theorem-1 bounds on one result."""
    processors = len(result.initial_schedule.architecture)
    gamma = _gamma(result)
    gain = result.total_gain
    factorial_bound = gamma * math.factorial(max(processors - 1, 0))
    pair_bound = gamma * processors * (processors - 1) / 2.0
    return Theorem1Check(
        gain=gain,
        gamma=gamma,
        processors=processors,
        factorial_bound=factorial_bound,
        pair_bound=pair_bound,
        lower_ok=gain >= -_EPS,
        factorial_ok=gain <= factorial_bound + _EPS,
        pair_ok=gain <= pair_bound + _EPS,
    )


@dataclass(frozen=True, slots=True)
class Theorem1Campaign:
    """Aggregate Theorem-1 statistics over a batch of runs (experiment E4)."""

    samples: int
    violations_lower: int
    violations_factorial: int
    violations_pair: int
    mean_gain: float
    max_gain: float
    max_gain_over_gamma: float
    mean_relative_gain: float

    @property
    def holds(self) -> bool:
        """``True`` when no run violated the paper's bounds."""
        return self.violations_lower == 0 and self.violations_factorial == 0


def theorem1_campaign(
    results: Iterable[LoadBalanceResult] | Sequence[LoadBalanceResult],
) -> Theorem1Campaign:
    """Aggregate a batch of load-balancing runs for experiment E4."""
    checks: list[Theorem1Check] = []
    relative_gains: list[float] = []
    for result in results:
        checks.append(check_theorem1(result))
        before = result.makespan_before
        relative_gains.append(result.total_gain / before if before > 0 else 0.0)
    if not checks:
        return Theorem1Campaign(0, 0, 0, 0, 0.0, 0.0, 0.0, 0.0)
    gains = [check.gain for check in checks]
    gain_over_gamma = [
        check.gain / check.gamma for check in checks if check.gamma > _EPS
    ]
    return Theorem1Campaign(
        samples=len(checks),
        violations_lower=sum(1 for check in checks if not check.lower_ok),
        violations_factorial=sum(1 for check in checks if not check.factorial_ok),
        violations_pair=sum(1 for check in checks if not check.pair_ok),
        mean_gain=sum(gains) / len(gains),
        max_gain=max(gains),
        max_gain_over_gamma=max(gain_over_gamma, default=0.0),
        mean_relative_gain=sum(relative_gains) / len(relative_gains),
    )
