"""Empirical validation of Theorem 2 (the ``(2 − 1/M)``-approximation).

Theorem 2 considers the heuristic when only memory matters (cost function
``λ = Cst / Σm``): every block goes to the processor that has accumulated the
least memory so far.  It proves that the resulting maximum per-processor
memory ``ω`` satisfies ``ω / ω_opt <= 2 − 1/M``.

Experiment E5 measures the ratio empirically: the greedy rule (exactly the
object of the proof) is run on block memory weights and compared with the
exact optimum computed by branch and bound
(:mod:`repro.baselines.branch_and_bound`) on instances small enough to solve
exactly.  The same machinery also evaluates the full schedule-level
``MEMORY_ONLY`` policy, whose additional feasibility rules can only make its
ratio different from (usually no better than) the bare greedy rule's.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from repro.baselines.branch_and_bound import optimal_min_max_partition
from repro.baselines.memory_balancer import greedy_min_memory
from repro.epsilon import EPSILON
from repro.errors import AnalysisError

__all__ = [
    "ApproximationSample",
    "measure_greedy_ratio",
    "ApproximationCampaign",
    "approximation_campaign",
    "theorem2_bound",
]

_EPS = EPSILON


def theorem2_bound(processor_count: int) -> float:
    """The paper's bound ``2 − 1/M``."""
    if processor_count < 1:
        raise AnalysisError("processor_count must be >= 1")
    return 2.0 - 1.0 / processor_count


@dataclass(frozen=True, slots=True)
class ApproximationSample:
    """One measured point of experiment E5."""

    processor_count: int
    block_count: int
    greedy_max_memory: float
    optimal_max_memory: float
    exact: bool

    @property
    def ratio(self) -> float:
        """``ω / ω_opt`` (1.0 when the optimum is zero)."""
        if self.optimal_max_memory <= _EPS:
            return 1.0
        return self.greedy_max_memory / self.optimal_max_memory

    @property
    def bound(self) -> float:
        """The Theorem-2 bound for this sample's processor count."""
        return theorem2_bound(self.processor_count)

    @property
    def within_bound(self) -> bool:
        """``True`` when the measured ratio respects the bound."""
        return self.ratio <= self.bound + 1e-6


def measure_greedy_ratio(
    memories: Sequence[float], processor_count: int, *, node_limit: int = 2_000_000
) -> ApproximationSample:
    """Measure the greedy-vs-optimal ratio on one list of block memories.

    The greedy rule processes the blocks in the given order (the heuristic
    processes blocks by start time, not by size), exactly as in the proof of
    Theorem 2.
    """
    if processor_count < 1:
        raise AnalysisError("processor_count must be >= 1")
    processors = [f"P{i + 1}" for i in range(processor_count)]
    assignment = greedy_min_memory(memories, processors)
    loads = {name: 0.0 for name in processors}
    for index, weight in enumerate(memories):
        loads[assignment[index]] += weight
    greedy_max = max(loads.values(), default=0.0)
    optimum = optimal_min_max_partition(memories, processor_count, node_limit=node_limit)
    return ApproximationSample(
        processor_count=processor_count,
        block_count=len(memories),
        greedy_max_memory=greedy_max,
        optimal_max_memory=optimum.optimum,
        exact=optimum.exact,
    )


@dataclass(frozen=True, slots=True)
class ApproximationCampaign:
    """Aggregate Theorem-2 statistics (experiment E5)."""

    processor_count: int
    samples: int
    worst_ratio: float
    mean_ratio: float
    bound: float
    violations: int
    inexact_optima: int

    @property
    def holds(self) -> bool:
        """``True`` when every exactly-solved sample respects the bound."""
        return self.violations == 0


def approximation_campaign(
    samples: Iterable[ApproximationSample],
) -> ApproximationCampaign:
    """Aggregate measured samples sharing one processor count."""
    collected = list(samples)
    if not collected:
        raise AnalysisError("approximation_campaign needs at least one sample")
    processor_counts = {sample.processor_count for sample in collected}
    if len(processor_counts) != 1:
        raise AnalysisError(
            f"All samples must share the processor count, got {sorted(processor_counts)}"
        )
    processor_count = collected[0].processor_count
    ratios = [sample.ratio for sample in collected]
    return ApproximationCampaign(
        processor_count=processor_count,
        samples=len(collected),
        worst_ratio=max(ratios),
        mean_ratio=sum(ratios) / len(ratios),
        bound=theorem2_bound(processor_count),
        violations=sum(1 for sample in collected if sample.exact and not sample.within_bound),
        inexact_optima=sum(1 for sample in collected if not sample.exact),
    )
