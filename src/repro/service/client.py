"""Blocking stdlib client for the balancing service.

:class:`ServiceClient` wraps one keep-alive
:class:`http.client.HTTPConnection` to a running
:class:`~repro.service.server.BalancingService` — the tests, the load-test
bench tier and scripts drive the service through it rather than hand-rolling
sockets.  Transport failures and non-2xx responses surface as
:class:`ServiceClientError` (with the server's structured error message when
one was sent); :func:`wait_until_ready` polls ``/v1/health`` so callers can
start a server process/thread and block until it accepts connections.
"""

from __future__ import annotations

import http.client
import json
import socket
import time
from typing import Any, Mapping

from repro import jsonio
from repro.api import PipelineConfig
from repro.errors import ReproError

__all__ = ["ServiceClient", "ServiceClientError", "wait_until_ready"]


class ServiceClientError(ReproError):
    """A request that failed: transport error or non-2xx service response."""

    def __init__(self, message: str, status: int | None = None) -> None:
        super().__init__(message)
        self.status = status


class ServiceClient:
    """Keep-alive HTTP client for one service endpoint.

    Usable as a context manager; safe to reuse across requests from a single
    thread (the bench tier gives each client thread its own instance).  A
    dropped keep-alive connection is transparently retried once on a fresh
    connection before surfacing :class:`ServiceClientError`.
    """

    def __init__(self, host: str, port: int, *, timeout_s: float = 60.0) -> None:
        self.host = host
        self.port = port
        self.timeout_s = timeout_s
        self._connection: http.client.HTTPConnection | None = None

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _connect(self) -> http.client.HTTPConnection:
        if self._connection is None:
            self._connection = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout_s
            )
        return self._connection

    def close(self) -> None:
        """Close the underlying connection (idempotent)."""
        if self._connection is not None:
            self._connection.close()
            self._connection = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *_exc_info: Any) -> None:
        self.close()

    def request(
        self, method: str, path: str, body: bytes | None = None
    ) -> tuple[int, bytes]:
        """One round-trip; returns ``(status, body_bytes)``.

        Retries exactly once on a dropped keep-alive connection; any other
        transport failure raises :class:`ServiceClientError`.
        """
        headers = {"Content-Type": "application/json"} if body is not None else {}
        for attempt in (0, 1):
            connection = self._connect()
            try:
                connection.request(method, path, body=body, headers=headers)
                response = connection.getresponse()
                return response.status, response.read()
            except (http.client.HTTPException, ConnectionError, socket.timeout, OSError) as error:
                self.close()
                if attempt == 1:
                    raise ServiceClientError(
                        f"request {method} {path} to {self.host}:{self.port} failed: {error}"
                    ) from error
        raise AssertionError("unreachable")  # pragma: no cover

    def _request_json(
        self, method: str, path: str, body: bytes | None = None
    ) -> dict[str, Any]:
        status, payload = self.request(method, path, body)
        try:
            decoded = json.loads(payload)
        except json.JSONDecodeError as error:
            raise ServiceClientError(
                f"{method} {path}: non-JSON response (HTTP {status})", status
            ) from error
        if status >= 400:
            message = (
                decoded.get("error", payload.decode("utf-8", "replace"))
                if isinstance(decoded, dict)
                else payload.decode("utf-8", "replace")
            )
            raise ServiceClientError(f"{method} {path}: {message}", status)
        if not isinstance(decoded, dict):
            raise ServiceClientError(
                f"{method} {path}: expected a JSON object response", status
            )
        return decoded

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------
    def health(self) -> dict[str, Any]:
        """``GET /v1/health``."""
        return self._request_json("GET", "/v1/health")

    def stats(self) -> dict[str, Any]:
        """``GET /v1/stats``."""
        return self._request_json("GET", "/v1/stats")

    def submit(
        self, config: PipelineConfig | Mapping[str, Any], *, wait: bool = True
    ) -> dict[str, Any]:
        """``POST /v1/submit`` — run ``config``; the job payload comes back.

        With ``wait`` (default) the response carries the finished job
        including its embedded result; with ``wait=False`` it is the queued
        job record to poll via :meth:`job` / :meth:`wait_for`.
        """
        config_dict = config.to_dict() if isinstance(config, PipelineConfig) else dict(config)
        body = jsonio.dumps({"config": config_dict, "wait": wait}, indent=None).encode("utf-8")
        return self._request_json("POST", "/v1/submit", body)

    def rebalance(
        self,
        config: PipelineConfig | Mapping[str, Any],
        delta: Any,
        *,
        wait: bool = True,
    ) -> dict[str, Any]:
        """``POST /v1/rebalance`` — incremental rebalance of ``config`` + ``delta``.

        ``delta`` is one serialised ``repro-delta/1`` delta (a dict with a
        ``kind``) or a whole timeline dict; objects with a ``to_dict`` (the
        typed deltas and :class:`~repro.churn.ChurnTimeline`) are serialised
        automatically.  Semantics of ``wait`` match :meth:`submit`.
        """
        config_dict = config.to_dict() if isinstance(config, PipelineConfig) else dict(config)
        delta_dict = delta.to_dict() if hasattr(delta, "to_dict") else dict(delta)
        body = jsonio.dumps(
            {"config": config_dict, "delta": delta_dict, "wait": wait}, indent=None
        ).encode("utf-8")
        return self._request_json("POST", "/v1/rebalance", body)

    def job(self, job_id: str) -> dict[str, Any]:
        """``GET /v1/jobs/<job_id>`` — one status poll."""
        return self._request_json("GET", f"/v1/jobs/{job_id}")

    def wait_for(
        self, job_id: str, *, timeout_s: float = 60.0, poll_s: float = 0.02
    ) -> dict[str, Any]:
        """Poll :meth:`job` until it reaches a terminal state."""
        deadline = time.monotonic() + timeout_s
        while True:
            payload = self.job(job_id)
            if payload.get("status") in ("done", "failed"):
                return payload
            if time.monotonic() >= deadline:
                raise ServiceClientError(
                    f"job {job_id} did not finish within {timeout_s}s "
                    f"(last status: {payload.get('status')})"
                )
            time.sleep(poll_s)

    def cached_result(self, fingerprint: str) -> bytes | None:
        """``GET /v1/cache/<fingerprint>`` — the stored canonical bytes.

        Returns the bytes **verbatim** (the byte-identity contract), or
        ``None`` when the fingerprint is not cached.
        """
        status, payload = self.request("GET", f"/v1/cache/{fingerprint}")
        if status == 404:
            return None
        if status != 200:
            raise ServiceClientError(
                f"GET /v1/cache/{fingerprint}: HTTP {status}", status
            )
        return payload


def wait_until_ready(
    host: str, port: int, *, timeout_s: float = 10.0, poll_s: float = 0.05
) -> dict[str, Any]:
    """Poll ``/v1/health`` until the service answers (or ``timeout_s`` expires).

    Returns the first successful health payload — the hand-off barrier
    between starting a server (thread or subprocess) and driving it.
    """
    deadline = time.monotonic() + timeout_s
    last_error: Exception | None = None
    while time.monotonic() < deadline:
        client = ServiceClient(host, port, timeout_s=max(poll_s, 1.0))
        try:
            return client.health()
        except ServiceClientError as error:
            last_error = error
            time.sleep(poll_s)
        finally:
            client.close()
    raise ServiceClientError(
        f"service at {host}:{port} not ready after {timeout_s}s: {last_error}"
    )
