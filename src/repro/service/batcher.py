"""Request queue + micro-batcher over the campaign process-pool machinery.

Balancing is CPU-bound, so the service never runs a pipeline on its event
loop.  Submissions flow through three stages:

1. **Single-flight coalescing** — concurrent submissions of one config
   fingerprint share one pending execution; later waiters just await the
   first one's future (the ``coalesced`` stat counts them).
2. **Micro-batching** — the collector task drains the queue into batches of
   up to ``max_batch`` submissions, waiting at most ``window_s`` for
   stragglers, so a burst of concurrent clients is dispatched as one batch
   instead of N wake-ups (batch sizes land in the stats the load-test bench
   records).
3. **Bounded fan-out** — each batch member becomes one
   :func:`execute_config_payload` call on the executor (a
   ``ProcessPoolExecutor`` by default), which reuses
   :func:`repro.experiments.campaign.execute_run` — exactly the worker the
   campaign runner fans out, returning the same never-raises manifest dict
   with the ``repro-run/1`` artifact under ``run_result``.

Everything except the executor call runs on the server's event loop, so the
batcher needs no locks.
"""

from __future__ import annotations

import asyncio
from collections.abc import Callable, Mapping
from concurrent.futures import Executor
from dataclasses import dataclass, field
from typing import Any

from repro.errors import ConfigurationError
from repro.service.protocol import ServiceRequestError

__all__ = ["MicroBatcher", "execute_config_payload"]


def execute_config_payload(payload: Mapping[str, Any]) -> dict[str, Any]:
    """Worker-pool entry point: one pipeline config in, one manifest out.

    Wraps the config as a pipeline :class:`~repro.experiments.campaign.CampaignRun`
    and executes it through the campaign runner's own worker, so the service
    and ``repro-lb campaign`` produce identical manifest dicts (``status``,
    ``run_result``, ``error``/``traceback``, ``seconds``) and a failed run
    returns a manifest instead of raising across the pool boundary.

    A body carrying a ``delta`` key is a rebalance submission (see
    :func:`~repro.service.protocol.parse_rebalance_payload`): the worker runs
    the prior pipeline, repairs it incrementally, and the ``repro-run/2``
    artifact rides the same manifest shape — ``"delta"`` can never clash with
    a pipeline-config key, which ``PipelineConfig.from_dict`` rejects anyway.
    """
    try:
        body = payload["config"]
        if isinstance(body, Mapping) and "delta" in body:
            return _execute_rebalance_payload(payload)
        from repro.experiments.campaign import CampaignRun, execute_run

        fingerprint = str(payload.get("fingerprint", ""))
        run = CampaignRun(
            run_id=f"service-{fingerprint[:12] or 'adhoc'}",
            experiment="pipeline",
            preset="service",
            pipeline=dict(body),
        )
        return execute_run(run)
    except Exception as error:  # noqa: BLE001 - a failed run must not kill the pool
        import traceback

        return {
            "run_id": "service-adhoc",
            "experiment": "pipeline",
            "preset": "service",
            "status": "failed",
            "error": f"{type(error).__name__}: {error}",
            "traceback": traceback.format_exc(),
            "passed": False,
            "seconds": 0.0,
        }


def _execute_rebalance_payload(payload: Mapping[str, Any]) -> dict[str, Any]:
    """Worker half of ``POST /v1/rebalance``: prior run + incremental repair.

    Same never-raises manifest contract as the campaign worker; the
    ``run_result`` is the ``repro-run/2`` artifact with delta provenance.
    """
    import time
    import traceback

    from repro.api import Pipeline, PipelineConfig
    from repro.churn import timeline_from_payload

    started = time.perf_counter()
    fingerprint = str(payload.get("fingerprint", ""))
    body = payload["config"]
    manifest: dict[str, Any] = {
        "run_id": f"service-rebalance-{fingerprint[:12] or 'adhoc'}",
        "experiment": "rebalance",
        "preset": "service",
    }
    try:
        config = PipelineConfig.from_dict(body["config"])
        timeline = timeline_from_payload(body["delta"])
        pipeline = Pipeline(config)
        prior = pipeline.run()
        result = pipeline.rebalance(prior, timeline)
        manifest.update(
            status="ok",
            title=f"{config.label or manifest['run_id']}+rebalance",
            passed=result.feasible,
            run_result=result.to_dict(),
        )
    except Exception as error:  # noqa: BLE001 - a failed run must not kill the pool
        manifest.update(
            status="failed",
            error=f"{type(error).__name__}: {error}",
            traceback=traceback.format_exc(),
            passed=False,
        )
    manifest["seconds"] = time.perf_counter() - started
    return manifest


@dataclass(slots=True)
class _Pending:
    """One queued execution (shared by every coalesced waiter)."""

    fingerprint: str
    config: dict[str, Any]
    future: asyncio.Future
    on_dispatch: Callable[[], None] | None = None
    dispatch_callbacks: list[Callable[[], None]] = field(default_factory=list)


class MicroBatcher:
    """Coalesce, batch and fan out pipeline executions (see module docstring)."""

    def __init__(
        self,
        executor: Executor,
        *,
        max_batch: int = 16,
        window_s: float = 0.005,
    ) -> None:
        if max_batch < 1:
            raise ConfigurationError(f"max_batch must be >= 1, got {max_batch}")
        if window_s < 0:
            raise ConfigurationError(f"window_s must be non-negative, got {window_s}")
        self._executor = executor
        self._max_batch = max_batch
        self._window = window_s
        self._queue: asyncio.Queue[_Pending | None] = asyncio.Queue()
        self._inflight: dict[str, _Pending] = {}
        self._collector: asyncio.Task | None = None
        self._closed = False
        # Counters (event-loop only, no locks needed).
        self._submitted = 0
        self._coalesced = 0
        self._batches = 0
        self._dispatched = 0
        self._max_batch_seen = 0
        self._batched_total = 0

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Spawn the collector task (call from inside the event loop)."""
        if self._collector is None:
            self._collector = asyncio.get_running_loop().create_task(self._collect())

    async def submit(
        self,
        fingerprint: str,
        config: Mapping[str, Any],
        *,
        on_dispatch: Callable[[], None] | None = None,
    ) -> dict[str, Any]:
        """Queue one execution and await its manifest dict.

        A submission whose fingerprint is already pending coalesces onto the
        in-flight execution instead of queueing a duplicate; ``on_dispatch``
        (when given) fires once the execution is handed to the worker pool.
        """
        if self._closed:
            raise ServiceRequestError("service is draining; not accepting work", 503)
        self._submitted += 1
        pending = self._inflight.get(fingerprint)
        if pending is not None:
            self._coalesced += 1
            if on_dispatch is not None:
                pending.dispatch_callbacks.append(on_dispatch)
            return await asyncio.shield(pending.future)
        pending = _Pending(
            fingerprint=fingerprint,
            config=dict(config),
            future=asyncio.get_running_loop().create_future(),
            on_dispatch=on_dispatch,
        )
        self._inflight[fingerprint] = pending
        await self._queue.put(pending)
        return await asyncio.shield(pending.future)

    async def drain(self, poll_s: float = 0.01) -> None:
        """Wait until the queue is empty and every in-flight execution resolved."""
        while self._queue.qsize() > 0 or self._inflight:
            await asyncio.sleep(poll_s)

    async def stop(self, *, drain: bool = True) -> None:
        """Stop the collector; with ``drain`` (default) finish queued work first.

        Without ``drain``, still-queued submissions resolve to a ``failed``
        manifest naming the shutdown (their waiters must not hang forever).
        """
        self._closed = True
        if drain:
            await self.drain()
        await self._queue.put(None)
        if self._collector is not None:
            await self._collector
            self._collector = None
        # Fail whatever the collector never dispatched (drain=False path).
        while not self._queue.empty():
            leftover = self._queue.get_nowait()
            if leftover is not None:
                self._resolve(
                    leftover,
                    {"status": "failed", "error": "service shut down before execution"},
                )

    def stats(self) -> dict[str, Any]:
        """Snapshot for ``/v1/stats`` and the load-test bench artifact."""
        return {
            "submitted": self._submitted,
            "coalesced": self._coalesced,
            "batches": self._batches,
            "dispatched": self._dispatched,
            "max_batch": self._max_batch_seen,
            "mean_batch": (self._batched_total / self._batches) if self._batches else 0.0,
            "queue_depth": self._queue.qsize(),
            "in_flight": len(self._inflight),
            "max_batch_limit": self._max_batch,
            "window_s": self._window,
        }

    # ------------------------------------------------------------------
    async def _collect(self) -> None:
        """Drain the queue into batches and dispatch each one."""
        loop = asyncio.get_running_loop()
        stopping = False
        while not stopping:
            head = await self._queue.get()
            if head is None:
                break
            batch = [head]
            deadline = loop.time() + self._window
            while len(batch) < self._max_batch:
                remaining = deadline - loop.time()
                if remaining <= 0:
                    break
                try:
                    item = await asyncio.wait_for(self._queue.get(), remaining)
                except asyncio.TimeoutError:
                    break
                if item is None:
                    stopping = True
                    break
                batch.append(item)
            self._dispatch(batch)

    def _dispatch(self, batch: list[_Pending]) -> None:
        """Fan one batch out across the executor."""
        loop = asyncio.get_running_loop()
        self._batches += 1
        self._batched_total += len(batch)
        self._max_batch_seen = max(self._max_batch_seen, len(batch))
        for pending in batch:
            self._dispatched += 1
            try:
                task = loop.run_in_executor(
                    self._executor,
                    execute_config_payload,
                    {"fingerprint": pending.fingerprint, "config": pending.config},
                )
            except RuntimeError as error:  # executor already shut down
                self._resolve(
                    pending, {"status": "failed", "error": f"executor rejected work: {error}"}
                )
                continue
            for callback in (pending.on_dispatch, *pending.dispatch_callbacks):
                if callback is not None:
                    callback()
            task.add_done_callback(
                lambda done, pending=pending: self._finish(pending, done)
            )

    def _finish(self, pending: _Pending, task: asyncio.Future) -> None:
        """Executor completion: resolve the shared future with the manifest."""
        if task.cancelled():
            manifest = {"status": "failed", "error": "execution cancelled"}
        else:
            error = task.exception()
            if error is not None:
                # execute_config_payload never raises; this is pool breakage
                # (worker killed, pickling failure) — fail the one job, keep
                # the service alive.
                manifest = {"status": "failed", "error": f"{type(error).__name__}: {error}"}
            else:
                manifest = task.result()
        self._resolve(pending, manifest)

    def _resolve(self, pending: _Pending, manifest: dict[str, Any]) -> None:
        self._inflight.pop(pending.fingerprint, None)
        if not pending.future.done():
            pending.future.set_result(manifest)
