"""The fingerprint-keyed LRU result cache.

One entry per :meth:`~repro.api.PipelineConfig.fingerprint`: the canonical
``repro-run/1`` bytes of the first successful execution (see
:func:`repro.service.protocol.canonical_result_bytes`).  Storing *bytes*
rather than dicts is the point — a hit returns exactly what was stored, so
every response for one fingerprint is byte-identical, and the stored size
is an honest memory figure for the stats endpoint.

The cache is only ever touched from the server's event loop, so it carries
no locking; :meth:`stats` is a plain snapshot.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any

from repro.errors import ConfigurationError

__all__ = ["ResultCache"]


class ResultCache:
    """Bounded least-recently-used mapping of fingerprint to result bytes."""

    __slots__ = ("_entries", "_max_entries", "_hits", "_misses", "_evictions", "_stored_bytes")

    def __init__(self, max_entries: int = 256) -> None:
        if max_entries < 1:
            raise ConfigurationError(f"cache max_entries must be >= 1, got {max_entries}")
        self._entries: OrderedDict[str, bytes] = OrderedDict()
        self._max_entries = max_entries
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._stored_bytes = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self._entries

    def get(self, fingerprint: str) -> bytes | None:
        """The stored bytes of ``fingerprint`` (recorded as a hit or miss)."""
        entry = self._entries.get(fingerprint)
        if entry is None:
            self._misses += 1
            return None
        self._entries.move_to_end(fingerprint)
        self._hits += 1
        return entry

    def peek(self, fingerprint: str) -> bytes | None:
        """Like :meth:`get` but without touching recency or the hit counters."""
        return self._entries.get(fingerprint)

    def put(self, fingerprint: str, payload: bytes) -> None:
        """Store ``payload`` under ``fingerprint``, evicting the LRU tail."""
        if fingerprint in self._entries:
            self._stored_bytes -= len(self._entries[fingerprint])
            self._entries.move_to_end(fingerprint)
        self._entries[fingerprint] = payload
        self._stored_bytes += len(payload)
        while len(self._entries) > self._max_entries:
            _, evicted = self._entries.popitem(last=False)
            self._stored_bytes -= len(evicted)
            self._evictions += 1

    @property
    def hit_rate(self) -> float:
        """``hits / (hits + misses)`` (0.0 before the first lookup)."""
        lookups = self._hits + self._misses
        return self._hits / lookups if lookups else 0.0

    def stats(self) -> dict[str, Any]:
        """Snapshot for the ``/v1/stats`` endpoint and the bench artifact."""
        return {
            "entries": len(self._entries),
            "max_entries": self._max_entries,
            "hits": self._hits,
            "misses": self._misses,
            "evictions": self._evictions,
            "hit_rate": self.hit_rate,
            "stored_bytes": self._stored_bytes,
        }
