"""Balancing-as-a-service: the long-running HTTP layer over :mod:`repro.api`.

The rest of the toolkit runs one :class:`~repro.api.PipelineConfig` per CLI
invocation; this package keeps the pipeline resident and serves it over
HTTP — the ROADMAP's "balancing-as-a-service" layer.  Stdlib only (asyncio,
``http.client`` on the client side), structured into four pieces:

* :mod:`repro.service.protocol` — the ``repro-service/1`` wire schema:
  request/response envelopes, job states, and the canonical result-byte
  contract the cache stores;
* :mod:`repro.service.cache` — the LRU result cache keyed by
  :meth:`~repro.api.PipelineConfig.fingerprint`, holding canonical
  ``repro-run/1`` bytes so identical configs return byte-identical results;
* :mod:`repro.service.batcher` — the request queue + micro-batcher that
  coalesces concurrent submissions (single-flight per fingerprint) and fans
  batches out across a bounded worker pool (the campaign runner's
  process-pool machinery);
* :mod:`repro.service.server` — the asyncio HTTP server itself
  (``repro-lb serve``) plus :class:`ServiceThread`, the in-process harness
  tests and the bench tier drive;
* :mod:`repro.service.client` — the blocking stdlib client the tests, the
  load-test bench tier and scripts use.

See ``DESIGN.md`` §11 for the architecture and ``EXPERIMENTS.md`` for the
load-test bench tier (``repro-lb bench service``).
"""

from repro.service.batcher import MicroBatcher, execute_config_payload
from repro.service.cache import ResultCache
from repro.service.client import ServiceClient, ServiceClientError, wait_until_ready
from repro.service.protocol import (
    JOB_STATES,
    SERVICE_SCHEMA,
    canonical_result_bytes,
    deterministic_result_dict,
)
from repro.service.server import BalancingService, ServiceThread, run_service

__all__ = [
    "JOB_STATES",
    "SERVICE_SCHEMA",
    "BalancingService",
    "MicroBatcher",
    "ResultCache",
    "ServiceClient",
    "ServiceClientError",
    "ServiceThread",
    "canonical_result_bytes",
    "deterministic_result_dict",
    "execute_config_payload",
    "run_service",
    "wait_until_ready",
]
