"""The asyncio HTTP server: routes, job store, graceful drain.

:class:`BalancingService` owns the four moving parts — listener, job store,
:class:`~repro.service.batcher.MicroBatcher`, and
:class:`~repro.service.cache.ResultCache` — and speaks a deliberately small
slice of HTTP/1.1 (keep-alive, ``Content-Length`` bodies, JSON in and out;
no chunked encoding, no TLS).  Endpoints:

==============================  ====================================================
``POST /v1/submit``             run a pipeline config; body is the config itself or
                                ``{"config": {...}, "wait": bool}`` — ``wait`` true
                                (default) blocks for the result, false returns 202
                                with a job id to poll
``POST /v1/rebalance``          incremental rebalance: ``{"config": {...},
                                "delta": {...}, "wait": bool}`` — the prior
                                pipeline config plus a ``repro-delta/1`` delta
                                or timeline; results cache under the composite
                                (prior fingerprint, delta digest) key
``GET /v1/jobs/<job_id>``       job status; embeds the result once done
``GET /v1/cache/<fingerprint>`` the stored canonical ``repro-run/1`` bytes,
                                returned **verbatim** (byte-identity contract)
``GET /v1/health``              liveness + version
``GET /v1/stats``               queue depth, batch sizes, cache hit rate,
                                aggregated per-stage timings, request counters
==============================  ====================================================

Every malformed request maps to a structured 4xx via
:class:`~repro.service.protocol.ServiceRequestError` — a client can never
crash the server or a connection handler.  Graceful shutdown
(:meth:`BalancingService.stop`) closes the listener, drains the queue and
every in-flight request, then tears the worker pool down, so accepted work
is never dropped.

:class:`ServiceThread` runs the whole service on a private event loop in a
daemon thread — the harness the tests, the load-test bench tier and the CI
smoke job drive; :func:`run_service` is the blocking foreground runner
behind ``repro-lb serve``.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import os
import signal
import threading
import time
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any

from repro import jsonio
from repro._version import __version__
from repro.api import PipelineConfig
from repro.errors import ConfigurationError, ReproError
from repro.service.batcher import MicroBatcher
from repro.service.cache import ResultCache
from repro.service.protocol import (
    SERVICE_SCHEMA,
    ServiceRequestError,
    canonical_result_bytes,
    error_payload,
)
from repro.timing import StageTimer

__all__ = ["BalancingService", "ServiceThread", "run_service"]

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    501: "Not Implemented",
    503: "Service Unavailable",
}

#: Worker-pool kinds the service can fan out on.
_POOLS = ("process", "thread")


@dataclass(slots=True)
class _Job:
    """One submitted execution tracked by the job store."""

    job_id: str
    fingerprint: str
    label: str
    state: str = "queued"
    cached: bool = False
    error: str = ""
    #: Canonical ``repro-run/1`` bytes once done.
    result_bytes: bytes | None = None
    #: Worker-side wall seconds (from the execution manifest).
    seconds: float | None = None
    done_event: asyncio.Event = field(default_factory=asyncio.Event)

    @property
    def finished(self) -> bool:
        return self.state in ("done", "failed")


class BalancingService:
    """The long-running balancing server (see module docstring).

    Parameters
    ----------
    host, port:
        Listen address; ``port=0`` picks a free port (read it back from
        :attr:`port` after :meth:`start`).
    jobs:
        Worker-pool width (default: ``min(4, cpu_count)``).
    pool:
        ``"process"`` (default; real CPU parallelism, the campaign pool) or
        ``"thread"`` (cheaper startup — tests and tiny deployments).
    max_batch, batch_window_ms:
        Micro-batcher limits: at most ``max_batch`` submissions are collected
        per batch, waiting at most ``batch_window_ms`` for stragglers.
    cache_entries:
        LRU capacity of the result cache.
    max_body_bytes:
        Largest accepted request body (413 above it).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        jobs: int | None = None,
        pool: str = "process",
        max_batch: int = 16,
        batch_window_ms: float = 5.0,
        cache_entries: int = 256,
        max_body_bytes: int = 8 * 1024 * 1024,
        max_jobs: int = 4096,
    ) -> None:
        if pool not in _POOLS:
            raise ConfigurationError(f"Unknown pool kind {pool!r}; expected one of {_POOLS}")
        if jobs is not None and jobs < 1:
            raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
        if max_jobs < 1:
            raise ConfigurationError(f"max_jobs must be >= 1, got {max_jobs}")
        self.host = host
        self.port = port
        self.pool_kind = pool
        self.workers = jobs if jobs is not None else min(4, os.cpu_count() or 1)
        self._batch_window_s = batch_window_ms / 1000.0
        self._max_batch = max_batch
        self._cache = ResultCache(cache_entries)
        self._max_body = max_body_bytes
        self._max_jobs = max_jobs

        self._server: asyncio.base_events.Server | None = None
        self._executor: Executor | None = None
        self._batcher: MicroBatcher | None = None
        self._jobs: dict[str, _Job] = {}
        self._job_seq = itertools.count(1)
        self._execute_tasks: set[asyncio.Task] = set()
        self._connections: set[asyncio.StreamWriter] = set()
        self._active_requests = 0
        self._draining = False
        self._stopping = False
        self._stopped: asyncio.Event | None = None
        self._started_monotonic = 0.0

        # Counters + the shared per-stage timer (pipeline stage seconds,
        # aggregated across every execution the service ran).
        self._stage_timer = StageTimer()
        self._requests: dict[str, int] = {}
        self._submits = 0
        self._executions = 0
        self._failures = 0
        self._bad_requests = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Create the pool, start the batcher and bind the listener."""
        if self._server is not None:
            raise ConfigurationError("service is already started")
        if self.pool_kind == "process":
            self._executor = ProcessPoolExecutor(max_workers=self.workers)
        else:
            self._executor = ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="repro-service"
            )
        self._batcher = MicroBatcher(
            self._executor, max_batch=self._max_batch, window_s=self._batch_window_s
        )
        self._batcher.start()
        self._stopped = asyncio.Event()
        self._server = await asyncio.start_server(self._handle_connection, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        self._started_monotonic = time.monotonic()

    async def stop(self, *, drain: bool = True, drain_timeout_s: float = 60.0) -> None:
        """Graceful shutdown: stop accepting, drain in-flight work, tear down.

        With ``drain`` (the default) every accepted submission finishes and
        lands in the job store / cache before the pool is shut down; without
        it, queued work resolves to ``failed`` manifests immediately.
        """
        if self._stopping:
            if self._stopped is not None:
                await self._stopped.wait()
            return
        self._stopping = True
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        assert self._batcher is not None
        await self._batcher.stop(drain=drain)
        if drain and self._execute_tasks:
            await asyncio.gather(*list(self._execute_tasks), return_exceptions=True)
        # Let handlers finish writing responses for requests already in
        # flight (bounded: a stuck client must not wedge shutdown forever).
        deadline = time.monotonic() + drain_timeout_s
        while drain and self._active_requests > 0 and time.monotonic() < deadline:
            await asyncio.sleep(0.01)
        for writer in list(self._connections):
            writer.close()
        if self._executor is not None:
            self._executor.shutdown(wait=drain, cancel_futures=not drain)
        if self._stopped is not None:
            self._stopped.set()

    def request_stop(self) -> None:
        """Schedule a graceful stop from a signal handler / foreign thread."""
        asyncio.get_running_loop().create_task(self.stop())

    async def wait_stopped(self) -> None:
        """Block until :meth:`stop` completed."""
        assert self._stopped is not None, "service not started"
        await self._stopped.wait()

    # ------------------------------------------------------------------
    # Introspection (tests / the in-process harness)
    # ------------------------------------------------------------------
    def job_state(self, job_id: str) -> str | None:
        """State of ``job_id`` (``None`` when unknown) — in-process probe."""
        job = self._jobs.get(job_id)
        return job.state if job is not None else None

    def cached_bytes(self, fingerprint: str) -> bytes | None:
        """Stored result bytes of ``fingerprint`` without touching hit stats."""
        return self._cache.peek(fingerprint)

    def stats(self) -> dict[str, Any]:
        """The ``/v1/stats`` payload (also readable in-process)."""
        states = {state: 0 for state in ("queued", "running", "done", "failed")}
        for job in self._jobs.values():
            states[job.state] = states.get(job.state, 0) + 1
        return {
            "schema": SERVICE_SCHEMA,
            "kind": "stats",
            "version": __version__,
            "uptime_s": (
                time.monotonic() - self._started_monotonic if self._started_monotonic else 0.0
            ),
            "pool": {"kind": self.pool_kind, "workers": self.workers},
            "requests": dict(sorted(self._requests.items())),
            "submits": self._submits,
            "executions": self._executions,
            "failures": self._failures,
            "bad_requests": self._bad_requests,
            "jobs": {**states, "total": len(self._jobs)},
            "batcher": self._batcher.stats() if self._batcher is not None else {},
            "cache": self._cache.stats(),
            "stage_seconds": {
                name: float(value) for name, value in sorted(self._stage_timer.timings.items())
            },
        }

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """One keep-alive connection: read requests until EOF or error."""
        self._connections.add(writer)
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except ServiceRequestError as error:
                    self._bad_requests += 1
                    await self._write_response(
                        writer, error.status, error_payload(str(error), error.status),
                        keep_alive=False,
                    )
                    break
                if request is None:
                    break
                method, path, headers, body = request
                self._active_requests += 1
                try:
                    try:
                        status, payload, raw = await self._dispatch(method, path, body)
                    except ServiceRequestError as error:
                        self._bad_requests += 1
                        status, payload, raw = error.status, error_payload(
                            str(error), error.status
                        ), None
                    keep_alive = headers.get("connection", "").lower() != "close"
                    await self._write_response(
                        writer, status, payload, raw=raw, keep_alive=keep_alive
                    )
                finally:
                    self._active_requests -= 1
                if not keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            pass
        finally:
            self._connections.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> tuple[str, str, dict[str, str], bytes] | None:
        """Parse one request; ``None`` on clean EOF, 4xx on malformed input."""
        try:
            line = await reader.readline()
        except ValueError:
            raise ServiceRequestError("request line too long", 431) from None
        if not line:
            return None
        parts = line.decode("latin-1").strip().split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/"):
            raise ServiceRequestError("malformed HTTP request line")
        method, target, _version = parts
        headers: dict[str, str] = {}
        for _ in range(100):
            try:
                header_line = await reader.readline()
            except ValueError:
                raise ServiceRequestError("header line too long", 431) from None
            if header_line in (b"\r\n", b"\n", b""):
                break
            decoded = header_line.decode("latin-1")
            if ":" not in decoded:
                raise ServiceRequestError("malformed HTTP header")
            name, _, value = decoded.partition(":")
            headers[name.strip().lower()] = value.strip()
        else:
            raise ServiceRequestError("too many headers", 431)
        if "transfer-encoding" in headers:
            raise ServiceRequestError("chunked request bodies are not supported", 501)
        body = b""
        length_text = headers.get("content-length")
        if length_text is not None:
            try:
                length = int(length_text)
            except ValueError:
                raise ServiceRequestError("invalid Content-Length") from None
            if length < 0:
                raise ServiceRequestError("invalid Content-Length")
            if length > self._max_body:
                raise ServiceRequestError(
                    f"request body exceeds {self._max_body} bytes", 413
                )
            try:
                body = await reader.readexactly(length)
            except asyncio.IncompleteReadError:
                return None
        return method, target, headers, body

    async def _write_response(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: dict[str, Any] | None,
        *,
        raw: bytes | None = None,
        keep_alive: bool = True,
    ) -> None:
        """Serialise and send one response (structured payload or raw bytes)."""
        body = raw if raw is not None else jsonio.dumps(payload, indent=None).encode("utf-8")
        reason = _REASONS.get(status, "Unknown")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            f"\r\n"
        ).encode("latin-1")
        writer.write(head + body)
        await writer.drain()

    # ------------------------------------------------------------------
    # Routing + handlers
    # ------------------------------------------------------------------
    async def _dispatch(
        self, method: str, target: str, body: bytes
    ) -> tuple[int, dict[str, Any] | None, bytes | None]:
        """Route one request; returns ``(status, payload, raw_bytes)``."""
        path = target.split("?", 1)[0]
        route = path
        for prefix in ("/v1/jobs/", "/v1/cache/"):
            if path.startswith(prefix):
                route = prefix + "*"
        counter = f"{method} {route}"
        self._requests[counter] = self._requests.get(counter, 0) + 1
        if path == "/v1/health":
            self._require_method(method, "GET")
            return 200, {
                "schema": SERVICE_SCHEMA,
                "kind": "health",
                "status": "draining" if self._draining else "ok",
                "version": __version__,
            }, None
        if path == "/v1/stats":
            self._require_method(method, "GET")
            return 200, self.stats(), None
        if path == "/v1/submit":
            self._require_method(method, "POST")
            return await self._handle_submit(body)
        if path == "/v1/rebalance":
            self._require_method(method, "POST")
            return await self._handle_rebalance(body)
        if path.startswith("/v1/jobs/"):
            self._require_method(method, "GET")
            return self._handle_job(path.removeprefix("/v1/jobs/"))
        if path.startswith("/v1/cache/"):
            self._require_method(method, "GET")
            return self._handle_cache(path.removeprefix("/v1/cache/"))
        raise ServiceRequestError(f"no such endpoint: {path}", 404)

    @staticmethod
    def _require_method(method: str, expected: str) -> None:
        if method != expected:
            raise ServiceRequestError(f"method {method} not allowed (use {expected})", 405)

    async def _handle_submit(
        self, body: bytes
    ) -> tuple[int, dict[str, Any] | None, bytes | None]:
        from repro.service.protocol import parse_submit_payload

        if self._draining:
            raise ServiceRequestError("service is draining; not accepting work", 503)
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ServiceRequestError(f"request body is not valid JSON: {error}") from None
        config_dict, wait = parse_submit_payload(payload)
        try:
            config = PipelineConfig.from_dict(config_dict)
        except ReproError as error:
            raise ServiceRequestError(f"invalid pipeline config: {error}", 422) from None
        if config.workload.kind == "provided":
            raise ServiceRequestError(
                'workload kind "provided" needs in-memory objects; the service only '
                "accepts fully declarative configs",
                422,
            )
        self._submits += 1
        fingerprint = config.fingerprint()
        cached = self._cache.get(fingerprint)
        if cached is not None:
            job = self._new_job(fingerprint, config.label, cached=True)
            job.state = "done"
            job.result_bytes = cached
            job.done_event.set()
            return 200, self._job_payload(job), None
        job = self._new_job(fingerprint, config.label)
        task = asyncio.get_running_loop().create_task(
            self._execute(job, fingerprint, config_dict)
        )
        self._execute_tasks.add(task)
        task.add_done_callback(self._execute_tasks.discard)
        if not wait:
            return 202, self._job_payload(job), None
        await job.done_event.wait()
        return (200 if job.state == "done" else 500), self._job_payload(job), None

    async def _handle_rebalance(
        self, body: bytes
    ) -> tuple[int, dict[str, Any] | None, bytes | None]:
        """``POST /v1/rebalance``: prior config + delta, keyed compositely.

        Reuses the submit path's whole machinery — job store, micro-batcher,
        single-flight coalescing and result cache — under the composite
        ``(prior fingerprint, delta digest)`` key, so repeated rebalances of
        one pair are byte-identical cache hits exactly like repeated submits
        of one config.
        """
        from repro.churn import timeline_from_payload
        from repro.service.protocol import parse_rebalance_payload, rebalance_fingerprint

        if self._draining:
            raise ServiceRequestError("service is draining; not accepting work", 503)
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ServiceRequestError(f"request body is not valid JSON: {error}") from None
        config_dict, delta_dict, wait = parse_rebalance_payload(payload)
        try:
            config = PipelineConfig.from_dict(config_dict)
        except ReproError as error:
            raise ServiceRequestError(f"invalid pipeline config: {error}", 422) from None
        if config.workload.kind == "provided":
            raise ServiceRequestError(
                'workload kind "provided" needs in-memory objects; the service only '
                "accepts fully declarative configs",
                422,
            )
        try:
            timeline = timeline_from_payload(delta_dict)
        except ReproError as error:
            raise ServiceRequestError(f"invalid delta: {error}", 422) from None
        self._submits += 1
        fingerprint = rebalance_fingerprint(config.fingerprint(), timeline.digest())
        cached = self._cache.get(fingerprint)
        label = f"{config.label}+rebalance" if config.label else "rebalance"
        if cached is not None:
            job = self._new_job(fingerprint, label, cached=True)
            job.state = "done"
            job.result_bytes = cached
            job.done_event.set()
            return 200, self._job_payload(job), None
        job = self._new_job(fingerprint, label)
        task = asyncio.get_running_loop().create_task(
            self._execute(
                job,
                fingerprint,
                {"config": config_dict, "delta": timeline.to_dict()},
            )
        )
        self._execute_tasks.add(task)
        task.add_done_callback(self._execute_tasks.discard)
        if not wait:
            return 202, self._job_payload(job), None
        await job.done_event.wait()
        return (200 if job.state == "done" else 500), self._job_payload(job), None

    def _handle_job(self, job_id: str) -> tuple[int, dict[str, Any] | None, bytes | None]:
        job = self._jobs.get(job_id)
        if job is None:
            raise ServiceRequestError(f"no such job: {job_id}", 404)
        return 200, self._job_payload(job), None

    def _handle_cache(
        self, fingerprint: str
    ) -> tuple[int, dict[str, Any] | None, bytes | None]:
        entry = self._cache.get(fingerprint)
        if entry is None:
            raise ServiceRequestError(f"no cached result for fingerprint {fingerprint}", 404)
        # Byte-identity contract: the stored canonical bytes, verbatim.
        return 200, None, entry

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _new_job(self, fingerprint: str, label: str, *, cached: bool = False) -> _Job:
        job = _Job(
            job_id=f"job-{next(self._job_seq):08d}",
            fingerprint=fingerprint,
            label=label,
            cached=cached,
        )
        self._jobs[job.job_id] = job
        self._prune_jobs()
        return job

    def _prune_jobs(self) -> None:
        """Bound the job store: drop the oldest *finished* jobs past the cap."""
        if len(self._jobs) <= self._max_jobs:
            return
        for job_id in list(self._jobs):
            if len(self._jobs) <= self._max_jobs:
                break
            if self._jobs[job_id].finished:
                del self._jobs[job_id]

    async def _execute(self, job: _Job, fingerprint: str, config_dict: dict[str, Any]) -> None:
        """Run one job through the batcher and settle the job record."""
        assert self._batcher is not None

        def mark_running() -> None:
            if job.state == "queued":
                job.state = "running"

        try:
            manifest = await self._batcher.submit(
                fingerprint, config_dict, on_dispatch=mark_running
            )
        except ServiceRequestError as error:
            manifest = {"status": "failed", "error": str(error)}
        if manifest.get("status") == "ok":
            result = manifest["run_result"]
            payload = canonical_result_bytes(result)
            self._cache.put(fingerprint, payload)
            job.result_bytes = payload
            job.seconds = manifest.get("seconds")
            job.state = "done"
            self._executions += 1
            for stage, seconds in (result.get("timings") or {}).items():
                timings = self._stage_timer.timings
                timings[stage] = timings.get(stage, 0.0) + float(seconds)
        else:
            job.error = str(manifest.get("error", "execution failed"))
            job.state = "failed"
            self._failures += 1
        job.done_event.set()

    def _job_payload(self, job: _Job) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "schema": SERVICE_SCHEMA,
            "kind": "job",
            "job_id": job.job_id,
            "status": job.state,
            "fingerprint": job.fingerprint,
            "label": job.label,
            "cached": job.cached,
        }
        if job.seconds is not None:
            payload["seconds"] = float(job.seconds)
        if job.state == "failed":
            payload["error"] = job.error
        if job.state == "done" and job.result_bytes is not None:
            payload["result"] = json.loads(job.result_bytes)
        return payload


# ----------------------------------------------------------------------
# Runners
# ----------------------------------------------------------------------
def run_service(service: BalancingService, *, banner: bool = True) -> int:
    """Run ``service`` in the foreground until SIGINT/SIGTERM (the CLI verb)."""

    async def _main() -> None:
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, service.request_stop)
            except (NotImplementedError, RuntimeError):  # pragma: no cover - non-unix
                pass
        await service.start()
        if banner:
            print(
                f"repro-lb serve: listening on http://{service.host}:{service.port} "
                f"(pool={service.pool_kind}, workers={service.workers}) — Ctrl-C stops",
                flush=True,
            )
        await service.wait_stopped()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:  # pragma: no cover - signal-handler fallback
        return 130
    return 0


class ServiceThread:
    """Run a :class:`BalancingService` on a private loop in a daemon thread.

    The in-process harness used by the tests, the load-test bench tier and
    the CI smoke job::

        with ServiceThread(pool="thread", jobs=2) as handle:
            client = ServiceClient(handle.host, handle.port)
            ...

    ``stop`` (and context-manager exit) performs the graceful drain.
    Construction kwargs are forwarded to :class:`BalancingService`.
    """

    def __init__(self, **service_kwargs: Any) -> None:
        self._kwargs = service_kwargs
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._started = threading.Event()
        self._startup_error: BaseException | None = None
        self.service: BalancingService | None = None

    @property
    def host(self) -> str:
        assert self.service is not None
        return self.service.host

    @property
    def port(self) -> int:
        assert self.service is not None
        return self.service.port

    def start(self) -> "ServiceThread":
        if self._thread is not None:
            raise ConfigurationError("service thread already started")
        self._thread = threading.Thread(target=self._run, name="repro-service", daemon=True)
        self._thread.start()
        self._started.wait()
        if self._startup_error is not None:
            raise self._startup_error
        return self

    def _run(self) -> None:
        self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self._loop)
        self.service = BalancingService(**self._kwargs)
        try:
            self._loop.run_until_complete(self.service.start())
        except BaseException as error:  # noqa: BLE001 - report startup failure to caller
            self._startup_error = error
            self._started.set()
            self._loop.close()
            return
        self._started.set()
        try:
            self._loop.run_forever()
        finally:
            self._loop.close()

    def stop(self, *, drain: bool = True, timeout_s: float = 60.0) -> None:
        """Gracefully stop the service and join the thread."""
        if self._thread is None or self._loop is None or self.service is None:
            return
        if not self._loop.is_closed():
            future = asyncio.run_coroutine_threadsafe(
                self.service.stop(drain=drain), self._loop
            )
            future.result(timeout=timeout_s)
            self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=timeout_s)
        self._thread = None

    def __enter__(self) -> "ServiceThread":
        return self.start()

    def __exit__(self, *_exc_info: Any) -> None:
        self.stop()
