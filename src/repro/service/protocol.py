"""The ``repro-service/1`` wire schema and result-byte contract.

Every payload the service emits is a JSON object stamped with
``"schema": "repro-service/1"`` (except the raw cached-result endpoint,
which returns stored ``repro-run/1`` bytes verbatim — see below).  The
submit request body is either a serialised pipeline config itself or an
envelope ``{"config": {...}, "wait": bool}``.

**The canonical result-byte contract.**  A run's artifact is cached as
``canonical_result_bytes(RunResult.to_dict())`` — the single-line
sorted-key strict-JSON form of :mod:`repro.jsonio`.  Two properties follow:

* a cache hit returns *exactly* the stored bytes, so every response for one
  fingerprint is byte-identical to every other, and
* because everything in a ``repro-run/1`` artifact except the wall-clock
  ``timings`` is a pure function of the config, a cached result is
  byte-identical to an independent ``Pipeline.run`` of the same config
  after dropping the volatile keys — :func:`deterministic_result_dict`
  states that comparison once, and the service bench tier asserts it on
  every run.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro import jsonio
from repro.errors import ReproError

__all__ = [
    "SERVICE_SCHEMA",
    "JOB_STATES",
    "VOLATILE_RESULT_KEYS",
    "ServiceRequestError",
    "canonical_result_bytes",
    "deterministic_result_dict",
    "error_payload",
    "parse_submit_payload",
]

#: Version tag stamped into every structured service response.
SERVICE_SCHEMA = "repro-service/1"

#: Lifecycle of a submitted job.
JOB_STATES = ("queued", "running", "done", "failed")

#: Top-level ``repro-run/1`` keys that are wall-clock measurements, not pure
#: functions of the config.
VOLATILE_RESULT_KEYS = ("timings",)


class ServiceRequestError(ReproError):
    """A request the service must answer with a structured 4xx, not a crash."""

    def __init__(self, message: str, status: int = 400) -> None:
        super().__init__(message)
        self.status = status


def canonical_result_bytes(result: Mapping[str, Any]) -> bytes:
    """Canonical UTF-8 bytes of a ``repro-run/1`` dict (what the cache stores)."""
    return jsonio.dumps(dict(result), indent=None).encode("utf-8")


def deterministic_result_dict(result: Mapping[str, Any]) -> dict[str, Any]:
    """Copy of a ``repro-run/1`` dict without its volatile (wall-clock) keys.

    Two runs of one config must agree on this projection exactly; it is the
    byte-identity comparison basis between a cached service result and a
    direct :meth:`~repro.api.Pipeline.run`.
    """
    return {key: value for key, value in result.items() if key not in VOLATILE_RESULT_KEYS}


def error_payload(message: str, status: int) -> dict[str, Any]:
    """The structured body of every non-2xx response."""
    return {"schema": SERVICE_SCHEMA, "error": str(message), "status": int(status)}


def parse_submit_payload(payload: Any) -> tuple[dict[str, Any], bool]:
    """Extract ``(config_dict, wait)`` from a submit request body.

    Accepts the bare serialised pipeline config or the
    ``{"config": {...}, "wait": bool}`` envelope; anything else raises
    :class:`ServiceRequestError` (one 400, never a traceback).
    """
    if not isinstance(payload, dict):
        raise ServiceRequestError(
            f"submit body must be a JSON object, got {type(payload).__name__}"
        )
    if "config" in payload:
        unknown = sorted(set(payload) - {"config", "wait"})
        if unknown:
            raise ServiceRequestError(f"unknown submit key(s) {unknown}")
        config = payload["config"]
        wait = payload.get("wait", True)
        if not isinstance(wait, bool):
            raise ServiceRequestError("submit key 'wait' must be a boolean")
    else:
        config, wait = payload, True
    if not isinstance(config, dict):
        raise ServiceRequestError(
            f"pipeline config must be a JSON object, got {type(config).__name__}"
        )
    return config, wait
