"""The ``repro-service/1`` wire schema and result-byte contract.

Every payload the service emits is a JSON object stamped with
``"schema": "repro-service/1"`` (except the raw cached-result endpoint,
which returns stored ``repro-run/1`` bytes verbatim — see below).  The
submit request body is either a serialised pipeline config itself or an
envelope ``{"config": {...}, "wait": bool}``.

**The canonical result-byte contract.**  A run's artifact is cached as
``canonical_result_bytes(RunResult.to_dict())`` — the single-line
sorted-key strict-JSON form of :mod:`repro.jsonio`.  Two properties follow:

* a cache hit returns *exactly* the stored bytes, so every response for one
  fingerprint is byte-identical to every other, and
* because everything in a ``repro-run/1`` artifact except the wall-clock
  ``timings`` is a pure function of the config, a cached result is
  byte-identical to an independent ``Pipeline.run`` of the same config
  after dropping the volatile keys — :func:`deterministic_result_dict`
  states that comparison once, and the service bench tier asserts it on
  every run.
"""

from __future__ import annotations

import hashlib
from typing import Any, Mapping

from repro import jsonio
from repro.errors import ReproError
from repro.schemas import SERVICE_SCHEMA

__all__ = [
    "SERVICE_SCHEMA",
    "JOB_STATES",
    "VOLATILE_RESULT_KEYS",
    "ServiceRequestError",
    "canonical_result_bytes",
    "deterministic_result_dict",
    "error_payload",
    "parse_rebalance_payload",
    "parse_submit_payload",
    "rebalance_fingerprint",
]

#: Lifecycle of a submitted job.
JOB_STATES = ("queued", "running", "done", "failed")

#: Top-level ``repro-run/1`` keys that are wall-clock measurements, not pure
#: functions of the config.
VOLATILE_RESULT_KEYS = ("timings",)


class ServiceRequestError(ReproError):
    """A request the service must answer with a structured 4xx, not a crash."""

    def __init__(self, message: str, status: int = 400) -> None:
        super().__init__(message)
        self.status = status


def canonical_result_bytes(result: Mapping[str, Any]) -> bytes:
    """Canonical UTF-8 bytes of a ``repro-run/1`` dict (what the cache stores)."""
    return jsonio.dumps(dict(result), indent=None).encode("utf-8")


def deterministic_result_dict(result: Mapping[str, Any]) -> dict[str, Any]:
    """Copy of a ``repro-run/1`` dict without its volatile (wall-clock) keys.

    Two runs of one config must agree on this projection exactly; it is the
    byte-identity comparison basis between a cached service result and a
    direct :meth:`~repro.api.Pipeline.run`.
    """
    return {key: value for key, value in result.items() if key not in VOLATILE_RESULT_KEYS}


def error_payload(message: str, status: int) -> dict[str, Any]:
    """The structured body of every non-2xx response."""
    return {"schema": SERVICE_SCHEMA, "error": str(message), "status": int(status)}


def parse_submit_payload(payload: Any) -> tuple[dict[str, Any], bool]:
    """Extract ``(config_dict, wait)`` from a submit request body.

    Accepts the bare serialised pipeline config or the
    ``{"config": {...}, "wait": bool}`` envelope; anything else raises
    :class:`ServiceRequestError` (one 400, never a traceback).
    """
    if not isinstance(payload, dict):
        raise ServiceRequestError(
            f"submit body must be a JSON object, got {type(payload).__name__}"
        )
    if "config" in payload:
        unknown = sorted(set(payload) - {"config", "wait"})
        if unknown:
            raise ServiceRequestError(f"unknown submit key(s) {unknown}")
        config = payload["config"]
        wait = payload.get("wait", True)
        if not isinstance(wait, bool):
            raise ServiceRequestError("submit key 'wait' must be a boolean")
    else:
        config, wait = payload, True
    if not isinstance(config, dict):
        raise ServiceRequestError(
            f"pipeline config must be a JSON object, got {type(config).__name__}"
        )
    return config, wait


def parse_rebalance_payload(payload: Any) -> tuple[dict[str, Any], dict[str, Any], bool]:
    """Extract ``(config_dict, delta_dict, wait)`` from a rebalance request body.

    The body is always the envelope ``{"config": {...}, "delta": {...},
    "wait": bool}`` — the prior pipeline config plus either a single
    ``repro-delta/1`` delta (a dict with a ``kind``) or a whole serialised
    timeline.  Anything else raises :class:`ServiceRequestError`.
    """
    if not isinstance(payload, dict):
        raise ServiceRequestError(
            f"rebalance body must be a JSON object, got {type(payload).__name__}"
        )
    unknown = sorted(set(payload) - {"config", "delta", "wait"})
    if unknown:
        raise ServiceRequestError(f"unknown rebalance key(s) {unknown}")
    missing = sorted({"config", "delta"} - set(payload))
    if missing:
        raise ServiceRequestError(f"rebalance body is missing required key(s) {missing}")
    wait = payload.get("wait", True)
    if not isinstance(wait, bool):
        raise ServiceRequestError("rebalance key 'wait' must be a boolean")
    config, delta = payload["config"], payload["delta"]
    if not isinstance(config, dict):
        raise ServiceRequestError(
            f"pipeline config must be a JSON object, got {type(config).__name__}"
        )
    if not isinstance(delta, dict):
        raise ServiceRequestError(
            f"delta must be a JSON object, got {type(delta).__name__}"
        )
    return config, delta, wait


def rebalance_fingerprint(config_fingerprint: str, delta_digest: str) -> str:
    """The composite cache key of one ``(prior config, delta timeline)`` pair.

    Keys the same :class:`~repro.service.cache.ResultCache` / single-flight
    machinery the submit path uses, so repeated rebalances of one pair
    coalesce and hit the cache exactly like repeated submits of one config.
    """
    return hashlib.sha256(
        f"rebalance:{config_fingerprint}:{delta_digest}".encode("utf-8")
    ).hexdigest()
