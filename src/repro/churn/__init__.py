"""Online rebalancing under churn: typed workload deltas + incremental repair.

The delta-first half of the API redesign: :mod:`repro.churn.deltas` defines
the four delta kinds and the :class:`ChurnTimeline` envelope
(``repro-delta/1``); :mod:`repro.churn.repair` repairs a prior schedule
against the post-delta workload over the conflict engine's
``occupy``/``release``/``shift`` primitives.  The user-facing entry point is
:meth:`repro.api.Pipeline.rebalance`, which wraps both into a
``repro-run/2`` result with delta provenance.
"""

from repro.churn.deltas import (
    DELTA_SCHEMA,
    AddTask,
    ChurnTimeline,
    Delta,
    ProcessorLoss,
    RemoveTask,
    WcetDrift,
    as_timeline,
    delta_from_dict,
    timeline_from_payload,
)
from repro.churn.repair import RepairStats, repair_schedule

__all__ = [
    "DELTA_SCHEMA",
    "AddTask",
    "RemoveTask",
    "WcetDrift",
    "ProcessorLoss",
    "Delta",
    "ChurnTimeline",
    "as_timeline",
    "delta_from_dict",
    "RepairStats",
    "repair_schedule",
    "timeline_from_payload",
]
