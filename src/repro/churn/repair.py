"""Incremental schedule repair over the conflict engine.

Given the *prior* balanced schedule and the *post-delta* workload, repair the
schedule in place instead of recomputing it from scratch:

1. **Diff** — classify every task of the new graph as *survivor* (its prior
   placement is provably still valid) or *displaced* (it must be re-placed).
   A task survives iff its definition and incoming dependences are unchanged,
   every processor hosting one of its prior instances survived, and either
   the hyper-period is unchanged (its exact per-instance placements carry
   over) or all of its instances sit on one processor (a single-processor
   arithmetic sequence ``S + k·T`` occupies the same infinite timeline under
   *any* hyper-period, so re-indexing it modulo the new hyper-period is
   safe).  Multi-processor spreads — the paper's own worked example spreads
   one task over three processors — are only kept verbatim; under a changed
   hyper-period their modulo pattern would silently alias, so they are
   displaced.  The displaced set is then closed under
   :meth:`~repro.model.graph.TaskGraph.descendants`: a consumer of a
   re-placed producer must be re-placed too (this closure is also what
   displaces the existing consumers of an ``AddTask`` with successors).
2. **Release** — seed a :class:`~repro.core.occupancy.ConflictEngine` over
   the new hyper-period with the survivors' slots (``reside``), seed the
   displaced tasks' stale prior slots and drop them (``reside`` +
   ``release``) — the incremental bookkeeping the engine was built for.
3. **Re-place** — walk the displaced tasks in topological order; for each,
   find the earliest feasible first start per processor (data-arrival lower
   bound from already-fixed producers, then the same clearing-shift sweep the
   initial scheduler uses, but against the engine's live interval pieces),
   pick by (start, load, processor order) and record the slots (``reside``).
4. **Compact** — one left-shift pass in placement order: if a displaced task
   can now start strictly earlier on its own processor (a later sibling's
   placement never blocks an earlier start from relaxing), move its slots
   with ``shift``.  Only-earlier moves keep every consumer's arrival bound
   satisfied.
5. **Commit** — stamp the final displaced patterns into the engine's *moved*
   timeline (``occupy``), rebuild the full instance list, re-synthesise
   communications and verify with the full feasibility checker; any
   violation raises :class:`~repro.errors.InfeasibleError` so the caller
   (``Pipeline.rebalance``) can fall back to the from-scratch pipeline.

The function returns the repaired schedule plus a :class:`RepairStats`
record (survivor/displaced counts, engine operation counts, hyper-periods)
that ``Pipeline.rebalance`` embeds into the ``repro-run/2`` provenance
envelope.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.occupancy import ConflictEngine
from repro.errors import InfeasibleError, SchedulingError
from repro.model.architecture import Architecture
from repro.model.graph import TaskGraph
from repro.scheduling.communications import synthesize_communications
from repro.scheduling.feasibility import check_schedule
from repro.scheduling.periodic_intervals import EPSILON as _EPS
from repro.scheduling.periodic_intervals import circular_overlap, clearing_shift
from repro.scheduling.schedule import Schedule, ScheduledInstance
from repro.scheduling.unrolling import instance_count, predecessors_of_instance

__all__ = ["RepairStats", "repair_schedule"]


@dataclass(slots=True)
class RepairStats:
    """Counters describing one incremental repair (part of ``repro-run/2``)."""

    #: Tasks whose prior placement was kept verbatim.
    survivors: int = 0
    #: Tasks that had to be re-placed (after descendants closure).
    displaced: int = 0
    #: Stale resident slots dropped via ``ConflictEngine.release``.
    released: int = 0
    #: Slots committed to the moved timeline via ``ConflictEngine.occupy``.
    occupied: int = 0
    #: Displaced tasks moved earlier by the compaction ``shift`` pass.
    shifted: int = 0
    #: Hyper-period of the prior / post-delta workload.
    hyper_period_before: int = 0
    hyper_period_after: int = 0
    #: ``True`` when the caller abandoned the repair and recomputed from
    #: scratch (set by ``Pipeline.rebalance``, never by ``repair_schedule``).
    fallback: bool = False
    #: Reason of the fallback, when one happened.
    fallback_reason: str | None = None
    #: Names of the displaced tasks (bounded diagnostic payload).
    displaced_tasks: list[str] = field(default_factory=list)

    def to_dict(self) -> dict[str, Any]:
        return {
            "survivors": self.survivors,
            "displaced": self.displaced,
            "released": self.released,
            "occupied": self.occupied,
            "shifted": self.shifted,
            "hyper_period_before": self.hyper_period_before,
            "hyper_period_after": self.hyper_period_after,
            "fallback": self.fallback,
            "fallback_reason": self.fallback_reason,
            "displaced_tasks": sorted(self.displaced_tasks)[:50],
        }


def _incoming_signature(graph: TaskGraph, name: str) -> frozenset[tuple]:
    """Hashable summary of a task's incoming dependences.

    ``data_size`` may be ``None`` (meaning "inherit the producer's"), which
    compares fine as-is.
    """
    return frozenset(
        (dep.producer, dep.consumer, dep.data_size)
        for dep in graph.in_dependences(name)
    )


def _classify(
    prior: Schedule, graph: TaskGraph, architecture: Architecture
) -> tuple[set[str], set[str]]:
    """Split the new graph's tasks into (survivors, displaced)."""
    old_graph = prior.graph
    surviving_processors = set(architecture.processor_names)
    same_hyper_period = graph.hyper_period == old_graph.hyper_period

    displaced: set[str] = set()
    for name in graph.task_names:
        if name not in old_graph:
            displaced.add(name)
            continue
        if graph.task(name) != old_graph.task(name):
            displaced.add(name)
            continue
        if _incoming_signature(graph, name) != _incoming_signature(old_graph, name):
            displaced.add(name)
            continue
        prior_instances = prior.instances_of(name)
        processors = {si.processor for si in prior_instances}
        if not processors or not processors <= surviving_processors:
            displaced.add(name)
            continue
        if not same_hyper_period and len(processors) > 1:
            # A multi-processor spread is only a valid steady-state pattern
            # modulo the hyper-period it was built for.
            displaced.add(name)

    # Closure: re-placing a producer invalidates every consumer's arrival bound.
    for name in tuple(displaced):
        if name in graph:
            displaced |= graph.descendants(name)

    survivors = set(graph.task_names) - displaced
    return survivors, displaced


def _sweep_earliest_start(
    lower_bound: float,
    period: int,
    wcet: float,
    count: int,
    intervals: list[tuple[float, float]],
    hyper_period: int,
) -> float | None:
    """Earliest ``S >= lower_bound`` whose pattern clears ``intervals``.

    Same clearing-shift sweep as the initial scheduler's
    ``_earliest_start``: the steady-state pattern is invariant under a shift
    of one period, so sweeping more than one period proves infeasibility.
    """
    if wcet <= _EPS:
        return lower_bound
    start = lower_bound
    shifted = 0.0
    max_iterations = 4 * (len(intervals) + 1) * (count + 1) + 16
    for _iteration in range(max_iterations):
        delta = 0.0
        for index in range(count):
            offset = (start + index * period) % hyper_period
            for busy_offset, busy_length in intervals:
                if circular_overlap(offset, wcet, busy_offset, busy_length, hyper_period):
                    try:
                        delta = clearing_shift(
                            offset, wcet, busy_offset, busy_length, hyper_period
                        )
                    except SchedulingError:
                        return None
                    break
            if delta > _EPS:
                break
        if delta <= _EPS:
            return start
        start += delta
        shifted += delta
        if shifted > period + _EPS:
            return None
    return None


def repair_schedule(
    prior: Schedule, graph: TaskGraph, architecture: Architecture
) -> tuple[Schedule, RepairStats]:
    """Repair ``prior`` against the post-delta ``(graph, architecture)``.

    Returns the repaired schedule and its :class:`RepairStats`.  Raises
    :class:`~repro.errors.InfeasibleError` when a displaced task cannot be
    placed or the repaired schedule fails verification — the caller is
    expected to fall back to the from-scratch pipeline in that case.
    """
    graph.validate()
    hyper_period = graph.hyper_period
    stats = RepairStats(
        hyper_period_before=prior.graph.hyper_period,
        hyper_period_after=hyper_period,
    )

    survivors, displaced = _classify(prior, graph, architecture)
    stats.survivors = len(survivors)
    stats.displaced = len(displaced)
    stats.displaced_tasks = sorted(displaced)

    engine = ConflictEngine(hyper_period, architecture.processor_names)

    # Survivor slots become resident occupancy over the new hyper-period.
    # ``first_start``/``processor`` of every settled task, for arrival bounds.
    first_starts: dict[str, float] = {}
    single_processor: dict[str, str] = {}
    for name in survivors:
        task = graph.task(name)
        prior_instances = prior.instances_of(name)
        first_starts[name] = prior_instances[0].start
        processors = {si.processor for si in prior_instances}
        if len(processors) == 1:
            # Safe under any hyper-period: re-index the arithmetic sequence.
            (processor,) = processors
            single_processor[name] = processor
            if task.wcet > _EPS:
                for index in range(hyper_period // task.period):
                    offset = (prior_instances[0].start + index * task.period) % hyper_period
                    engine.reside(processor, offset, task.wcet, name)
        else:
            # Multi-processor spread: only classified as survivor when the
            # hyper-period is unchanged, so per-instance slots carry over.
            if task.wcet > _EPS:
                for si in prior_instances:
                    engine.reside(si.processor, si.start % hyper_period, task.wcet, name)

    # Seed-and-release the displaced tasks' stale slots: this is the
    # incremental bookkeeping path (the timeline tolerates the transient
    # aliasing of a foreign-hyper-period pattern because add/remove net out).
    for name in sorted(displaced):
        if name not in prior.graph:
            continue
        for si in prior.instances_of(name):
            if si.processor not in engine.resident or si.wcet <= _EPS:
                continue
            offset = si.start % hyper_period
            engine.reside(si.processor, offset, si.wcet, name)
            engine.release(si.processor, offset, si.wcet, name)
            stats.released += 1

    processor_names = architecture.processor_names
    order_index = {name: i for i, name in enumerate(processor_names)}

    def live_intervals(processor: str, exclude: str) -> list[tuple[float, float]]:
        pieces = [
            (s, e - s)
            for s, e, owner in engine.moved[processor].intervals()
        ]
        pieces.extend(
            (s, e - s)
            for s, e, owner in engine.resident[processor].intervals()
            if owner != exclude
        )
        return pieces

    def load(processor: str) -> float:
        return engine.moved[processor].busy_time + engine.resident[processor].busy_time

    def producer_processor(name: str, index: int) -> str:
        if name in single_processor:
            return single_processor[name]
        return prior.instance(name, index).processor

    def arrival_lower_bound(name: str, target_processor: str) -> float:
        # Producer processors are always settled here: survivors keep theirs
        # and displaced producers precede their consumers in topological order.
        task = graph.task(name)
        count = hyper_period // task.period
        bound = 0.0
        for index in range(count):
            for edge in predecessors_of_instance(graph, name, index):
                producer_name, producer_index = edge.producer
                producer_task = graph.task(producer_name)
                producer_end = (
                    first_starts[producer_name]
                    + producer_index * producer_task.period
                    + producer_task.wcet
                )
                source = producer_processor(producer_name, producer_index)
                arrival = producer_end + architecture.comm_time(
                    source, target_processor, edge.data_size
                )
                bound = max(bound, arrival - index * task.period)
        return bound

    # Re-place displaced tasks in topological order of the new graph.
    placement_order = [name for name in graph.topological_order() if name in displaced]
    for name in placement_order:
        task = graph.task(name)
        count = instance_count(graph, name)
        candidates: dict[str, float] = {}
        for candidate_processor in processor_names:
            bound = arrival_lower_bound(name, candidate_processor)
            start = _sweep_earliest_start(
                bound,
                task.period,
                task.wcet,
                count,
                live_intervals(candidate_processor, exclude=name),
                hyper_period,
            )
            if start is None:
                continue
            pattern = [
                ((start + index * task.period) % hyper_period, task.wcet)
                for index in range(count)
            ]
            if engine.compatible(
                candidate_processor,
                pattern,
                include_resident=True,
                exclude=frozenset({name}),
            ):
                candidates[candidate_processor] = start
        if not candidates:
            raise InfeasibleError(
                f"Incremental repair cannot re-place task {name!r} on any processor",
                detail=name,
            )
        chosen = min(
            candidates, key=lambda p: (candidates[p], load(p), order_index[p])
        )
        start = candidates[chosen]
        first_starts[name] = start
        single_processor[name] = chosen
        if task.wcet > _EPS:
            for index in range(count):
                engine.reside(chosen, (start + index * task.period) % hyper_period, task.wcet, name)

    # Compaction: try to left-shift each displaced task on its own processor.
    for name in placement_order:
        task = graph.task(name)
        if task.wcet <= _EPS:
            continue
        count = instance_count(graph, name)
        processor = single_processor[name]
        bound = arrival_lower_bound(name, processor)
        current = first_starts[name]
        if bound >= current - _EPS:
            continue
        start = _sweep_earliest_start(
            bound,
            task.period,
            task.wcet,
            count,
            live_intervals(processor, exclude=name),
            hyper_period,
        )
        if start is None or start >= current - _EPS:
            continue
        for index in range(count):
            engine.shift(
                processor,
                (current + index * task.period) % hyper_period,
                (start + index * task.period) % hyper_period,
                task.wcet,
                name,
            )
        first_starts[name] = start
        stats.shifted += 1

    # Commit the decided moves to the moved timeline (the engine's record of
    # accepted placements) and materialise the instance list.
    instances: list[ScheduledInstance] = []
    for name in survivors:
        task = graph.task(name)
        if name in single_processor:
            processor = single_processor[name]
            for index in range(hyper_period // task.period):
                instances.append(
                    ScheduledInstance(
                        task=name,
                        index=index,
                        processor=processor,
                        start=first_starts[name] + index * task.period,
                        wcet=task.wcet,
                        memory=task.memory,
                    )
                )
        else:
            for si in prior.instances_of(name):
                instances.append(
                    ScheduledInstance(
                        task=name,
                        index=si.index,
                        processor=si.processor,
                        start=si.start,
                        wcet=task.wcet,
                        memory=task.memory,
                    )
                )
    for name in placement_order:
        task = graph.task(name)
        processor = single_processor[name]
        start = first_starts[name]
        for index in range(instance_count(graph, name)):
            offset = (start + index * task.period) % hyper_period
            if task.wcet > _EPS:
                engine.occupy(processor, offset, task.wcet, name)
                stats.occupied += 1
            instances.append(
                ScheduledInstance(
                    task=name,
                    index=index,
                    processor=processor,
                    start=start + index * task.period,
                    wcet=task.wcet,
                    memory=task.memory,
                )
            )

    schedule = Schedule(graph, architecture, instances, ())
    schedule = schedule.with_instances(
        schedule.instances, synthesize_communications(schedule)
    )
    report = check_schedule(schedule, check_memory=False)
    if not report.is_feasible:
        raise InfeasibleError(
            "Incremental repair produced an infeasible schedule: "
            + "; ".join(report.all_violations[:5]),
            detail=report.all_violations,
        )
    return schedule, stats
