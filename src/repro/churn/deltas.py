"""Typed workload deltas and the ``ChurnTimeline`` composing them.

The paper balances a *static* task set; production traffic means tasks
arriving, leaving and drifting in WCET, and processors failing.  This module
is the declarative half of the churn subsystem: four delta kinds —
:class:`AddTask`, :class:`RemoveTask`, :class:`WcetDrift`,
:class:`ProcessorLoss` — each a frozen value object that knows how to apply
itself to a ``(TaskGraph, Architecture)`` pair, composing into a
:class:`ChurnTimeline` (schema ``repro-delta/1``) with a canonical digest.

Deltas are *workload* edits, not schedule edits: applying one yields the
post-delta problem instance.  Repairing the prior schedule against that
instance is the job of :mod:`repro.churn.repair`;
:meth:`repro.api.Pipeline.rebalance` glues the two together and stamps the
``(prior fingerprint, delta digest)`` provenance pair into the resulting
``repro-run/2`` artifact — the same pair the balancing service keys its
cache on.
"""

from __future__ import annotations

import hashlib
from collections.abc import Iterator
from dataclasses import dataclass
from typing import Any, ClassVar, Mapping

from repro import jsonio
from repro.errors import ConfigurationError
from repro.model.architecture import Architecture, Medium
from repro.model.graph import TaskGraph
from repro.schemas import DELTA_SCHEMA

__all__ = [
    "DELTA_SCHEMA",
    "AddTask",
    "RemoveTask",
    "WcetDrift",
    "ProcessorLoss",
    "ChurnTimeline",
    "delta_from_dict",
]


def _require_keys(data: Mapping[str, Any], allowed: tuple[str, ...], kind: str) -> None:
    unknown = sorted(set(data) - set(allowed))
    if unknown:
        raise ConfigurationError(
            f"Unknown {kind} delta key(s) {unknown}; supported: {sorted(allowed)}"
        )


@dataclass(frozen=True, slots=True)
class AddTask:
    """A new task arrives, optionally wired to existing tasks.

    ``predecessors`` become edges ``p -> name`` and ``successors`` edges
    ``name -> s``; endpoint periods must be harmonically related to
    ``period`` (the model invariant every dependence carries).
    """

    kind: ClassVar[str] = "add_task"

    name: str
    period: int
    wcet: float
    memory: float = 0.0
    data_size: float = 1.0
    predecessors: tuple[str, ...] = ()
    successors: tuple[str, ...] = ()

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "name": self.name,
            "period": int(self.period),
            "wcet": float(self.wcet),
            "memory": float(self.memory),
            "data_size": float(self.data_size),
            "predecessors": list(self.predecessors),
            "successors": list(self.successors),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "AddTask":
        _require_keys(
            data,
            ("kind", "name", "period", "wcet", "memory", "data_size", "predecessors", "successors"),
            cls.kind,
        )
        return cls(
            name=str(data["name"]),
            period=int(data["period"]),
            wcet=float(data["wcet"]),
            memory=float(data.get("memory", 0.0)),
            data_size=float(data.get("data_size", 1.0)),
            predecessors=tuple(data.get("predecessors") or ()),
            successors=tuple(data.get("successors") or ()),
        )

    def apply(self, graph: TaskGraph, architecture: Architecture) -> tuple[TaskGraph, Architecture]:
        if self.name in graph:
            raise ConfigurationError(
                f"AddTask: a task named {self.name!r} already exists in the workload"
            )
        new_graph = graph.copy()
        new_graph.create_task(
            self.name, self.period, self.wcet, memory=self.memory, data_size=self.data_size
        )
        for producer in self.predecessors:
            new_graph.connect(producer, self.name)
        for consumer in self.successors:
            new_graph.connect(self.name, consumer)
        return new_graph, architecture


@dataclass(frozen=True, slots=True)
class RemoveTask:
    """A task departs; its incident dependences disappear with it."""

    kind: ClassVar[str] = "remove_task"

    name: str

    def to_dict(self) -> dict[str, Any]:
        return {"kind": self.kind, "name": self.name}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RemoveTask":
        _require_keys(data, ("kind", "name"), cls.kind)
        return cls(name=str(data["name"]))

    def apply(self, graph: TaskGraph, architecture: Architecture) -> tuple[TaskGraph, Architecture]:
        graph.task(self.name)  # raises ModelError when unknown
        if len(graph) == 1:
            raise ConfigurationError(
                f"RemoveTask: cannot remove {self.name!r}, the workload's last task"
            )
        tasks = [task for task in graph if task.name != self.name]
        dependences = [dep for dep in graph.dependences if self.name not in dep.key]
        return TaskGraph(tasks, dependences, name=graph.name), architecture


@dataclass(frozen=True, slots=True)
class WcetDrift:
    """A task's measured WCET drifts to a new value (still ≤ its period)."""

    kind: ClassVar[str] = "wcet_drift"

    name: str
    wcet: float

    def to_dict(self) -> dict[str, Any]:
        return {"kind": self.kind, "name": self.name, "wcet": float(self.wcet)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "WcetDrift":
        _require_keys(data, ("kind", "name", "wcet"), cls.kind)
        return cls(name=str(data["name"]), wcet=float(data["wcet"]))

    def apply(self, graph: TaskGraph, architecture: Architecture) -> tuple[TaskGraph, Architecture]:
        drifted = graph.task(self.name).with_updates(wcet=self.wcet)
        tasks = [drifted if task.name == self.name else task for task in graph]
        return TaskGraph(tasks, graph.dependences, name=graph.name), architecture


@dataclass(frozen=True, slots=True)
class ProcessorLoss:
    """A processor fails; its media memberships shrink accordingly."""

    kind: ClassVar[str] = "processor_loss"

    processor: str

    def to_dict(self) -> dict[str, Any]:
        return {"kind": self.kind, "processor": self.processor}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ProcessorLoss":
        _require_keys(data, ("kind", "processor"), cls.kind)
        return cls(processor=str(data["processor"]))

    def apply(self, graph: TaskGraph, architecture: Architecture) -> tuple[TaskGraph, Architecture]:
        architecture.processor(self.processor)  # raises ArchitectureError when unknown
        kept = [proc for proc in architecture if proc.name != self.processor]
        if not kept:
            raise ConfigurationError(
                f"ProcessorLoss: cannot lose {self.processor!r}, the last processor"
            )
        media = []
        for medium in architecture.media.values():
            connects = tuple(n for n in medium.connects if n != self.processor)
            if len(connects) >= 2:
                media.append(Medium(medium.name, connects, metadata=dict(medium.metadata)))
        return graph, Architecture(
            kept, media, comm=architecture.comm, name=architecture.name
        )


Delta = AddTask | RemoveTask | WcetDrift | ProcessorLoss

#: Registered delta kinds, keyed by their ``kind`` tag.
_DELTA_TYPES: dict[str, type[Delta]] = {
    AddTask.kind: AddTask,
    RemoveTask.kind: RemoveTask,
    WcetDrift.kind: WcetDrift,
    ProcessorLoss.kind: ProcessorLoss,
}


def delta_from_dict(data: Mapping[str, Any]) -> Delta:
    """Rebuild one delta from its serialised form (dispatch on ``kind``)."""
    if not isinstance(data, Mapping):
        raise ConfigurationError(f"Delta must be a JSON object, got {type(data).__name__}")
    kind = data.get("kind")
    delta_type = _DELTA_TYPES.get(kind)
    if delta_type is None:
        raise ConfigurationError(
            f"Unknown delta kind {kind!r}; expected one of {sorted(_DELTA_TYPES)}"
        )
    return delta_type.from_dict(data)


@dataclass(frozen=True, slots=True)
class ChurnTimeline:
    """An ordered sequence of deltas (schema ``repro-delta/1``).

    Applying a timeline folds every delta over the workload in order; the
    canonical :meth:`digest` identifies the timeline the way a config
    fingerprint identifies a pipeline — the service keys rebalance results on
    the ``(prior fingerprint, delta digest)`` pair.
    """

    deltas: tuple[Delta, ...] = ()

    def __post_init__(self) -> None:
        for delta in self.deltas:
            if type(delta) not in _DELTA_TYPES.values():
                raise ConfigurationError(
                    f"ChurnTimeline holds a non-delta entry {delta!r}"
                )

    def __len__(self) -> int:
        return len(self.deltas)

    def __iter__(self) -> Iterator[Delta]:
        return iter(self.deltas)

    @classmethod
    def of(cls, *deltas: Delta) -> "ChurnTimeline":
        """Convenience variadic constructor."""
        return cls(deltas=tuple(deltas))

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": DELTA_SCHEMA,
            "deltas": [delta.to_dict() for delta in self.deltas],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ChurnTimeline":
        jsonio.check_artifact_schema(data, "repro-delta", 1, kind="churn timeline")
        unknown = sorted(set(data) - {"schema", "deltas"})
        if unknown:
            raise ConfigurationError(
                f"Unknown churn-timeline key(s) {unknown}; supported: ['deltas', 'schema']"
            )
        return cls(deltas=tuple(delta_from_dict(entry) for entry in data.get("deltas") or ()))

    def canonical_bytes(self) -> bytes:
        """Canonical strict-JSON serialisation (same rules as config fingerprints)."""
        return jsonio.dumps(self.to_dict(), indent=None).encode("utf-8")

    def digest(self) -> str:
        """SHA-256 hex digest of :meth:`canonical_bytes` (the cache-key half)."""
        return hashlib.sha256(self.canonical_bytes()).hexdigest()

    def apply(
        self, graph: TaskGraph, architecture: Architecture
    ) -> tuple[TaskGraph, Architecture]:
        """Fold every delta over the workload, in order."""
        for delta in self.deltas:
            graph, architecture = delta.apply(graph, architecture)
        return graph, architecture


def as_timeline(delta: "Delta | ChurnTimeline") -> ChurnTimeline:
    """Coerce a single delta (or a timeline) into a :class:`ChurnTimeline`."""
    if isinstance(delta, ChurnTimeline):
        return delta
    return ChurnTimeline.of(delta)


def timeline_from_payload(data: Mapping[str, Any]) -> ChurnTimeline:
    """A timeline from either wire form.

    A dict with a ``kind`` is one serialised delta (wrapped into a
    single-entry timeline); anything else must be a serialised
    :class:`ChurnTimeline`.  This is what the service's rebalance endpoint
    and the CLI ``--delta`` loader both accept.
    """
    if not isinstance(data, Mapping):
        raise ConfigurationError(
            f"Delta payload must be a JSON object, got {type(data).__name__}"
        )
    if "kind" in data:
        return as_timeline(delta_from_dict(data))
    return ChurnTimeline.from_dict(data)
