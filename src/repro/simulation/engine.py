"""Discrete-event replay of a schedule.

The engine executes a :class:`~repro.scheduling.schedule.Schedule` over one
or more hyper-periods:

* instances are dispatched at their strictly periodic start times (scheduled
  start plus ``repetition × hyper-period``);
* an instance actually starts only once its input data has arrived and its
  processor is free — any delay beyond the scheduled start is recorded as a
  violation (the static schedule promised this would never happen);
* inter-processor transfers start when the producer completes; when medium
  contention is enabled, transfers sharing a medium are serialised, which can
  reveal optimism in the analytic fixed-``C`` model of the paper;
* the :class:`~repro.simulation.memory_tracker.MemoryTracker` follows the
  consumer-side buffer occupancy (Figure 1) and the per-processor peak memory
  is checked against the architecture's capacity.

The result object bundles the trace, the per-resource statistics and the
memory timelines; :func:`simulate` is the single entry point.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any

from repro.epsilon import EPSILON
from repro.errors import ConfigurationError
from repro.scheduling.schedule import Schedule
from repro.scheduling.unrolling import predecessors_of_instance, unrolled_instances
from repro.simulation.events import EventKind, SimEvent, Violation, ViolationKind
from repro.simulation.medium_sim import MediumResource
from repro.simulation.memory_tracker import MemoryTracker
from repro.simulation.processor_sim import ProcessorResource
from repro.simulation.trace import ExecutionRecord, SimulationTrace, TransferRecord

__all__ = ["SimulationOptions", "SimulationResult", "simulate", "replay"]

_EPS = EPSILON


@dataclass(frozen=True, slots=True)
class SimulationOptions:
    """Options of :func:`simulate`."""

    #: Number of hyper-periods to replay (the schedule repeats identically, so
    #: 1 is usually enough; 2+ exercises the repeatability condition).
    hyper_periods: int = 1
    #: Serialise transfers sharing a medium (True) or assume infinite medium
    #: capacity as the paper's analytic model does (False).
    medium_contention: bool = True
    #: Track consumer-side buffers for same-processor dependences too.
    include_local_buffers: bool = False
    #: Record individual events (disable for large campaigns to save memory).
    record_events: bool = True


#: Shared default options: one immutable instance instead of a fresh object
#: per call, so every default-option ``simulate`` observes the exact same
#: configuration and the determinism contract has a single anchor.
_DEFAULT_OPTIONS = SimulationOptions()


@dataclass(slots=True)
class SimulationResult:
    """Outcome of one simulation run."""

    schedule: Schedule
    options: SimulationOptions
    trace: SimulationTrace
    processors: dict[str, ProcessorResource]
    media: dict[str, MediumResource]
    memory: MemoryTracker
    horizon: float
    violations: list[Violation] = field(default_factory=list)

    @property
    def is_clean(self) -> bool:
        """``True`` when the replay matched the schedule with no violation."""
        return not self.violations

    @property
    def makespan(self) -> float:
        """Completion time of the last executed instance."""
        return self.trace.makespan

    def peak_memory(self) -> dict[str, float]:
        """Peak (static + buffered) memory observed on each processor."""
        return self.memory.peak_totals()

    def processor_utilization(self) -> dict[str, float]:
        """Busy fraction of each processor over the simulated horizon."""
        return {
            name: resource.utilization(self.horizon)
            for name, resource in self.processors.items()
        }

    def medium_utilization(self) -> dict[str, float]:
        """Busy fraction of each medium over the simulated horizon."""
        return {
            name: resource.utilization(self.horizon) for name, resource in self.media.items()
        }

    def summary(self) -> str:
        """Readable multi-line summary of the run."""
        lines = [self.trace.summary()]
        peaks = ", ".join(f"{k}: {v:g}" for k, v in sorted(self.peak_memory().items()))
        lines.append(f"peak memory (static + buffers): [{peaks}]")
        utils = ", ".join(
            f"{k}: {v:.0%}" for k, v in sorted(self.processor_utilization().items())
        )
        lines.append(f"processor utilisation: [{utils}]")
        return "\n".join(lines)

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe serialisation of everything the run observed.

        Used by the determinism regression test: two replays of the same
        schedule under the same options must serialise byte-identically.
        """
        return {
            "options": {
                "hyper_periods": self.options.hyper_periods,
                "medium_contention": self.options.medium_contention,
                "include_local_buffers": self.options.include_local_buffers,
                "record_events": self.options.record_events,
            },
            "horizon": self.horizon,
            "trace": self.trace.to_dict(),
            "processors": {
                name: {
                    "busy_time": resource.busy_time,
                    "executed": resource.executed,
                    "intervals": [list(entry) for entry in resource.intervals],
                }
                for name, resource in sorted(self.processors.items())
            },
            "media": {
                name: {
                    "busy_time": resource.busy_time,
                    "transfers": resource.transfers,
                    "intervals": [list(entry) for entry in resource.intervals],
                }
                for name, resource in sorted(self.media.items())
            },
            "memory": {
                name: {
                    "static": timeline.static,
                    "peak": timeline.peak,
                    "samples": [list(sample) for sample in timeline.samples],
                }
                for name, timeline in sorted(self.memory.timelines.items())
            },
        }


def simulate(schedule: Schedule, options: SimulationOptions | None = None) -> SimulationResult:
    """Replay ``schedule`` and return the full simulation result."""
    options = options or _DEFAULT_OPTIONS
    if options.hyper_periods < 1:
        raise ConfigurationError("hyper_periods must be >= 1")

    graph = schedule.graph
    architecture = schedule.architecture
    hyper_period = graph.hyper_period
    keys = unrolled_instances(graph)
    in_edges = {key: predecessors_of_instance(graph, *key) for key in keys}
    out_edges: dict[tuple[str, int], list] = {key: [] for key in keys}
    for key, edges in in_edges.items():
        for edge in edges:
            out_edges[edge.producer].append(edge)

    processors = {name: ProcessorResource(name) for name in architecture.processor_names}
    media = {
        name: MediumResource(name, contention=options.medium_contention)
        for name in architecture.media
    }
    tracker = MemoryTracker(
        architecture.processor_names,
        schedule.memory_by_processor(),
        include_local=options.include_local_buffers,
    )
    trace = SimulationTrace()

    def emit(event: SimEvent) -> None:
        if options.record_events:
            trace.add_event(event)

    completion: dict[tuple[tuple[str, int], int], float] = {}
    arrivals: dict[tuple[tuple[str, int], int], dict[tuple[str, int], float]] = {}

    # All repetitions are simulated together, interleaved by planned start
    # time: when a schedule spans more than one hyper-period, instances of the
    # next repetition legitimately execute before late instances of the
    # previous one, and processing repetitions sequentially would report
    # spurious processor-busy violations.
    pending: dict[tuple[tuple[str, int], int], int] = {}
    for repetition in range(options.hyper_periods):
        for key in keys:
            pending[(key, repetition)] = len(in_edges[key])

    def planned_start(item: tuple[tuple[str, int], int]) -> float:
        key, repetition = item
        return schedule.instance(*key).start + repetition * hyper_period

    # Ties are broken by repetition then instance key so that, when two
    # transfers request a contended medium at the same instant, the earlier
    # repetition's (more urgent) data goes first.  The ready queue is a heap
    # keyed by that exact triple: the pop order is a pure function of the
    # schedule, so two replays of the same schedule are bit-identical.
    ready: list[tuple[float, int, tuple[str, int]]] = [
        (planned_start(item), item[1], item[0])
        for item, count in pending.items()
        if count == 0
    ]
    heapq.heapify(ready)
    processed = 0
    while ready:
        _, repetition, key = heapq.heappop(ready)
        instance = schedule.instance(*key)
        planned = instance.start + repetition * hyper_period

        # Latest input-data arrival for this instance.
        data_ready = 0.0
        for edge in in_edges[key]:
            arrival = arrivals.get((key, repetition), {}).get(edge.producer, 0.0)
            data_ready = max(data_ready, arrival)

        resource = processors[instance.processor]
        processor_free = resource.free_at
        start, end = resource.execute(
            max(planned, data_ready), instance.wcet, f"{instance.label}"
        )
        completion[(key, repetition)] = end
        emit(
            SimEvent(start, EventKind.TASK_START, key[0], key[1], instance.processor, repetition)
        )
        emit(SimEvent(end, EventKind.TASK_END, key[0], key[1], instance.processor, repetition))
        trace.add_record(
            ExecutionRecord(
                task=key[0],
                index=key[1],
                repetition=repetition,
                processor=instance.processor,
                planned_start=planned,
                actual_start=start,
                end=end,
            )
        )
        if start > planned + _EPS:
            if data_ready > planned + _EPS:
                kind = ViolationKind.DATA_NOT_READY
            elif processor_free > planned + _EPS:
                kind = ViolationKind.PROCESSOR_BUSY
            else:  # pragma: no cover - defensive
                kind = ViolationKind.LATE_START
            trace.add_violation(
                Violation(
                    kind=kind,
                    time=start,
                    task=key[0],
                    index=key[1],
                    processor=instance.processor,
                    repetition=repetition,
                    amount=start - planned,
                    detail=f"started {start - planned:g} after its strict start {planned:g}",
                )
            )
        tracker.consumer_finished(end, key, repetition)

        # Emit the data produced by this instance towards its consumers.
        for edge in out_edges[key]:
            consumer = schedule.instance(*edge.consumer)
            if consumer.processor == instance.processor:
                arrival = end
                tracker.data_arrived(
                    consumer.processor, arrival, edge.consumer, repetition, edge.data_size,
                    local=True,
                )
            else:
                medium = architecture.medium_between(instance.processor, consumer.processor)
                duration = architecture.comm_time(
                    instance.processor, consumer.processor, edge.data_size
                )
                send_start, arrival = media[medium.name].transfer(
                    end, duration, edge.label
                )
                emit(
                    SimEvent(
                        send_start,
                        EventKind.MESSAGE_SEND,
                        key[0],
                        key[1],
                        instance.processor,
                        repetition,
                        detail=f"to {consumer.label} on {consumer.processor}",
                    )
                )
                emit(
                    SimEvent(
                        arrival,
                        EventKind.MESSAGE_ARRIVAL,
                        key[0],
                        key[1],
                        consumer.processor,
                        repetition,
                        detail=f"for {consumer.label}",
                    )
                )
                trace.add_transfer(
                    TransferRecord(
                        producer=key[0],
                        producer_index=key[1],
                        consumer=edge.consumer[0],
                        consumer_index=edge.consumer[1],
                        repetition=repetition,
                        source=instance.processor,
                        target=consumer.processor,
                        medium=medium.name,
                        start=send_start,
                        arrival=arrival,
                        data_size=edge.data_size,
                    )
                )
                tracker.data_arrived(
                    consumer.processor, arrival, edge.consumer, repetition, edge.data_size,
                    local=False,
                )
            arrivals.setdefault((edge.consumer, repetition), {})[key] = arrival
            pending[(edge.consumer, repetition)] -= 1
            if pending[(edge.consumer, repetition)] == 0:
                item = (edge.consumer, repetition)
                heapq.heappush(ready, (planned_start(item), repetition, edge.consumer))
        processed += 1
    if processed != len(keys) * options.hyper_periods:  # pragma: no cover - defensive
        raise ConfigurationError(
            "Simulation dead-locked: the instance dependence graph is not acyclic"
        )

    horizon = max(trace.makespan, options.hyper_periods * hyper_period)
    violations = list(trace.violations)

    # Post-run memory-capacity check.
    if architecture.has_memory_limits():
        capacity = architecture.memory_capacity
        for name, peak in tracker.peak_totals().items():
            if peak > capacity + _EPS:
                violation = Violation(
                    kind=ViolationKind.MEMORY_OVERFLOW,
                    time=horizon,
                    task="*",
                    index=0,
                    processor=name,
                    repetition=0,
                    amount=peak - capacity,
                    detail=f"peak memory {peak:g} exceeds capacity {capacity:g}",
                )
                trace.add_violation(violation)
                violations.append(violation)

    return SimulationResult(
        schedule=schedule,
        options=options,
        trace=trace,
        processors=processors,
        media=media,
        memory=tracker,
        horizon=horizon,
        violations=violations,
    )


def replay(
    schedule: Schedule,
    *,
    hyper_periods: int = 2,
    include_local_buffers: bool = False,
) -> SimulationResult:
    """Replay ``schedule`` under the *analytic* assumptions of the paper.

    This is the conformance oracle's entry point: medium contention is
    disabled (the analytic model charges a fixed communication time ``C`` and
    assumes infinite medium capacity), events are recorded, and two
    hyper-periods are replayed by default so the repeatability condition is
    exercised.  The result is a pure function of ``(schedule, arguments)``.
    """
    return simulate(
        schedule,
        SimulationOptions(
            hyper_periods=hyper_periods,
            medium_contention=False,
            include_local_buffers=include_local_buffers,
            record_events=True,
        ),
    )
