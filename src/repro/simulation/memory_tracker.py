"""Consumer-side buffer occupancy tracking (Figure 1 of the paper).

When a producer and a consumer with different periods run on different
processors, the consumer's processor must hold every sample produced since
the consumer's last execution: with a period ratio of ``n`` the buffer grows
to ``n`` samples before the consumer drains it ("the memory used to store the
data produced by the first instance of ``a`` cannot be reused by the data
produced by the second, the third and the fourth instances").

:class:`MemoryTracker` records, per processor, a step function of the buffer
occupancy over simulated time (data arrives → occupancy rises; the consuming
instance completes → the samples it consumed are freed) plus the constant
static memory of the instances placed on the processor, and reports the peak
of the sum.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["MemoryTimeline", "MemoryTracker"]


@dataclass(slots=True)
class MemoryTimeline:
    """Occupancy step-function of one processor."""

    processor: str
    static: float = 0.0
    #: (time, buffer occupancy after the change)
    samples: list[tuple[float, float]] = field(default_factory=list)
    current: float = 0.0
    peak: float = 0.0

    def change(self, time: float, delta: float) -> None:
        """Apply a buffer occupancy change at ``time``."""
        self.current = max(0.0, self.current + delta)
        self.peak = max(self.peak, self.current)
        self.samples.append((time, self.current))

    @property
    def peak_total(self) -> float:
        """Peak buffer occupancy plus the static memory of the processor."""
        return self.peak + self.static

    def occupancy_at(self, time: float) -> float:
        """Buffer occupancy at ``time`` (step function, right-continuous)."""
        value = 0.0
        for sample_time, sample_value in self.samples:
            if sample_time <= time:
                value = sample_value
            else:
                break
        return value


class MemoryTracker:
    """Tracks buffer occupancy on every processor during a simulation."""

    def __init__(
        self,
        processors: tuple[str, ...],
        static_memory: dict[str, float] | None = None,
        *,
        include_local: bool = False,
    ) -> None:
        self._timelines: dict[str, MemoryTimeline] = {
            name: MemoryTimeline(name, static=(static_memory or {}).get(name, 0.0))
            for name in processors
        }
        #: Track buffers for same-processor dependences too (normally the
        #: producer's own memory already accounts for them, so the default is
        #: to track only inter-processor buffering as in Figure 1).
        self.include_local = include_local
        #: Pending buffered items: (consumer key, repetition) -> list of sizes.
        self._pending: dict[tuple[tuple[str, int], int], list[tuple[str, float]]] = {}

    # ------------------------------------------------------------------
    def data_arrived(
        self,
        processor: str,
        time: float,
        consumer_key: tuple[str, int],
        repetition: int,
        size: float,
        *,
        local: bool = False,
    ) -> None:
        """Record the arrival of one sample destined to ``consumer_key``."""
        if local and not self.include_local:
            return
        self._timelines[processor].change(time, +size)
        self._pending.setdefault((consumer_key, repetition), []).append((processor, size))

    def consumer_finished(
        self, time: float, consumer_key: tuple[str, int], repetition: int
    ) -> None:
        """Free every sample buffered for ``consumer_key`` once it completed."""
        for processor, size in self._pending.pop((consumer_key, repetition), []):
            self._timelines[processor].change(time, -size)

    # ------------------------------------------------------------------
    @property
    def timelines(self) -> dict[str, MemoryTimeline]:
        """Per-processor occupancy timelines."""
        return dict(self._timelines)

    def peak_buffer(self, processor: str) -> float:
        """Peak buffer occupancy of one processor."""
        return self._timelines[processor].peak

    def peak_buffers(self) -> dict[str, float]:
        """Peak buffer occupancy of every processor."""
        return {name: tl.peak for name, tl in self._timelines.items()}

    def peak_totals(self) -> dict[str, float]:
        """Peak buffer + static memory of every processor."""
        return {name: tl.peak_total for name, tl in self._timelines.items()}

    def outstanding(self) -> int:
        """Number of samples still buffered (should be 0 at the end of a run)."""
        return sum(len(items) for items in self._pending.values())
