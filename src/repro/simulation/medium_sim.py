"""Shared communication medium model used by the simulator.

The analytic model of the paper charges a fixed communication time ``C`` per
inter-processor dependence and ignores contention.  The simulator can
optionally *serialise* the transfers sharing a medium (a bus carries one
message at a time), which reveals when the analytic assumption is optimistic;
the difference shows up as ``DATA_NOT_READY`` violations or increased
latenesses in the simulation report.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["MediumResource"]


@dataclass(slots=True)
class MediumResource:
    """Availability of one shared communication medium during simulation."""

    name: str
    #: When ``False`` the medium has infinite parallel capacity (the paper's
    #: analytic assumption); when ``True`` transfers are serialised.
    contention: bool = True
    #: Time at which the medium becomes free (only meaningful with contention).
    free_at: float = 0.0
    #: Accumulated transfer time.
    busy_time: float = 0.0
    #: Number of transfers carried.
    transfers: int = 0
    #: Transfer intervals (start, end, label) for Gantt rendering.
    intervals: list[tuple[float, float, str]] = field(default_factory=list)

    def transfer(self, ready: float, duration: float, label: str) -> tuple[float, float]:
        """Carry one message as soon as possible after ``ready``.

        Returns ``(start, arrival)``.
        """
        start = max(ready, self.free_at) if self.contention else ready
        arrival = start + duration
        if self.contention:
            self.free_at = arrival
        self.busy_time += duration
        self.transfers += 1
        self.intervals.append((start, arrival, label))
        return start, arrival

    def utilization(self, horizon: float) -> float:
        """Fraction of ``[0, horizon]`` the medium spent transferring."""
        if horizon <= 0:
            return 0.0
        return min(1.0, self.busy_time / horizon)
