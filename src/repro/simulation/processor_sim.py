"""Non-preemptive processor resource model used by the simulator."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ProcessorResource"]


@dataclass(slots=True)
class ProcessorResource:
    """Availability of one non-preemptive processor during simulation.

    The processor executes at most one task instance at a time; an instance
    dispatched while the processor is busy waits until the previous one
    completes (which the engine reports as a ``PROCESSOR_BUSY`` violation if
    this delays it past its strictly periodic start time).
    """

    name: str
    #: Time at which the processor becomes free.
    free_at: float = 0.0
    #: Accumulated busy time (for utilisation statistics).
    busy_time: float = 0.0
    #: Number of instances executed.
    executed: int = 0
    #: Execution intervals (start, end, label) for Gantt rendering.
    intervals: list[tuple[float, float, str]] = field(default_factory=list)

    def execute(self, ready: float, duration: float, label: str) -> tuple[float, float]:
        """Run one instance as soon as possible after ``ready``.

        Returns the ``(start, end)`` of the execution and updates the
        resource state.
        """
        start = max(ready, self.free_at)
        end = start + duration
        self.free_at = end
        self.busy_time += duration
        self.executed += 1
        self.intervals.append((start, end, label))
        return start, end

    def utilization(self, horizon: float) -> float:
        """Fraction of ``[0, horizon]`` the processor spent executing."""
        if horizon <= 0:
            return 0.0
        return min(1.0, self.busy_time / horizon)
