"""Discrete-event simulation of schedules.

* :mod:`~repro.simulation.engine` — the replay engine (:func:`simulate`);
* :mod:`~repro.simulation.events` — event and violation records;
* :mod:`~repro.simulation.processor_sim` / :mod:`~repro.simulation.medium_sim`
  — resource models;
* :mod:`~repro.simulation.memory_tracker` — Figure-1 buffer occupancy;
* :mod:`~repro.simulation.trace` — execution traces and ASCII Gantt charts.
"""

from repro.simulation.engine import SimulationOptions, SimulationResult, replay, simulate
from repro.simulation.events import EventKind, SimEvent, Violation, ViolationKind
from repro.simulation.medium_sim import MediumResource
from repro.simulation.memory_tracker import MemoryTimeline, MemoryTracker
from repro.simulation.processor_sim import ProcessorResource
from repro.simulation.trace import ExecutionRecord, SimulationTrace, TransferRecord

__all__ = [
    "EventKind",
    "ExecutionRecord",
    "MediumResource",
    "MemoryTimeline",
    "MemoryTracker",
    "ProcessorResource",
    "SimEvent",
    "SimulationOptions",
    "SimulationResult",
    "SimulationTrace",
    "TransferRecord",
    "Violation",
    "ViolationKind",
    "replay",
    "simulate",
]
