"""Execution traces and ASCII Gantt rendering of simulation runs."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.simulation.events import SimEvent, Violation

__all__ = ["ExecutionRecord", "SimulationTrace"]


@dataclass(frozen=True, slots=True)
class ExecutionRecord:
    """One executed task instance of a simulation run."""

    task: str
    index: int
    repetition: int
    processor: str
    planned_start: float
    actual_start: float
    end: float

    @property
    def lateness(self) -> float:
        """How much later than its strictly periodic start the instance ran."""
        return max(0.0, self.actual_start - self.planned_start)

    @property
    def label(self) -> str:
        """Readable identifier such as ``a#2 (rep 1)``."""
        suffix = f" (rep {self.repetition})" if self.repetition else ""
        return f"{self.task}#{self.index}{suffix}"


@dataclass(slots=True)
class SimulationTrace:
    """Time-ordered record of everything that happened during a simulation."""

    events: list[SimEvent] = field(default_factory=list)
    records: list[ExecutionRecord] = field(default_factory=list)
    violations: list[Violation] = field(default_factory=list)

    def add_event(self, event: SimEvent) -> None:
        """Append one event."""
        self.events.append(event)

    def add_record(self, record: ExecutionRecord) -> None:
        """Append one execution record."""
        self.records.append(record)

    def add_violation(self, violation: Violation) -> None:
        """Append one violation."""
        self.violations.append(violation)

    @property
    def makespan(self) -> float:
        """Completion time of the last executed instance."""
        return max((record.end for record in self.records), default=0.0)

    @property
    def max_lateness(self) -> float:
        """Largest observed start lateness."""
        return max((record.lateness for record in self.records), default=0.0)

    def records_for(self, processor: str) -> list[ExecutionRecord]:
        """Execution records of one processor, in start order."""
        return sorted(
            (record for record in self.records if record.processor == processor),
            key=lambda record: record.actual_start,
        )

    def sorted_events(self) -> list[SimEvent]:
        """Events ordered by time then kind."""
        return sorted(self.events, key=lambda event: (event.time, event.kind.value, event.task))

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def gantt(self, *, width: int = 72, processors: list[str] | None = None) -> str:
        """ASCII Gantt chart of the executed instances.

        Each processor gets one line; time is scaled so that the whole
        simulated horizon fits in ``width`` characters.  Busy slots are drawn
        with ``#`` and annotated below with the instance labels in execution
        order (the chart is meant for quick inspection, not precise reading).
        """
        horizon = self.makespan
        if horizon <= 0:
            return "(empty trace)"
        names = processors or sorted({record.processor for record in self.records})
        scale = width / horizon
        lines = [f"time 0 .. {horizon:g} ({width} columns)"]
        for name in names:
            row = [" "] * width
            labels = []
            for record in self.records_for(name):
                begin = min(width - 1, int(record.actual_start * scale))
                finish = min(width, max(begin + 1, int(record.end * scale)))
                for column in range(begin, finish):
                    row[column] = "#"
                labels.append(record.label)
            lines.append(f"{name:>6} |{''.join(row)}|")
            lines.append(f"       {', '.join(labels)}")
        return "\n".join(lines)

    def summary(self) -> str:
        """Short textual summary of the run."""
        lines = [
            f"simulated {len(self.records)} instance executions, makespan {self.makespan:g}, "
            f"max lateness {self.max_lateness:g}",
        ]
        if self.violations:
            lines.append(f"{len(self.violations)} violation(s):")
            lines.extend(f"  - {violation}" for violation in self.violations)
        else:
            lines.append("no violations")
        return "\n".join(lines)
