"""Execution traces and ASCII Gantt rendering of simulation runs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.simulation.events import SimEvent, Violation

__all__ = ["ExecutionRecord", "TransferRecord", "SimulationTrace"]


@dataclass(frozen=True, slots=True)
class ExecutionRecord:
    """One executed task instance of a simulation run."""

    task: str
    index: int
    repetition: int
    processor: str
    planned_start: float
    actual_start: float
    end: float

    @property
    def lateness(self) -> float:
        """How much later than its strictly periodic start the instance ran."""
        return max(0.0, self.actual_start - self.planned_start)

    @property
    def key(self) -> tuple[str, int]:
        """``(task, index)`` identifier (repetition excluded)."""
        return (self.task, self.index)

    @property
    def label(self) -> str:
        """Readable identifier such as ``a#2 (rep 1)``."""
        suffix = f" (rep {self.repetition})" if self.repetition else ""
        return f"{self.task}#{self.index}{suffix}"

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe form (consumed by the conformance oracle and tests)."""
        return {
            "task": self.task,
            "index": self.index,
            "repetition": self.repetition,
            "processor": self.processor,
            "planned_start": self.planned_start,
            "actual_start": self.actual_start,
            "end": self.end,
        }


@dataclass(frozen=True, slots=True)
class TransferRecord:
    """One inter-processor data transfer carried during a simulation run.

    This is the simulated counterpart of the analytic
    :class:`~repro.scheduling.schedule.CommOperation`: the conformance oracle
    matches the two sets by ``(producer, consumer)`` instance keys and
    compares the start/arrival times, so records are always captured (they
    are not gated by ``SimulationOptions.record_events``).
    """

    producer: str
    producer_index: int
    consumer: str
    consumer_index: int
    repetition: int
    source: str
    target: str
    medium: str
    #: Time the medium actually started carrying the message.
    start: float
    #: Time the data became available on the target processor.
    arrival: float
    data_size: float

    @property
    def producer_key(self) -> tuple[str, int]:
        """``(task, index)`` of the producing instance."""
        return (self.producer, self.producer_index)

    @property
    def consumer_key(self) -> tuple[str, int]:
        """``(task, index)`` of the consuming instance."""
        return (self.consumer, self.consumer_index)

    @property
    def label(self) -> str:
        """Readable identifier such as ``a#1 -> b#0 (rep 1)``."""
        suffix = f" (rep {self.repetition})" if self.repetition else ""
        return f"{self.producer}#{self.producer_index} -> {self.consumer}#{self.consumer_index}{suffix}"

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe form (consumed by the conformance oracle and tests)."""
        return {
            "producer": self.producer,
            "producer_index": self.producer_index,
            "consumer": self.consumer,
            "consumer_index": self.consumer_index,
            "repetition": self.repetition,
            "source": self.source,
            "target": self.target,
            "medium": self.medium,
            "start": self.start,
            "arrival": self.arrival,
            "data_size": self.data_size,
        }


@dataclass(slots=True)
class SimulationTrace:
    """Time-ordered record of everything that happened during a simulation."""

    events: list[SimEvent] = field(default_factory=list)
    records: list[ExecutionRecord] = field(default_factory=list)
    transfers: list[TransferRecord] = field(default_factory=list)
    violations: list[Violation] = field(default_factory=list)

    def add_event(self, event: SimEvent) -> None:
        """Append one event."""
        self.events.append(event)

    def add_record(self, record: ExecutionRecord) -> None:
        """Append one execution record."""
        self.records.append(record)

    def add_transfer(self, transfer: TransferRecord) -> None:
        """Append one inter-processor transfer record."""
        self.transfers.append(transfer)

    def add_violation(self, violation: Violation) -> None:
        """Append one violation."""
        self.violations.append(violation)

    @property
    def makespan(self) -> float:
        """Completion time of the last executed instance."""
        return max((record.end for record in self.records), default=0.0)

    @property
    def max_lateness(self) -> float:
        """Largest observed start lateness."""
        return max((record.lateness for record in self.records), default=0.0)

    def records_for(self, processor: str) -> list[ExecutionRecord]:
        """Execution records of one processor, in start order."""
        return sorted(
            (record for record in self.records if record.processor == processor),
            key=lambda record: record.actual_start,
        )

    def records_by_key(self) -> dict[tuple[str, int, int], list[ExecutionRecord]]:
        """Execution records grouped by ``(task, index, repetition)``.

        A correct replay holds exactly one record per key; the conformance
        oracle uses the list form to detect duplicated or missing executions
        instead of assuming them away.
        """
        grouped: dict[tuple[str, int, int], list[ExecutionRecord]] = {}
        for record in self.records:
            grouped.setdefault((record.task, record.index, record.repetition), []).append(record)
        return grouped

    def busy_intervals(self) -> dict[str, list[tuple[float, float, str]]]:
        """Per-processor executed ``(start, end, label)`` intervals, in time order.

        This is the simulated counterpart of the analytic
        :meth:`~repro.scheduling.schedule.Schedule.busy_intervals`.
        """
        intervals: dict[str, list[tuple[float, float, str]]] = {}
        for record in self.records:
            intervals.setdefault(record.processor, []).append(
                (record.actual_start, record.end, record.label)
            )
        for pieces in intervals.values():
            pieces.sort()
        return intervals

    def sorted_events(self) -> list[SimEvent]:
        """Events ordered by time then kind."""
        return sorted(self.events, key=lambda event: (event.time, event.kind.value, event.task))

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe serialisation of the full trace.

        Two replays of the same schedule under the same options must produce
        byte-identical serialisations — the determinism contract of
        :func:`~repro.simulation.engine.simulate`, pinned by the test suite.
        """
        return {
            "records": [record.to_dict() for record in self.records],
            "transfers": [transfer.to_dict() for transfer in self.transfers],
            "events": [
                {
                    "time": event.time,
                    "kind": event.kind.value,
                    "task": event.task,
                    "index": event.index,
                    "processor": event.processor,
                    "repetition": event.repetition,
                    "detail": event.detail,
                }
                for event in self.events
            ],
            "violations": [
                {
                    "kind": violation.kind.value,
                    "time": violation.time,
                    "task": violation.task,
                    "index": violation.index,
                    "processor": violation.processor,
                    "repetition": violation.repetition,
                    "amount": violation.amount,
                    "detail": violation.detail,
                }
                for violation in self.violations
            ],
        }

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def gantt(self, *, width: int = 72, processors: list[str] | None = None) -> str:
        """ASCII Gantt chart of the executed instances.

        Each processor gets one line; time is scaled so that the whole
        simulated horizon fits in ``width`` characters.  Busy slots are drawn
        with ``#`` and annotated below with the instance labels in execution
        order (the chart is meant for quick inspection, not precise reading).
        """
        horizon = self.makespan
        if horizon <= 0:
            return "(empty trace)"
        names = processors or sorted({record.processor for record in self.records})
        scale = width / horizon
        lines = [f"time 0 .. {horizon:g} ({width} columns)"]
        for name in names:
            row = [" "] * width
            labels = []
            for record in self.records_for(name):
                begin = min(width - 1, int(record.actual_start * scale))
                finish = min(width, max(begin + 1, int(record.end * scale)))
                for column in range(begin, finish):
                    row[column] = "#"
                labels.append(record.label)
            lines.append(f"{name:>6} |{''.join(row)}|")
            lines.append(f"       {', '.join(labels)}")
        return "\n".join(lines)

    def summary(self) -> str:
        """Short textual summary of the run."""
        lines = [
            f"simulated {len(self.records)} instance executions, makespan {self.makespan:g}, "
            f"max lateness {self.max_lateness:g}",
        ]
        if self.violations:
            lines.append(f"{len(self.violations)} violation(s):")
            lines.extend(f"  - {violation}" for violation in self.violations)
        else:
            lines.append("no violations")
        return "\n".join(lines)
