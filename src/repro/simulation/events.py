"""Event records produced by the discrete-event simulator.

The simulator replays a :class:`~repro.scheduling.schedule.Schedule` over one
or more hyper-periods and emits a flat, time-ordered list of events: task
starts and completions, message transfers, and constraint violations (a task
that could not start at its scheduled time because its data or its processor
was not ready).  The events are consumed by the trace renderer, the memory
tracker and the experiment harness.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["EventKind", "SimEvent", "ViolationKind", "Violation"]


class EventKind(enum.Enum):
    """Kinds of simulation events."""

    TASK_START = "task_start"
    TASK_END = "task_end"
    MESSAGE_SEND = "message_send"
    MESSAGE_ARRIVAL = "message_arrival"


@dataclass(frozen=True, slots=True)
class SimEvent:
    """One timestamped simulator event.

    Attributes
    ----------
    time:
        Simulated time of the event.
    kind:
        The event kind.
    task / index:
        Task instance concerned (producer instance for message events).
    processor:
        Processor on which the event happens (target processor for message
        arrivals, source processor for message sends).
    repetition:
        Hyper-period repetition index (0 for the first hyper-period).
    detail:
        Free-form human readable complement (e.g. the consumer of a message).
    """

    time: float
    kind: EventKind
    task: str
    index: int
    processor: str
    repetition: int = 0
    detail: str = ""

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        extra = f" ({self.detail})" if self.detail else ""
        return (
            f"t={self.time:g} {self.kind.value} {self.task}#{self.index} "
            f"on {self.processor} rep={self.repetition}{extra}"
        )


class ViolationKind(enum.Enum):
    """Kinds of runtime constraint violations detected by the simulator."""

    #: The instance started later than its strictly periodic start time.
    LATE_START = "late_start"
    #: The data of a producer arrived after the consumer's scheduled start.
    DATA_NOT_READY = "data_not_ready"
    #: The processor was still busy at the instance's scheduled start time.
    PROCESSOR_BUSY = "processor_busy"
    #: A processor's memory capacity was exceeded at run time.
    MEMORY_OVERFLOW = "memory_overflow"


@dataclass(frozen=True, slots=True)
class Violation:
    """A constraint violation observed while replaying the schedule."""

    kind: ViolationKind
    time: float
    task: str
    index: int
    processor: str
    repetition: int
    amount: float = 0.0
    detail: str = ""

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.kind.value}: {self.task}#{self.index} on {self.processor} at t={self.time:g} "
            f"(rep {self.repetition}, amount {self.amount:g}) {self.detail}".rstrip()
        )
