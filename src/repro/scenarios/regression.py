"""Frozen ``regression/*`` scenarios mined by the adversarial search driver.

Every counterexample the hunt loop (:mod:`repro.search`) finds, minimises
and decides to keep is *frozen* here: one entry of the versioned
``repro-regression/1`` registry file (``regression.json``, shipped inside
the package) pinning the exact :class:`~repro.workloads.spec.WorkloadSpec`
— parameters **and** seed — together with the objective it tripped, the
measured score/evidence and the full ``repro-search/1`` provenance record
(seed chain, mutation lineage, score history, minimiser trace).

Importing :mod:`repro.scenarios` registers each entry as a frozen
:class:`~repro.scenarios.registry.ScenarioSpec` (one grid cell per preset,
no seed stamping), so the differential sweep and the conformance gate cover
every frozen counterexample forever, automatically — a scenario found by
the hunt once is a permanent regression test from then on.  The golden test
layer (``tests/test_regression_scenarios.py``) additionally replays each
entry through its objective and pins the recorded verdict field for field.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping

from repro import jsonio
from repro.errors import ConfigurationError
from repro.scenarios.registry import ScenarioScale, ScenarioSpec, register_scenario_spec
from repro.schemas import REGRESSION_SCHEMA
from repro.workloads.spec import WorkloadSpec

__all__ = [
    "REGRESSION_SCHEMA",
    "REGRESSION_PREFIX",
    "REGISTRY_PATH",
    "FrozenScenario",
    "load_frozen",
    "register_frozen",
    "frozen_names",
    "frozen_info",
]

#: Registry-name prefix of every frozen scenario.
REGRESSION_PREFIX = "regression/"

#: The packaged registry the sweep/conformance gates pick up automatically.
REGISTRY_PATH = Path(__file__).with_name("regression.json")


@dataclass(frozen=True, slots=True)
class FrozenScenario:
    """One frozen counterexample (an entry of ``regression.json``)."""

    #: Registry key (``regression/<objective>-<fingerprint8>``).
    name: str
    #: Search objective the workload trips (:mod:`repro.search.objectives`).
    objective: str
    title: str
    #: Objective score measured when the counterexample was frozen.
    score: float
    #: Firing threshold the hunt ran with.
    threshold: float
    #: Structural fingerprint of the generated workload
    #: (:func:`~repro.scenarios.registry.workload_digest`) — the dedup key.
    fingerprint: str
    #: The pinned workload (parameters *and* seed).
    spec: WorkloadSpec
    #: Objective evidence at freeze time (pinned field-for-field by the
    #: golden regression test).
    evidence: dict[str, Any]
    #: Full ``repro-search/1`` counterexample record (seed chain, lineage,
    #: score history, minimiser trace).
    provenance: dict[str, Any]

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "objective": self.objective,
            "title": self.title,
            "score": float(self.score),
            "threshold": float(self.threshold),
            "fingerprint": self.fingerprint,
            "spec": self.spec.to_dict(),
            "evidence": dict(self.evidence),
            "provenance": dict(self.provenance),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FrozenScenario":
        missing = [key for key in ("name", "objective", "spec") if key not in data]
        if missing:
            raise ConfigurationError(
                f"Frozen scenario entry is missing required key(s) {missing}"
            )
        name = str(data["name"])
        if not name.startswith(REGRESSION_PREFIX):
            raise ConfigurationError(
                f"Frozen scenario {name!r} must be named {REGRESSION_PREFIX}..."
            )
        return cls(
            name=name,
            objective=str(data["objective"]),
            title=str(data.get("title", "")),
            score=float(data.get("score", 0.0)),
            threshold=float(data.get("threshold", 0.0)),
            fingerprint=str(data.get("fingerprint", "")),
            spec=WorkloadSpec.from_dict(data["spec"]),
            evidence=dict(data.get("evidence") or {}),
            provenance=dict(data.get("provenance") or {}),
        )

    def scenario_spec(self) -> ScenarioSpec:
        """The frozen registry entry (builder ignores the grid scale)."""
        pinned = self.spec

        def _builder(scale: ScenarioScale) -> WorkloadSpec:  # noqa: ARG001 - pinned
            return pinned

        return ScenarioSpec(
            name=self.name,
            title=self.title or f"frozen counterexample of objective {self.objective!r}",
            description=(
                f"mined by repro-lb hunt (objective {self.objective}, score "
                f"{self.score:g} >= threshold {self.threshold:g}); pinned workload "
                f"fingerprint {self.fingerprint}"
            ),
            tags=("regression", self.objective),
            builder=_builder,
            frozen=True,
        )


def load_frozen(path: str | Path | None = None) -> tuple[FrozenScenario, ...]:
    """Parse a frozen-scenario registry file (missing file = empty registry)."""
    path = REGISTRY_PATH if path is None else Path(path)
    if not path.exists():
        return ()
    data = jsonio.load_artifact(path, "repro-regression", 1, kind="regression registry")
    entries = [FrozenScenario.from_dict(entry) for entry in data.get("scenarios") or []]
    names = [entry.name for entry in entries]
    duplicates = sorted({name for name in names if names.count(name) > 1})
    if duplicates:
        raise ConfigurationError(
            f"Regression registry {path} contains duplicate scenario name(s) "
            f"{duplicates}"
        )
    return tuple(entries)


_REGISTERED: dict[str, FrozenScenario] = {}


def register_frozen(path: str | Path | None = None) -> tuple[str, ...]:
    """Register every frozen scenario of ``path`` into the scenario registry."""
    registered: list[str] = []
    for entry in load_frozen(path):
        register_scenario_spec(entry.scenario_spec())
        _REGISTERED[entry.name] = entry
        registered.append(entry.name)
    return tuple(registered)


def frozen_names() -> tuple[str, ...]:
    """Names of the frozen scenarios registered in this process, sorted."""
    return tuple(sorted(_REGISTERED))


def frozen_info(name: str) -> FrozenScenario:
    """The frozen entry registered under ``name``."""
    try:
        return _REGISTERED[name]
    except KeyError:
        raise ConfigurationError(
            f"Unknown frozen scenario {name!r}; registered: {list(frozen_names())}"
        ) from None
