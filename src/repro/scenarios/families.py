"""The registered workload scenario families.

Each family stakes out one region of the input space the ROADMAP's "as many
scenarios as you can imagine" goal demands and the E1–E8 configs never
exercised: graph-shape extremes (wide/deep layered DAGs, fork–join fan-out,
sensor-fusion fan-in), period-structure extremes (deep harmonic ladders,
co-prime ``(base, ratio)`` ladders, hyper-period-straining rate spreads),
pressure ramps (utilisation, memory) and degenerate platforms (a single
processor, a zero-cost interconnect).

A family builder maps a :class:`~repro.scenarios.registry.ScenarioScale` to
a seed-less :class:`~repro.workloads.spec.WorkloadSpec`; the registry stamps
the per-cell derived seed and label on top (see
:meth:`~repro.scenarios.registry.ScenarioSpec.workload_spec`).  Keep every
family feasible under the ``tiny`` scale — the registry-completeness test
generates, schedules and balances every cell there.

The model constrains dependent tasks to harmonically related periods, so
"co-prime period mixes" appear as ladders whose base and ratio are co-prime
primes: the periods stay pairwise harmonic, but the hyper-period divides
into the maximum number of fast-task instances the ladder allows — the
dimension that actually strains the steady-state machinery.
"""

from __future__ import annotations

from repro.scenarios.registry import ScenarioScale, register_scenario
from repro.workloads.spec import GraphShape, WorkloadSpec

__all__: list[str] = []


@register_scenario(
    "layered_baseline",
    "random layered DAG at the default knobs",
    "the E-config region of the space, kept as the sweep's reference family",
    tags=("layered", "baseline"),
)
def _layered_baseline(scale: ScenarioScale) -> WorkloadSpec:
    return WorkloadSpec(
        task_count=scale.task_count,
        processor_count=scale.processor_count,
        shape=GraphShape.LAYERED,
    )


@register_scenario(
    "layered_wide",
    "wide, shallow layered DAG (2 layers, dense edges)",
    "maximal per-layer parallelism and fan-in; stresses block construction",
    tags=("layered", "shape-extreme"),
)
def _layered_wide(scale: ScenarioScale) -> WorkloadSpec:
    return WorkloadSpec(
        task_count=scale.task_count,
        processor_count=scale.processor_count,
        shape=GraphShape.LAYERED,
        layer_count=2,
        edge_probability=0.5,
    )


@register_scenario(
    "layered_deep",
    "deep, narrow layered DAG (sparse edges)",
    "long dependence chains; stresses precedence windows and idle insertion",
    tags=("layered", "shape-extreme"),
)
def _layered_deep(scale: ScenarioScale) -> WorkloadSpec:
    return WorkloadSpec(
        task_count=scale.task_count,
        processor_count=scale.processor_count,
        shape=GraphShape.LAYERED,
        layer_count=max(4, scale.task_count // 3),
        edge_probability=0.15,
    )


@register_scenario(
    "pipeline_multirate",
    "parallel multi-rate signal-processing pipelines",
    "per-chain harmonic slow-down along the data path (the paper's Figure-1 "
    "consumption pattern)",
    tags=("pipeline", "multi-rate"),
)
def _pipeline_multirate(scale: ScenarioScale) -> WorkloadSpec:
    return WorkloadSpec(
        task_count=scale.task_count,
        processor_count=scale.processor_count,
        shape=GraphShape.PIPELINE,
        period_levels=3,
    )


@register_scenario(
    "fork_join_scatter",
    "fork-join scatter/gather application",
    "a fast source scattering to parallel branches gathered by a slower join; "
    "stresses fan-out placement and cross-processor gathers",
    tags=("fork-join", "multi-rate"),
)
def _fork_join_scatter(scale: ScenarioScale) -> WorkloadSpec:
    return WorkloadSpec(
        task_count=scale.task_count,
        processor_count=scale.processor_count,
        shape=GraphShape.FORK_JOIN,
    )


@register_scenario(
    "sensor_fusion_fanin",
    "multi-rate sensor fusion (many fast producers, one slow consumer)",
    "the paper's motivating buffering pattern: a fusion stage consuming "
    "several samples of each of its fast producers",
    tags=("sensor-fusion", "multi-rate"),
)
def _sensor_fusion_fanin(scale: ScenarioScale) -> WorkloadSpec:
    return WorkloadSpec(
        task_count=scale.task_count,
        processor_count=scale.processor_count,
        shape=GraphShape.SENSOR_FUSION,
    )


@register_scenario(
    "harmonic_tall",
    "deep harmonic period ladder (4 levels, ratio 2)",
    "many distinct rates with small pairwise ratios; the harmonic side of "
    "the harmonic-versus-co-prime period axis",
    tags=("layered", "periods"),
)
def _harmonic_tall(scale: ScenarioScale) -> WorkloadSpec:
    return WorkloadSpec(
        task_count=scale.task_count,
        processor_count=scale.processor_count,
        shape=GraphShape.LAYERED,
        base_period=10,
        period_levels=4,
        period_ratio=2,
    )


@register_scenario(
    "prime_ladder",
    "co-prime (base, ratio) period ladder (base 7, ratio 3)",
    "periods 7 and 21 — co-prime base and ratio keep the rates harmonic (as "
    "the model requires) while the fast rate divides the hyper-period into "
    "the most instances the ladder allows",
    tags=("layered", "periods", "adversarial"),
)
def _prime_ladder(scale: ScenarioScale) -> WorkloadSpec:
    return WorkloadSpec(
        task_count=scale.task_count,
        processor_count=scale.processor_count,
        shape=GraphShape.LAYERED,
        base_period=7,
        period_ratio=3,
        period_levels=2,
    )


@register_scenario(
    "hyper_strain",
    "hyper-period-straining rate spread (base 4, ratio 5, 3 levels)",
    "a 25x spread between the fastest and slowest rate: fast tasks repeat 25 "
    "times per hyper-period, stressing instance unrolling and the circular "
    "occupancy machinery (utilisation is kept low — the spread, not the "
    "load, is the point, and non-preemptive chains across it fail fast)",
    tags=("layered", "periods", "adversarial"),
)
def _hyper_strain(scale: ScenarioScale) -> WorkloadSpec:
    return WorkloadSpec(
        task_count=scale.task_count,
        processor_count=scale.processor_count,
        shape=GraphShape.LAYERED,
        base_period=4,
        period_ratio=5,
        period_levels=3,
        utilization=0.08,
    )


@register_scenario(
    "utilization_ramp",
    "high-pressure utilisation (45% of the platform)",
    "the upper end of what non-preemptive strict periodicity tolerates; "
    "unschedulable draws are expected and recorded, not errors",
    tags=("layered", "pressure"),
)
def _utilization_ramp(scale: ScenarioScale) -> WorkloadSpec:
    return WorkloadSpec(
        task_count=scale.task_count,
        processor_count=scale.processor_count,
        shape=GraphShape.LAYERED,
        utilization=0.45,
    )


@register_scenario(
    "memory_pressure",
    "heavy, high-variance per-task memory demands",
    "memory range 20-120 versus the default 1-10; stresses the memory side "
    "of every balancing policy without touching the timing problem",
    tags=("pipeline", "pressure"),
)
def _memory_pressure(scale: ScenarioScale) -> WorkloadSpec:
    return WorkloadSpec(
        task_count=scale.task_count,
        processor_count=scale.processor_count,
        shape=GraphShape.PIPELINE,
        memory_range=(20.0, 120.0),
    )


@register_scenario(
    "single_processor",
    "degenerate single-processor platform",
    "no placement freedom at all: every balancer must degrade to a no-op "
    "without crashing or making the schedule worse",
    tags=("degenerate",),
)
def _single_processor(scale: ScenarioScale) -> WorkloadSpec:
    return WorkloadSpec(
        task_count=scale.task_count,
        processor_count=1,
        shape=GraphShape.LAYERED,
        utilization=0.5,
    )


@register_scenario(
    "zero_communication",
    "zero-cost interconnect (latency 0, empty payloads)",
    "degenerate communication model: migration is free, so balancing "
    "decisions are driven purely by load/memory terms",
    tags=("degenerate",),
)
def _zero_communication(scale: ScenarioScale) -> WorkloadSpec:
    return WorkloadSpec(
        task_count=scale.task_count,
        processor_count=scale.processor_count,
        shape=GraphShape.LAYERED,
        comm_latency=0.0,
        data_size_range=(0.0, 0.0),
    )
