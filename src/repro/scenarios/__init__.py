"""Scenario-matrix subsystem: registered workload families + differential sweep.

* :mod:`~repro.scenarios.registry` — the string-keyed scenario registry
  (:class:`ScenarioSpec`, :data:`SCENARIO_PRESETS`, grid fingerprinting);
* :mod:`~repro.scenarios.families` — the registered families (importing this
  package registers them);
* :mod:`~repro.scenarios.sweep` — the differential sweep harness and its
  ``repro-sweep/1`` artifact (CLI front-end: ``repro-lb sweep``);
* :mod:`~repro.scenarios.regression` — frozen ``regression/*`` counter-
  examples mined by ``repro-lb hunt`` (importing this package registers
  them alongside the synthetic families);
* :mod:`~repro.scenarios.churn` — churn families (arrival bursts, WCET
  drift, processor loss) and the differential churn grid replaying
  :meth:`repro.api.Pipeline.rebalance` against the from-scratch oracle
  (CLI front-end: ``repro-lb rebalance --grid``).  Churn families live in
  their own registry so the workload-scenario grid fingerprint is
  unaffected.
"""

from repro.scenarios import families as _families  # noqa: F401 - registers the families
from repro.scenarios.registry import (
    SCENARIO_PRESETS,
    ScenarioScale,
    ScenarioSpec,
    available_scenarios,
    grid_fingerprint,
    grid_specs,
    register_scenario,
    register_scenario_spec,
    scenario_info,
    scenario_scale,
    workload_digest,
)
from repro.scenarios.regression import (
    REGRESSION_SCHEMA,
    FrozenScenario,
    frozen_info,
    frozen_names,
    load_frozen,
    register_frozen,
)

register_frozen()  # the packaged regression.json, if any
from repro.scenarios.sweep import (
    NEVER_WORSE_BALANCERS,
    SWEEP_SCHEMA,
    SweepArtifact,
    SweepCell,
    execute_cell,
    plan_sweep,
    run_sweep,
    sweep_pipeline_configs,
)
from repro.scenarios.churn import (
    CHURN_SCHEMA,
    ChurnGridArtifact,
    ChurnScenarioSpec,
    available_churn_scenarios,
    churn_grid_cells,
    churn_scenario_info,
    execute_churn_cell,
    register_churn_scenario,
    run_churn_grid,
)

__all__ = [
    "CHURN_SCHEMA",
    "NEVER_WORSE_BALANCERS",
    "REGRESSION_SCHEMA",
    "SCENARIO_PRESETS",
    "SWEEP_SCHEMA",
    "ChurnGridArtifact",
    "ChurnScenarioSpec",
    "FrozenScenario",
    "ScenarioScale",
    "ScenarioSpec",
    "SweepArtifact",
    "SweepCell",
    "available_churn_scenarios",
    "available_scenarios",
    "churn_grid_cells",
    "churn_scenario_info",
    "execute_cell",
    "execute_churn_cell",
    "frozen_info",
    "frozen_names",
    "grid_fingerprint",
    "grid_specs",
    "load_frozen",
    "plan_sweep",
    "register_churn_scenario",
    "register_frozen",
    "register_scenario",
    "run_churn_grid",
    "register_scenario_spec",
    "run_sweep",
    "scenario_info",
    "scenario_scale",
    "sweep_pipeline_configs",
    "workload_digest",
]
