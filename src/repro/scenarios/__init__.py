"""Scenario-matrix subsystem: registered workload families + differential sweep.

* :mod:`~repro.scenarios.registry` — the string-keyed scenario registry
  (:class:`ScenarioSpec`, :data:`SCENARIO_PRESETS`, grid fingerprinting);
* :mod:`~repro.scenarios.families` — the registered families (importing this
  package registers them);
* :mod:`~repro.scenarios.sweep` — the differential sweep harness and its
  ``repro-sweep/1`` artifact (CLI front-end: ``repro-lb sweep``).
"""

from repro.scenarios import families as _families  # noqa: F401 - registers the families
from repro.scenarios.registry import (
    SCENARIO_PRESETS,
    ScenarioScale,
    ScenarioSpec,
    available_scenarios,
    grid_fingerprint,
    grid_specs,
    register_scenario,
    scenario_info,
    scenario_scale,
    workload_digest,
)
from repro.scenarios.sweep import (
    NEVER_WORSE_BALANCERS,
    SWEEP_SCHEMA,
    SweepArtifact,
    SweepCell,
    execute_cell,
    plan_sweep,
    run_sweep,
    sweep_pipeline_configs,
)

__all__ = [
    "NEVER_WORSE_BALANCERS",
    "SCENARIO_PRESETS",
    "SWEEP_SCHEMA",
    "ScenarioScale",
    "ScenarioSpec",
    "SweepArtifact",
    "SweepCell",
    "available_scenarios",
    "execute_cell",
    "grid_fingerprint",
    "grid_specs",
    "plan_sweep",
    "register_scenario",
    "run_sweep",
    "scenario_info",
    "scenario_scale",
    "sweep_pipeline_configs",
    "workload_digest",
]
