"""Scenario-matrix subsystem: registered workload families + differential sweep.

* :mod:`~repro.scenarios.registry` — the string-keyed scenario registry
  (:class:`ScenarioSpec`, :data:`SCENARIO_PRESETS`, grid fingerprinting);
* :mod:`~repro.scenarios.families` — the registered families (importing this
  package registers them);
* :mod:`~repro.scenarios.sweep` — the differential sweep harness and its
  ``repro-sweep/1`` artifact (CLI front-end: ``repro-lb sweep``);
* :mod:`~repro.scenarios.regression` — frozen ``regression/*`` counter-
  examples mined by ``repro-lb hunt`` (importing this package registers
  them alongside the synthetic families).
"""

from repro.scenarios import families as _families  # noqa: F401 - registers the families
from repro.scenarios.registry import (
    SCENARIO_PRESETS,
    ScenarioScale,
    ScenarioSpec,
    available_scenarios,
    grid_fingerprint,
    grid_specs,
    register_scenario,
    register_scenario_spec,
    scenario_info,
    scenario_scale,
    workload_digest,
)
from repro.scenarios.regression import (
    REGRESSION_SCHEMA,
    FrozenScenario,
    frozen_info,
    frozen_names,
    load_frozen,
    register_frozen,
)

register_frozen()  # the packaged regression.json, if any
from repro.scenarios.sweep import (
    NEVER_WORSE_BALANCERS,
    SWEEP_SCHEMA,
    SweepArtifact,
    SweepCell,
    execute_cell,
    plan_sweep,
    run_sweep,
    sweep_pipeline_configs,
)

__all__ = [
    "NEVER_WORSE_BALANCERS",
    "REGRESSION_SCHEMA",
    "SCENARIO_PRESETS",
    "SWEEP_SCHEMA",
    "FrozenScenario",
    "ScenarioScale",
    "ScenarioSpec",
    "SweepArtifact",
    "SweepCell",
    "available_scenarios",
    "execute_cell",
    "frozen_info",
    "frozen_names",
    "grid_fingerprint",
    "grid_specs",
    "load_frozen",
    "plan_sweep",
    "register_frozen",
    "register_scenario",
    "register_scenario_spec",
    "run_sweep",
    "scenario_info",
    "scenario_scale",
    "sweep_pipeline_configs",
    "workload_digest",
]
