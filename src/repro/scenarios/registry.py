"""String-keyed registry of parameterised workload scenario families.

Mirrors :mod:`repro.api.balancers` and :mod:`repro.bench.registry`: a
*scenario* is one named, parameterised region of the workload input space —
fork–join fan-out, multi-rate pipelines, co-prime period ladders, degenerate
single-processor platforms, ... — registered as a :class:`ScenarioSpec`.
Each spec turns a sweep preset (``tiny``/``quick``/``full``) and a seed index
into a concrete :class:`~repro.workloads.spec.WorkloadSpec`:

* the **scale** (task count, processor count, seeds per family) comes from
  :data:`SCENARIO_PRESETS`, so every family sweeps the same grid;
* the **seed** is derived from ``(family root seed, index)`` through
  :func:`~repro.workloads.seeding.derive_seed`, so cell ``(family, index)``
  is one pure function of its coordinates — reproducible whatever worker
  count or execution order generates the grid;
* the family **root seed** is itself a stable hash of the family name, so
  two families never share a stream even at equal indices.

The differential sweep harness (:mod:`repro.scenarios.sweep`) enumerates
this registry; :func:`grid_fingerprint` condenses an entire scenario grid
into one digest the test suite pins as a golden value.
"""

from __future__ import annotations

import hashlib
from collections.abc import Callable, Iterator
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.workloads.generator import generate_workload
from repro.workloads.seeding import derive_seed
from repro.workloads.spec import Workload, WorkloadSpec

__all__ = [
    "SCENARIO_PRESETS",
    "ScenarioScale",
    "ScenarioSpec",
    "available_scenarios",
    "grid_fingerprint",
    "grid_specs",
    "register_scenario",
    "register_scenario_spec",
    "scenario_info",
    "scenario_scale",
    "workload_digest",
]


@dataclass(frozen=True, slots=True)
class ScenarioScale:
    """Grid scale of one sweep preset (shared by every scenario family)."""

    #: Task count of every generated workload (families may shrink it, e.g.
    #: the degenerate single-processor platform, but never grow it).
    task_count: int
    #: Processor count of the platform.
    processor_count: int
    #: Seed indices swept per family (``0 .. seeds-1``).
    seeds: int


#: Sweep presets, in increasing cost order (mirrors the experiment presets).
SCENARIO_PRESETS: dict[str, ScenarioScale] = {
    "tiny": ScenarioScale(task_count=12, processor_count=2, seeds=2),
    "quick": ScenarioScale(task_count=40, processor_count=4, seeds=3),
    "full": ScenarioScale(task_count=96, processor_count=8, seeds=5),
}


def scenario_scale(preset: str) -> ScenarioScale:
    """Scale of ``preset`` (raises :class:`ConfigurationError` if unknown)."""
    try:
        return SCENARIO_PRESETS[preset]
    except KeyError:
        raise ConfigurationError(
            f"Unknown scenario preset {preset!r}; expected one of "
            f"{sorted(SCENARIO_PRESETS)}"
        ) from None


def _root_seed(name: str) -> int:
    """Stable per-family root seed (a hash of the family name, not ``hash()``)."""
    return int.from_bytes(hashlib.sha256(name.encode()).digest()[:4], "big")


@dataclass(frozen=True, slots=True)
class ScenarioSpec:
    """One registered workload family."""

    #: Registry key (label-safe; frozen regression scenarios use the
    #: ``regression/`` prefix).
    name: str
    #: One-line title shown by ``repro-lb list``.
    title: str
    description: str
    #: Free-form classification (``"degenerate"``, ``"multi-rate"``, ...).
    tags: tuple[str, ...]
    #: Family body: turn a grid scale into the family's (seed-less) spec.
    builder: Callable[[ScenarioScale], WorkloadSpec]
    #: Frozen regression scenarios pin one exact workload (parameters *and*
    #: seed): the builder ignores the grid scale, no seed is stamped, and the
    #: family exposes exactly one grid cell per preset.
    frozen: bool = False

    def cell_count(self, preset: str) -> int:
        """Seed indices this family contributes to the ``preset`` grid."""
        scale = scenario_scale(preset)
        return 1 if self.frozen else scale.seeds

    def workload_spec(self, preset: str, index: int) -> WorkloadSpec:
        """Concrete workload spec of grid cell ``(self, preset, index)``."""
        if index < 0:
            raise ConfigurationError(f"Seed index must be non-negative, got {index}")
        scale = scenario_scale(preset)
        if self.frozen:
            if index >= 1:
                raise ConfigurationError(
                    f"Frozen scenario {self.name!r} pins exactly one workload; "
                    f"seed index {index} does not exist"
                )
            return self.builder(scale)
        seed = derive_seed(_root_seed(self.name), index)
        return self.builder(scale).with_updates(
            seed=seed, label=f"{self.name}-{preset}-i{index}"
        )

    def workload(self, preset: str, index: int) -> Workload:
        """Generate the workload of grid cell ``(self, preset, index)``."""
        return generate_workload(self.workload_spec(preset, index))


_REGISTRY: dict[str, ScenarioSpec] = {}


def register_scenario_spec(spec: ScenarioSpec) -> ScenarioSpec:
    """Register a fully built :class:`ScenarioSpec` (the frozen-scenario path)."""
    if spec.name in _REGISTRY:
        raise ConfigurationError(f"Scenario {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec
    return spec


def register_scenario(
    name: str, title: str, description: str, tags: tuple[str, ...] = ()
) -> Callable[[Callable[[ScenarioScale], WorkloadSpec]], Callable[[ScenarioScale], WorkloadSpec]]:
    """Register a scenario family under ``name`` (decorator form)."""

    def decorator(
        builder: Callable[[ScenarioScale], WorkloadSpec],
    ) -> Callable[[ScenarioScale], WorkloadSpec]:
        register_scenario_spec(
            ScenarioSpec(
                name=name, title=title, description=description, tags=tags, builder=builder
            )
        )
        return builder

    return decorator


def available_scenarios() -> tuple[str, ...]:
    """Registered scenario names, sorted."""
    return tuple(sorted(_REGISTRY))


def scenario_info(name: str) -> ScenarioSpec:
    """Registry entry of ``name`` (raises :class:`ConfigurationError` if absent)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"Unknown scenario {name!r}; registered: {list(available_scenarios())}"
        ) from None


def grid_specs(
    preset: str, scenarios: tuple[str, ...] | None = None
) -> Iterator[tuple[ScenarioSpec, int, WorkloadSpec]]:
    """Enumerate the ``scenario x seed-index`` grid of ``preset``, in name order.

    Frozen regression scenarios contribute exactly one cell each (their
    workload is pinned, so extra seed indices would replay the same problem).
    """
    scenario_scale(preset)
    names = available_scenarios() if scenarios is None else scenarios
    for name in names:
        spec = scenario_info(name)
        for index in range(spec.cell_count(preset)):
            yield spec, index, spec.workload_spec(preset, index)


def workload_digest(workload: Workload) -> str:
    """Short structural digest of a generated workload.

    Covers everything the schedulers consume — tasks (period, WCET, memory,
    data size), dependence edges and the platform — so two workloads share a
    digest exactly when they are the same problem instance.
    """
    graph = workload.graph
    hasher = hashlib.sha256()
    for task in sorted(graph, key=lambda t: t.name):
        hasher.update(
            f"{task.name}|{task.period}|{task.wcet}|{task.memory}|{task.data_size}\n".encode()
        )
    for dependence in sorted(
        graph.dependences, key=lambda d: (d.producer, d.consumer)
    ):
        hasher.update(f"{dependence.producer}->{dependence.consumer}\n".encode())
    architecture = workload.architecture
    hasher.update(
        f"M={len(architecture)}|cap={architecture.memory_capacity}"
        f"|lat={architecture.comm.latency}\n".encode()
    )
    return hasher.hexdigest()[:16]


def grid_fingerprint(preset: str, scenarios: tuple[str, ...] | None = None) -> str:
    """One digest over every workload of the ``preset`` grid (golden-pinnable)."""
    hasher = hashlib.sha256()
    for spec, index, workload_spec in grid_specs(preset, scenarios):
        workload = generate_workload(workload_spec)
        hasher.update(
            f"{spec.name}#{index}:{workload_spec.seed}:{workload_digest(workload)}\n".encode()
        )
    return hasher.hexdigest()[:16]
