"""Churn scenario families and the differential churn grid.

Mirrors the workload-scenario registry (:mod:`repro.scenarios.registry`) for
*churn*: each family pairs a base workload builder with a seeded delta-
timeline builder, and the grid harness replays every cell through
:meth:`repro.api.Pipeline.rebalance` with two oracles per delta step:

* **differential** — the from-scratch pipeline on the post-delta workload
  must reach the same feasibility verdict as the incremental rebalance;
* **conformance** — the repaired schedule must replay through the discrete-
  event simulator with zero divergences (PR 5's oracle).

The rebalance-vs-scratch cost ratio is recorded as a metric datum (the
paper heuristic re-optimises globally, the repair only re-places the
displaced set, so parity is not a hard invariant the way the verdict is).

Churn families live in their **own** registry so the workload-scenario
grid fingerprint — pinned as a golden value by the test suite — stays
untouched.  Results persist as ``repro-churn/1`` artifacts
(``CHURN_<stamp>.json``), consumed by the CI ``churn-smoke`` job via
``repro-lb rebalance --grid``.
"""

from __future__ import annotations

import random
from collections.abc import Callable, Iterator
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Mapping

from repro import jsonio
from repro.api.config import (
    PipelineConfig,
    ReportStage,
    VerifyStage,
    WorkloadStage,
)
from repro.api.pipeline import Pipeline, RunResult
from repro.churn.deltas import (
    AddTask,
    ChurnTimeline,
    ProcessorLoss,
    RemoveTask,
    WcetDrift,
)
from repro.errors import ConfigurationError, InfeasibleError, ReproError
from repro.model.architecture import Architecture
from repro.model.graph import TaskGraph
from repro.scenarios.registry import ScenarioScale, _root_seed, scenario_scale
from repro.schemas import CHURN_SCHEMA
from repro.workloads.seeding import derive_seed
from repro.workloads.spec import WorkloadSpec

__all__ = [
    "CHURN_SCHEMA",
    "ChurnScenarioSpec",
    "ChurnGridArtifact",
    "available_churn_scenarios",
    "churn_scenario_info",
    "churn_grid_cells",
    "execute_churn_cell",
    "run_churn_grid",
    "register_churn_scenario",
]

#: Timeline builder: ``(balanced graph, architecture, rng) -> ChurnTimeline``.
TimelineBuilder = Callable[[TaskGraph, Architecture, random.Random], ChurnTimeline]


@dataclass(frozen=True, slots=True)
class ChurnScenarioSpec:
    """One registered churn family: base workload + seeded delta timeline."""

    name: str
    title: str
    description: str
    tags: tuple[str, ...]
    #: Base workload of the cell (same contract as ``ScenarioSpec.builder``).
    base: Callable[[ScenarioScale], WorkloadSpec]
    #: Deltas to replay against the *balanced* prior schedule's workload.
    timeline: TimelineBuilder

    def workload_spec(self, preset: str, index: int) -> WorkloadSpec:
        """Concrete base workload of grid cell ``(self, preset, index)``."""
        if index < 0:
            raise ConfigurationError(f"Seed index must be non-negative, got {index}")
        scale = scenario_scale(preset)
        seed = derive_seed(_root_seed(f"churn/{self.name}"), index)
        return self.base(scale).with_updates(
            seed=seed, label=f"churn-{self.name}-{preset}-i{index}"
        )

    def build_timeline(
        self, graph: TaskGraph, architecture: Architecture, preset: str, index: int
    ) -> ChurnTimeline:
        """Deterministic delta timeline of grid cell ``(self, preset, index)``."""
        rng = random.Random(derive_seed(_root_seed(f"churn-deltas/{self.name}"), index))
        return self.timeline(graph, architecture, rng)


_CHURN_REGISTRY: dict[str, ChurnScenarioSpec] = {}


def register_churn_scenario(spec: ChurnScenarioSpec) -> ChurnScenarioSpec:
    """Register a churn family (raises on duplicate names)."""
    if spec.name in _CHURN_REGISTRY:
        raise ConfigurationError(f"Churn scenario {spec.name!r} is already registered")
    _CHURN_REGISTRY[spec.name] = spec
    return spec


def available_churn_scenarios() -> tuple[str, ...]:
    """Registered churn family names, sorted."""
    return tuple(sorted(_CHURN_REGISTRY))


def churn_scenario_info(name: str) -> ChurnScenarioSpec:
    """Registry entry of ``name`` (raises :class:`ConfigurationError` if absent)."""
    try:
        return _CHURN_REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"Unknown churn scenario {name!r}; registered: "
            f"{list(available_churn_scenarios())}"
        ) from None


# ----------------------------------------------------------------------
# Built-in families
# ----------------------------------------------------------------------
def _fresh_name(graph: TaskGraph, rng: random.Random, prefix: str = "churn") -> str:
    while True:
        candidate = f"{prefix}{rng.randrange(1000)}"
        if candidate not in graph:
            return candidate


def _existing_period(graph: TaskGraph, rng: random.Random) -> int:
    return int(rng.choice(graph.distinct_periods()))


def _small_wcet(period: int, rng: random.Random) -> float:
    return round(max(0.01, rng.uniform(0.02, 0.08) * period), 2)


def _arrival_burst(
    graph: TaskGraph, architecture: Architecture, rng: random.Random
) -> ChurnTimeline:
    deltas = []
    names = list(graph.task_names)
    for _ in range(3):
        period = _existing_period(graph, rng)
        name = _fresh_name(graph, rng)
        while any(d.name == name for d in deltas if isinstance(d, AddTask)):
            name = f"{name}x"
        predecessors: tuple[str, ...] = ()
        if rng.random() < 0.5:
            # Wire the newcomer below an existing task of the same period
            # (harmonic by construction).
            same_period = [n for n in names if graph.task(n).period == period]
            if same_period:
                predecessors = (rng.choice(same_period),)
        deltas.append(
            AddTask(
                name=name,
                period=period,
                wcet=_small_wcet(period, rng),
                predecessors=predecessors,
            )
        )
    return ChurnTimeline.of(*deltas)


def _departure_wave(
    graph: TaskGraph, architecture: Architecture, rng: random.Random
) -> ChurnTimeline:
    count = min(2, len(graph) - 1)
    victims = rng.sample(list(graph.task_names), count)
    return ChurnTimeline.of(*(RemoveTask(name) for name in victims))


def _wcet_drift(
    graph: TaskGraph, architecture: Architecture, rng: random.Random
) -> ChurnTimeline:
    count = min(3, len(graph))
    deltas = []
    for name in rng.sample(list(graph.task_names), count):
        task = graph.task(name)
        drifted = round(
            min(max(0.01, task.wcet * rng.uniform(0.6, 1.4)), float(task.period)), 3
        )
        deltas.append(WcetDrift(name=name, wcet=drifted))
    return ChurnTimeline.of(*deltas)


def _processor_loss(
    graph: TaskGraph, architecture: Architecture, rng: random.Random
) -> ChurnTimeline:
    victim = rng.choice(list(architecture.processor_names))
    return ChurnTimeline.of(ProcessorLoss(processor=victim))


def _mixed_churn(
    graph: TaskGraph, architecture: Architecture, rng: random.Random
) -> ChurnTimeline:
    period = _existing_period(graph, rng)
    drifting = rng.choice(list(graph.task_names))
    task = graph.task(drifting)
    victims = [n for n in graph.task_names if n != drifting]
    return ChurnTimeline.of(
        AddTask(
            name=_fresh_name(graph, rng),
            period=period,
            wcet=_small_wcet(period, rng),
        ),
        WcetDrift(
            name=drifting,
            wcet=round(min(max(0.01, task.wcet * 0.8), float(task.period)), 3),
        ),
        RemoveTask(name=rng.choice(victims)),
    )


def _base(scale: ScenarioScale, *, utilization: float = 0.30) -> WorkloadSpec:
    return WorkloadSpec(
        task_count=scale.task_count,
        processor_count=scale.processor_count,
        utilization=utilization,
    )


register_churn_scenario(
    ChurnScenarioSpec(
        name="arrival_burst",
        title="burst of new task arrivals",
        description="three new tasks arrive at existing rates, some wired below "
        "same-period producers",
        tags=("churn", "arrival"),
        base=lambda scale: _base(scale),
        timeline=_arrival_burst,
    )
)
register_churn_scenario(
    ChurnScenarioSpec(
        name="departure_wave",
        title="wave of task departures",
        description="two random tasks leave the workload (edges disappear with them)",
        tags=("churn", "departure"),
        base=lambda scale: _base(scale),
        timeline=_departure_wave,
    )
)
register_churn_scenario(
    ChurnScenarioSpec(
        name="wcet_drift",
        title="measured WCET drift",
        description="three tasks drift to 0.6-1.4x their WCET (clamped to the period)",
        tags=("churn", "drift"),
        base=lambda scale: _base(scale),
        timeline=_wcet_drift,
    )
)
register_churn_scenario(
    ChurnScenarioSpec(
        name="processor_loss",
        title="processor failure",
        description="one processor fails; a low-utilization workload must fold "
        "onto the survivors",
        tags=("churn", "failure"),
        base=lambda scale: _base(scale, utilization=0.10),
        timeline=_processor_loss,
    )
)
register_churn_scenario(
    ChurnScenarioSpec(
        name="mixed_churn",
        title="mixed arrival + drift + departure",
        description="one arrival, one WCET shrink and one departure, in sequence",
        tags=("churn", "mixed"),
        base=lambda scale: _base(scale),
        timeline=_mixed_churn,
    )
)


# ----------------------------------------------------------------------
# Grid harness
# ----------------------------------------------------------------------
def churn_grid_cells(
    preset: str, scenarios: tuple[str, ...] | None = None
) -> Iterator[tuple[ChurnScenarioSpec, int]]:
    """Enumerate the ``family x seed-index`` churn grid of ``preset``."""
    scale = scenario_scale(preset)
    names = available_churn_scenarios() if scenarios is None else scenarios
    for name in names:
        spec = churn_scenario_info(name)
        for index in range(scale.seeds):
            yield spec, index


def _scratch_verdict(
    config: PipelineConfig, graph: TaskGraph, architecture: Architecture
) -> tuple[bool, float | None]:
    """Feasibility verdict + makespan of the from-scratch differential oracle."""
    scratch_config = PipelineConfig(
        workload=WorkloadStage(kind="provided"),
        schedule=config.schedule,
        balance=config.balance,
        verify=VerifyStage(enabled=True, check_memory=False),
        report=ReportStage(enabled=False),
        label=f"{config.label}-scratch",
    )
    try:
        result = Pipeline(scratch_config, graph=graph, architecture=architecture).run()
    except InfeasibleError:
        return False, None
    makespan = result.metrics.get("makespan_after")
    return bool(result.feasible), float(makespan) if makespan is not None else None


def execute_churn_cell(
    name: str,
    preset: str,
    index: int,
    *,
    balancer: str = "paper",
    conformance_hyper_periods: int = 2,
) -> dict[str, Any]:
    """Replay one churn cell, one delta at a time, under both oracles.

    Returns a JSON-safe record: per-step verdicts, repair stats, cost ratios
    and the list of findings (empty = the cell is clean).  Execution errors
    are captured as ``status: "error"`` records, never raised.
    """
    from repro.conformance import ConformanceOptions, check_conformance

    spec = churn_scenario_info(name)
    workload_spec = spec.workload_spec(preset, index)
    record: dict[str, Any] = {
        "scenario": name,
        "preset": preset,
        "index": index,
        "seed": workload_spec.seed,
        "status": "ok",
        "steps": [],
        "findings": [],
    }
    try:
        config = PipelineConfig.synthetic(workload_spec, balancer=balancer)
        pipeline = Pipeline(config)
        try:
            prior = pipeline.run()
        except InfeasibleError:
            prior = None
        if prior is None or not prior.feasible:
            record["status"] = "prior_infeasible"
            return record
        timeline = spec.build_timeline(
            prior.balanced_schedule.graph,
            prior.balanced_schedule.architecture,
            preset,
            index,
        )
        record["delta_digest"] = timeline.digest()
        current: RunResult = prior
        for position, delta in enumerate(timeline):
            rebalanced = pipeline.rebalance(current, delta)
            post_graph, post_architecture = delta.apply(
                current.balanced_schedule.graph,
                current.balanced_schedule.architecture,
            )
            scratch_feasible, scratch_makespan = _scratch_verdict(
                config, post_graph, post_architecture
            )
            rebalance_feasible = bool(rebalanced.feasible)
            step: dict[str, Any] = {
                "position": position,
                "delta": delta.to_dict(),
                "rebalance_feasible": rebalance_feasible,
                "scratch_feasible": scratch_feasible,
                "fallback": rebalanced.rebalance["stats"]["fallback"],
                "stats": rebalanced.rebalance["stats"],
                "makespan_rebalance": rebalanced.metrics.get("makespan_after"),
                "makespan_scratch": scratch_makespan,
            }
            if (
                scratch_makespan
                and rebalanced.metrics.get("makespan_after")
                and scratch_makespan > 0
            ):
                step["cost_ratio"] = round(
                    float(rebalanced.metrics["makespan_after"]) / scratch_makespan, 4
                )
            if rebalance_feasible != scratch_feasible:
                record["findings"].append(
                    f"{name}#{index} step {position}: verdict divergence — "
                    f"rebalance={rebalance_feasible} scratch={scratch_feasible} "
                    f"({delta.kind})"
                )
            if rebalance_feasible and rebalanced.balanced_schedule is not None:
                report = check_conformance(
                    rebalanced.balanced_schedule,
                    ConformanceOptions(hyper_periods=conformance_hyper_periods),
                    label=f"{name}#{index}@{position}",
                )
                step["conforms"] = report.conforms
                step["divergences"] = report.divergences
                if not report.conforms:
                    record["findings"].append(
                        f"{name}#{index} step {position}: conformance divergence — "
                        f"{report.divergences} finding(s) ({delta.kind})"
                    )
            record["steps"].append(step)
            if not rebalance_feasible:
                # The workload became genuinely unschedulable (both oracles
                # agree, or a finding was just recorded): stop the chain.
                break
            current = rebalanced
    except ReproError as error:
        record["status"] = "error"
        record["error"] = f"{type(error).__name__}: {error}"
        record["findings"].append(f"{name}#{index}: execution error — {error}")
    return record


@dataclass(slots=True)
class ChurnGridArtifact:
    """One churn-grid replay (schema ``repro-churn/1``)."""

    preset: str
    created: str
    balancer: str = "paper"
    scenarios: list[str] = field(default_factory=list)
    cells: list[dict[str, Any]] = field(default_factory=list)
    findings: list[str] = field(default_factory=list)
    environment: dict[str, Any] = field(default_factory=dict)
    schema: str = CHURN_SCHEMA

    @classmethod
    def now(cls, preset: str, **kwargs: Any) -> "ChurnGridArtifact":
        created = datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ")
        return cls(preset=preset, created=created, **kwargs)

    @property
    def ok(self) -> bool:
        """``True`` when no cell produced a finding."""
        return not self.findings

    @property
    def counts(self) -> dict[str, int]:
        steps = sum(len(cell.get("steps") or []) for cell in self.cells)
        return {
            "cells": len(self.cells),
            "steps": steps,
            "findings": len(self.findings),
        }

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": self.schema,
            "preset": self.preset,
            "created": self.created,
            "balancer": self.balancer,
            "scenarios": list(self.scenarios),
            "counts": self.counts,
            "cells": [dict(cell) for cell in self.cells],
            "findings": list(self.findings),
            "environment": dict(self.environment),
            "ok": self.ok,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ChurnGridArtifact":
        jsonio.check_artifact_schema(data, "repro-churn", 1, kind="churn-grid artifact")
        return cls(
            preset=str(data.get("preset", "")),
            created=str(data.get("created", "")),
            balancer=str(data.get("balancer", "paper")),
            scenarios=list(data.get("scenarios") or []),
            cells=[dict(entry) for entry in data.get("cells") or []],
            findings=list(data.get("findings") or []),
            environment=dict(data.get("environment") or {}),
            schema=str(data.get("schema", CHURN_SCHEMA)),
        )

    def save(self, target: str | Path) -> Path:
        """Write the artifact (atomically, as strict JSON).

        A directory target receives the conventional ``CHURN_<timestamp>.json``
        name; any other target is treated as the exact file path.
        """
        target = Path(target)
        try:
            if target.is_dir() or not target.suffix:
                target.mkdir(parents=True, exist_ok=True)
                stamp = self.created.replace("-", "").replace(":", "")
                target = target / f"CHURN_{stamp}.json"
            else:
                target.parent.mkdir(parents=True, exist_ok=True)
            jsonio.write_json_atomic(target, self.to_dict())
        except OSError as error:
            raise ConfigurationError(
                f"Cannot write churn-grid artifact to {target}: {error}"
            ) from None
        return target

    @classmethod
    def load(cls, path: str | Path) -> "ChurnGridArtifact":
        """Read an artifact back from disk."""
        return cls.from_dict(
            jsonio.load_artifact(path, "repro-churn", 1, kind="churn-grid artifact")
        )

    def render(self) -> str:
        """Per-cell summary plus findings (what the CLI prints)."""
        counts = self.counts
        lines = [
            f"churn grid preset={self.preset} balancer={self.balancer}: "
            f"{counts['cells']} cell(s), {counts['steps']} delta step(s), "
            f"{counts['findings']} finding(s)"
        ]
        for cell in self.cells:
            steps = cell.get("steps") or []
            fallbacks = sum(1 for s in steps if s.get("fallback"))
            ratios = [s["cost_ratio"] for s in steps if s.get("cost_ratio")]
            ratio_note = (
                f" cost-ratio avg {sum(ratios) / len(ratios):.3f}" if ratios else ""
            )
            lines.append(
                f"  {cell['scenario']}#{cell['index']}: {cell['status']}, "
                f"{len(steps)} step(s), {fallbacks} fallback(s){ratio_note}"
            )
        if self.findings:
            lines.append("findings:")
            lines.extend(f"  - {finding}" for finding in self.findings)
        else:
            lines.append("all rebalance steps match the from-scratch oracle and conform")
        return "\n".join(lines)


def run_churn_grid(
    preset: str,
    scenarios: tuple[str, ...] | None = None,
    *,
    balancer: str = "paper",
    conformance_hyper_periods: int = 2,
) -> ChurnGridArtifact:
    """Replay the full churn grid of ``preset`` and collect the artifact."""
    from repro.bench.artifact import environment_fingerprint

    names = available_churn_scenarios() if scenarios is None else tuple(scenarios)
    for name in names:
        churn_scenario_info(name)  # validate before running anything
    artifact = ChurnGridArtifact.now(
        preset=preset,
        balancer=balancer,
        scenarios=list(names),
        environment=environment_fingerprint(),
    )
    for spec, index in churn_grid_cells(preset, names):
        cell = execute_churn_cell(
            spec.name,
            preset,
            index,
            balancer=balancer,
            conformance_hyper_periods=conformance_hyper_periods,
        )
        artifact.cells.append(cell)
        artifact.findings.extend(cell["findings"])
    return artifact
