"""Differential sweep over the scenario x seed x balancer grid.

The sweep is the layer that turns scenario diversity into a *gate*: it runs
every registered balancer over every registered scenario family (at one
:data:`~repro.scenarios.registry.SCENARIO_PRESETS` scale) through the
unified :mod:`repro.api` pipeline, cross-checks a set of invariants on every
run, and collects violations as structured **findings** instead of crashing
on the first anomaly.  A clean sweep exits zero; any finding fails the build
(the CI job runs ``repro-lb sweep --preset tiny``).

Invariants checked per successful run
-------------------------------------
``verdict_consistency``
    The feasibility verdict the pipeline reports must match a from-scratch
    :func:`~repro.scheduling.feasibility.check_schedule` of the balanced
    schedule, and must agree with the violation list being empty.
``paper_feasible``
    The paper heuristic's retry ladder guarantees a feasible result whenever
    the initial schedule was feasible (its last rung returns the initial
    schedule unchanged) — an infeasible paper outcome is a bug, not a datum.
``never_worse``
    Strategies carrying the never-worse-than-initial guarantee (the paper
    heuristic's safety ladder, and ``no_balancing`` by definition) must not
    increase the makespan.
``oracle``
    On sampled paper cells the balancer runs with ``cross_check=True``: every
    steady-state query is answered by the incremental conflict engine *and*
    the from-scratch reserved-pattern oracle, and any divergence raises —
    which the sweep records as an ``oracle`` finding.
``conformance``
    On cells sampled by ``conformance_stride`` (the opt-in deep tier;
    ``repro-lb conform`` runs it on every cell) the balanced schedule is
    replayed in the discrete-event simulator and the trace is structurally
    diffed against the analytical model (:mod:`repro.conformance`); a
    replay/model contradiction (``consistent`` false in the
    ``repro-conformance/1`` report) is a finding carrying the first
    divergence.
``artifact_roundtrip``
    The run's ``repro-run/1`` artifact must survive strict JSON
    (``allow_nan=False``) and :meth:`~repro.api.pipeline.RunResult.from_dict`.

Cells whose *initial* scheduling is infeasible (expected for the
high-utilisation families) are recorded with status ``unschedulable`` — an
explicit datum, not a finding.  Any other exception becomes an ``exception``
finding carrying the traceback, so nothing is silently lost.

The result is a versioned ``repro-sweep/1`` artifact (:class:`SweepArtifact`)
mirroring ``repro-bench/1``: grid echo, per-cell records, aggregated
findings, environment fingerprint.  :func:`sweep_pipeline_configs` exposes
the same grid as serialised pipeline configs so
:func:`~repro.experiments.campaign.run_pipeline_campaign` can fan a sweep
out over the campaign process pool.
"""

from __future__ import annotations

import json
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Mapping

from repro import jsonio
from repro.api.config import (
    BalanceStage,
    PipelineConfig,
    ReportStage,
    VerifyStage,
    WorkloadStage,
)
from repro.api.pipeline import Pipeline, RunResult
from repro.bench.artifact import environment_fingerprint
from repro.errors import ConfigurationError, InfeasibleError, SchedulingError
from repro.scheduling.feasibility import check_schedule
from repro.scheduling.periodic_intervals import EPSILON
from repro.schemas import SWEEP_SCHEMA

__all__ = [
    "SWEEP_SCHEMA",
    "NEVER_WORSE_BALANCERS",
    "SweepCell",
    "SweepArtifact",
    "plan_sweep",
    "execute_cell",
    "run_sweep",
    "sweep_pipeline_configs",
]

#: Strategies guaranteed never to produce a worse makespan than the initial
#: schedule: the paper heuristic (its retry ladder falls back to a no-op) and
#: the identity assignment.  The timing-blind baselines carry no such
#: guarantee — holding them to it would manufacture findings by design.
NEVER_WORSE_BALANCERS = frozenset({"paper", "no_balancing"})

#: Makespan comparisons share the scheduling substrate's resolution.
_EPS = EPSILON


@dataclass(frozen=True, slots=True)
class SweepCell:
    """One grid cell: a scenario seed index run under one balancer."""

    scenario: str
    #: Seed index within the scenario family (the actual seed is derived).
    index: int
    balancer: str
    preset: str
    #: Run the paper heuristic in differential-oracle mode (``cross_check``).
    oracle: bool = False
    #: Run the cell's balanced schedule through the simulation-conformance
    #: oracle (the sweep's opt-in deep tier).
    conformance: bool = False
    #: Hyper-periods each conformance replay covers.
    conformance_hyper_periods: int = 2


def plan_sweep(
    preset: str = "tiny",
    scenarios: tuple[str, ...] | None = None,
    balancers: tuple[str, ...] | None = None,
    *,
    oracle_stride: int = 3,
    conformance_stride: int = 0,
    conformance_hyper_periods: int = 2,
) -> tuple[SweepCell, ...]:
    """Expand the grid into cells, in deterministic (scenario, index, balancer) order.

    Every ``oracle_stride``-th paper cell runs in differential-oracle mode
    (``0`` disables oracle sampling).  Every ``conformance_stride``-th cell —
    whatever its balancer — additionally replays its balanced schedule in the
    simulation-conformance oracle (``0``, the default, keeps the deep tier
    off; ``1`` is what ``repro-lb conform`` uses).  Scenario and balancer
    names are validated up front so a typo fails before any cell runs.
    """
    from repro.api.balancers import available_balancers, balancer_info
    from repro.scenarios.registry import available_scenarios, scenario_info, scenario_scale

    scenario_scale(preset)
    scenario_names = available_scenarios() if scenarios is None else tuple(scenarios)
    balancer_names = available_balancers() if balancers is None else tuple(balancers)
    for name in scenario_names:
        scenario_info(name)
    for name in balancer_names:
        balancer_info(name)
    if oracle_stride < 0:
        raise ConfigurationError(f"oracle_stride must be >= 0, got {oracle_stride}")
    if conformance_stride < 0:
        raise ConfigurationError(
            f"conformance_stride must be >= 0, got {conformance_stride}"
        )
    if conformance_hyper_periods < 1:
        raise ConfigurationError(
            f"conformance_hyper_periods must be >= 1, got {conformance_hyper_periods}"
        )

    cells: list[SweepCell] = []
    paper_cells = 0
    for scenario in scenario_names:
        for index in range(scenario_info(scenario).cell_count(preset)):
            for balancer in balancer_names:
                oracle = False
                if balancer == "paper" and oracle_stride:
                    oracle = paper_cells % oracle_stride == 0
                    paper_cells += 1
                conformance = bool(
                    conformance_stride and len(cells) % conformance_stride == 0
                )
                cells.append(
                    SweepCell(
                        scenario,
                        index,
                        balancer,
                        preset,
                        oracle,
                        conformance,
                        conformance_hyper_periods,
                    )
                )
    return tuple(cells)


def _cell_config(cell: SweepCell) -> PipelineConfig:
    """Declarative pipeline config of one cell (reports disabled: the sweep
    reads metrics, not prose)."""
    from repro.scenarios.registry import scenario_info

    workload_spec = scenario_info(cell.scenario).workload_spec(cell.preset, cell.index)
    params: dict[str, Any] = {}
    if cell.balancer == "paper":
        params["policy"] = "ratio"
        if cell.oracle:
            params["cross_check"] = True
    return PipelineConfig(
        workload=WorkloadStage(kind="spec", spec=workload_spec),
        balance=BalanceStage(balancer=cell.balancer, params=params),
        verify=VerifyStage(
            enabled=True,
            check_memory=False,
            conformance=cell.conformance,
            conformance_hyper_periods=cell.conformance_hyper_periods,
        ),
        report=ReportStage(enabled=False),
        label=f"{workload_spec.label}-{cell.balancer}",
    )


def _check_invariants(cell: SweepCell, result: RunResult) -> list[dict[str, str]]:
    """Cross-check every invariant on one successful run."""
    findings: list[dict[str, str]] = []

    def finding(invariant: str, detail: str) -> None:
        findings.append({"invariant": invariant, "detail": detail})

    # -- verdict consistency ------------------------------------------------
    independent = check_schedule(result.balanced_schedule, check_memory=False)
    if independent.is_feasible != result.feasible:
        finding(
            "verdict_consistency",
            f"pipeline verdict feasible={result.feasible} but a from-scratch "
            f"check says {independent.is_feasible} "
            f"({len(independent.all_violations)} violation(s))",
        )
    if result.feasible != (not result.violations):
        finding(
            "verdict_consistency",
            f"feasible={result.feasible} disagrees with the violation list "
            f"({len(result.violations)} entr(y/ies))",
        )

    # -- guarantees of specific strategies ----------------------------------
    if cell.balancer == "paper" and result.feasible is False:
        finding(
            "paper_feasible",
            "the paper heuristic returned an infeasible schedule despite its "
            f"retry ladder (safety_level={result.safety_level!r})",
        )
    if cell.balancer in NEVER_WORSE_BALANCERS:
        before = float(result.metrics["makespan_before"])
        after = float(result.metrics["makespan_after"])
        if after > before + _EPS:
            finding(
                "never_worse",
                f"makespan increased {before:g} -> {after:g} under "
                f"{cell.balancer!r}",
            )
        if cell.balancer == "no_balancing" and abs(after - before) > _EPS:
            finding(
                "never_worse",
                f"identity assignment changed the makespan {before:g} -> {after:g}",
            )

    # -- simulation conformance (the opt-in deep tier) ----------------------
    if cell.conformance:
        report = result.conformance or {}
        if not report.get("consistent", False):
            first = report.get("first_divergence") or {}
            where = (
                f" first divergence at t={first.get('time', 0.0):g} "
                f"[{first.get('check', '?')}] {first.get('where', '')}: "
                f"{first.get('detail', '')}"
                if first
                else ""
            )
            finding(
                "conformance",
                "the discrete-event replay contradicts the analytical model "
                f"({report.get('divergences', '?')} divergence(s), "
                f"analytical feasible={report.get('analytical_feasible')}, "
                f"replay clean={report.get('simulation_clean')});{where}",
            )

    # -- artifact round trip -------------------------------------------------
    try:
        payload = json.loads(jsonio.dumps(result.to_dict()))
        RunResult.from_dict(payload)
    except Exception as error:  # noqa: BLE001 - any failure here is the finding
        finding(
            "artifact_roundtrip",
            f"RunResult does not survive strict JSON: {type(error).__name__}: {error}",
        )
    return findings


def execute_cell(cell: SweepCell) -> dict[str, Any]:
    """Run one cell and return its record (never raises)."""
    from repro.scenarios.registry import scenario_info

    started = time.perf_counter()
    record: dict[str, Any] = {
        "scenario": cell.scenario,
        "index": cell.index,
        "balancer": cell.balancer,
        "preset": cell.preset,
        "oracle": cell.oracle,
        "conformance": cell.conformance,
        "status": "ok",
        "findings": [],
    }
    try:
        record["seed"] = scenario_info(cell.scenario).workload_spec(
            cell.preset, cell.index
        ).seed
        result = Pipeline(_cell_config(cell)).run()
    except InfeasibleError as error:
        # The initial scheduler is the only stage that raises this: the
        # balancers either guarantee feasibility (paper ladder) or report
        # verdicts.  An unschedulable draw is a datum, not a finding.
        record["status"] = "unschedulable"
        record["detail"] = str(error)
    except Exception as error:  # noqa: BLE001 - a crashed cell must not kill the sweep
        record["status"] = "error"
        # Only a cross-check divergence is an oracle finding; any other crash
        # in an oracle-mode cell is an ordinary exception (misattributing it
        # would send triage after the conflict engine for unrelated bugs).
        divergence = (
            cell.oracle
            and isinstance(error, SchedulingError)
            and "divergence" in str(error)
        )
        record["findings"].append(
            {
                "invariant": "oracle" if divergence else "exception",
                "detail": f"{type(error).__name__}: {error}",
            }
        )
        record["traceback"] = traceback.format_exc()
    else:
        record["feasible"] = result.feasible
        record["makespan_before"] = float(result.metrics["makespan_before"])
        record["makespan_after"] = float(result.metrics["makespan_after"])
        record["moves"] = int(result.metrics["moves"])
        if result.conformance is not None:
            record["conformance"] = {
                "conforms": bool(result.conformance.get("conforms")),
                "consistent": bool(result.conformance.get("consistent")),
                "divergences": int(result.conformance.get("divergences", 0)),
            }
        record["findings"] = _check_invariants(cell, result)
    record["seconds"] = time.perf_counter() - started
    return record


def _execute_payload(payload: Mapping[str, Any]) -> dict[str, Any]:
    """Pickle-friendly pool entry point (mirrors the campaign runner)."""
    return execute_cell(SweepCell(**payload))


@dataclass(slots=True)
class SweepArtifact:
    """One serialisable sweep invocation (schema ``repro-sweep/1``)."""

    preset: str
    #: UTC creation time, ISO-8601.
    created: str
    scenarios: list[str] = field(default_factory=list)
    balancers: list[str] = field(default_factory=list)
    #: Per-cell records, in plan order.
    cells: list[dict[str, Any]] = field(default_factory=list)
    #: Aggregated invariant findings (each carries its cell coordinates).
    findings: list[dict[str, Any]] = field(default_factory=list)
    environment: dict[str, Any] = field(default_factory=environment_fingerprint)
    schema: str = SWEEP_SCHEMA

    @classmethod
    def now(cls, preset: str, **kwargs: Any) -> "SweepArtifact":
        """Artifact stamped with the current UTC time."""
        created = datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ")
        return cls(preset=preset, created=created, **kwargs)

    @property
    def ok(self) -> bool:
        """``True`` when the sweep produced no finding (the CI gate)."""
        return not self.findings

    @property
    def counts(self) -> dict[str, int]:
        """Cell totals by status, plus the finding count."""
        by_status = {"ok": 0, "unschedulable": 0, "error": 0}
        for cell in self.cells:
            by_status[cell["status"]] = by_status.get(cell["status"], 0) + 1
        return {"cells": len(self.cells), **by_status, "findings": len(self.findings)}

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": self.schema,
            "preset": self.preset,
            "created": self.created,
            "scenarios": list(self.scenarios),
            "balancers": list(self.balancers),
            "counts": self.counts,
            "cells": [dict(cell) for cell in self.cells],
            "findings": [dict(entry) for entry in self.findings],
            "environment": dict(self.environment),
            "ok": self.ok,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SweepArtifact":
        jsonio.check_artifact_schema(data, "repro-sweep", 1, kind="sweep artifact")
        schema = data.get("schema", SWEEP_SCHEMA)
        return cls(
            preset=str(data.get("preset", "")),
            created=str(data.get("created", "")),
            scenarios=list(data.get("scenarios") or []),
            balancers=list(data.get("balancers") or []),
            cells=[dict(entry) for entry in data.get("cells") or []],
            findings=[dict(entry) for entry in data.get("findings") or []],
            environment=dict(data.get("environment") or {}),
            schema=schema,
        )

    def save(self, target: str | Path) -> Path:
        """Write the artifact (atomically, as strict JSON).

        A directory target receives the conventional ``SWEEP_<timestamp>.json``
        name; any other target is treated as the exact file path.
        """
        target = Path(target)
        try:
            if target.is_dir() or not target.suffix:
                target.mkdir(parents=True, exist_ok=True)
                stamp = self.created.replace("-", "").replace(":", "")
                target = target / f"SWEEP_{stamp}.json"
            else:
                target.parent.mkdir(parents=True, exist_ok=True)
            jsonio.write_json_atomic(target, self.to_dict())
        except OSError as error:
            raise ConfigurationError(
                f"Cannot write sweep artifact to {target}: {error}"
            ) from None
        return target

    @classmethod
    def load(cls, path: str | Path) -> "SweepArtifact":
        """Read an artifact back from disk."""
        return cls.from_dict(
            jsonio.load_artifact(path, "repro-sweep", 1, kind="sweep artifact")
        )

    def render(self) -> str:
        """Per-scenario summary table plus the findings (what the CLI prints)."""
        from repro.experiments.tables import build_table

        by_scenario: dict[str, dict[str, int]] = {}
        for cell in self.cells:
            stats = by_scenario.setdefault(
                cell["scenario"],
                {"cells": 0, "ok": 0, "unschedulable": 0, "error": 0, "findings": 0},
            )
            stats["cells"] += 1
            stats[cell["status"]] = stats.get(cell["status"], 0) + 1
            stats["findings"] += len(cell.get("findings") or [])
        rows = [
            [
                name,
                str(stats["cells"]),
                str(stats["ok"]),
                str(stats["unschedulable"]),
                str(stats["error"]),
                str(stats["findings"]),
            ]
            for name, stats in sorted(by_scenario.items())
        ]
        lines = [
            build_table(
                ["scenario", "cells", "ok", "unschedulable", "error", "findings"], rows
            )
        ]
        if self.findings:
            lines.append("")
            lines.append("findings:")
            for entry in self.findings:
                lines.append(
                    f"  {entry['scenario']}#{entry['index']}/{entry['balancer']}: "
                    f"[{entry['invariant']}] {entry['detail']}"
                )
        return "\n".join(lines)


def run_sweep(
    preset: str = "tiny",
    scenarios: tuple[str, ...] | None = None,
    balancers: tuple[str, ...] | None = None,
    *,
    jobs: int | None = 1,
    oracle_stride: int = 3,
    conformance_stride: int = 0,
    conformance_hyper_periods: int = 2,
) -> SweepArtifact:
    """Plan and execute the differential sweep, returning its artifact.

    ``jobs=1`` (the default) executes inline; ``None`` lets a process pool
    pick its width; any other value fixes the pool width.
    ``conformance_stride`` enables the simulation-conformance deep tier on
    every Nth cell (0 keeps it off).
    """
    if jobs is not None and jobs < 1:
        raise ConfigurationError(f"jobs must be >= 1 (got {jobs}); use 1 to run inline")
    cells = plan_sweep(
        preset,
        scenarios,
        balancers,
        oracle_stride=oracle_stride,
        conformance_stride=conformance_stride,
        conformance_hyper_periods=conformance_hyper_periods,
    )
    if jobs == 1 or not cells:
        records = [execute_cell(cell) for cell in cells]
    else:
        payloads = [
            {
                "scenario": cell.scenario,
                "index": cell.index,
                "balancer": cell.balancer,
                "preset": cell.preset,
                "oracle": cell.oracle,
                "conformance": cell.conformance,
                "conformance_hyper_periods": cell.conformance_hyper_periods,
            }
            for cell in cells
        ]
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            records = list(pool.map(_execute_payload, payloads))

    findings = [
        {
            "scenario": record["scenario"],
            "index": record["index"],
            "balancer": record["balancer"],
            **entry,
        }
        for record in records
        for entry in record.get("findings") or []
    ]
    from repro.api.balancers import available_balancers
    from repro.scenarios.registry import available_scenarios

    return SweepArtifact.now(
        preset=preset,
        scenarios=list(scenarios if scenarios is not None else available_scenarios()),
        balancers=list(balancers if balancers is not None else available_balancers()),
        cells=records,
        findings=findings,
    )


def sweep_pipeline_configs(
    preset: str = "tiny",
    scenarios: tuple[str, ...] | None = None,
    balancers: tuple[str, ...] | None = None,
) -> list[PipelineConfig]:
    """The sweep grid as serialisable pipeline configs.

    Feed the result to :func:`~repro.experiments.campaign.run_pipeline_campaign`
    to fan the same grid out over the campaign process pool, with every run's
    ``repro-run/1`` artifact stored verbatim in a resumable campaign manifest
    (invariant cross-checks are the sweep harness's job; the campaign route
    is for bulk artifact collection).
    """
    return [
        _cell_config(cell)
        for cell in plan_sweep(preset, scenarios, balancers, oracle_stride=0)
    ]
