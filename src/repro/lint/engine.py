"""File discovery and the rule-driving loop behind ``repro-lb lint``.

:func:`lint_paths` is the whole public surface: resolve the requested rules,
walk the requested paths, parse each module once, run every applicable rule
over it, honour ``# repro-lint: disable=`` pragmas, and return one
``repro-lint/1`` artifact.  Path problems (missing, not ``.py``, no Python
files, unparseable) raise :class:`~repro.errors.ConfigurationError` so the
CLI exits 2 naming the offending path.
"""

from __future__ import annotations

from collections.abc import Sequence
from pathlib import Path

from repro.errors import ConfigurationError
from repro.lint.artifact import LintArtifact, LintFinding
from repro.lint.context import ModuleSource
from repro.lint.registry import LintRule, available_rules, get_rule

__all__ = ["lint_paths"]


def _discover(roots: Sequence[str]) -> list[tuple[Path, str]]:
    """``(absolute path, display path)`` for every Python file under roots."""
    seen: set[Path] = set()
    discovered: list[tuple[Path, str]] = []

    def add(path: Path, rel: str) -> None:
        resolved = path.resolve()
        if resolved not in seen:
            seen.add(resolved)
            discovered.append((path, rel))

    for root in roots:
        path = Path(root)
        if not path.exists():
            raise ConfigurationError(f"Lint path does not exist: {root}")
        if path.is_dir():
            files = sorted(path.rglob("*.py"))
            if not files:
                raise ConfigurationError(f"No Python files under lint path: {root}")
            for file in files:
                add(file, (Path(root) / file.relative_to(path)).as_posix())
        elif path.suffix == ".py":
            add(path, Path(root).as_posix())
        else:
            raise ConfigurationError(f"Lint path is not a Python file: {root}")
    return discovered


def _resolve_rules(names: Sequence[str] | None) -> tuple[LintRule, ...]:
    requested = tuple(names) if names else available_rules()
    if not requested:
        raise ConfigurationError("No lint rules requested")
    return tuple(get_rule(name) for name in requested)


def lint_paths(
    paths: Sequence[str], *, rules: Sequence[str] | None = None
) -> LintArtifact:
    """Lint every Python file under ``paths`` with ``rules`` (default: all)."""
    if not paths:
        raise ConfigurationError("No lint paths given")
    resolved_rules = _resolve_rules(rules)
    modules = [ModuleSource.parse(path, rel) for path, rel in _discover(paths)]

    findings: list[LintFinding] = []
    suppressed: dict[str, int] = {}
    for module in modules:
        for rule in resolved_rules:
            if module.matches(rule.exempt):
                continue
            for finding in rule.check(module):
                if rule.name in module.disabled_rules(finding.line):
                    suppressed[rule.name] = suppressed.get(rule.name, 0) + 1
                else:
                    findings.append(finding)

    findings.sort(key=lambda finding: (finding.path, finding.line, finding.col, finding.rule))
    return LintArtifact.now(
        roots=tuple(str(path) for path in paths),
        rules=tuple(rule.name for rule in resolved_rules),
        files=len(modules),
        findings=tuple(findings),
        suppressed=suppressed,
    )
