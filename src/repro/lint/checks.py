"""The built-in invariant rules.

Each checker encodes one convention this codebase learned the hard way
(mostly in PR 4's drift-bug batch) and enforces it structurally over the
AST.  Checkers are pure functions from one :class:`~repro.lint.context.ModuleSource`
to findings; registration via :func:`~repro.lint.registry.register_rule` is
what makes them visible to ``repro-lb lint`` and ``repro-lb list``.

Modules that *implement* a contract are exempt from the rule that enforces
it (``repro/jsonio.py`` may call :func:`json.dumps`; ``repro/schemas.py``
may spell schema tags) — everything else goes through the front door or
carries an explicit ``# repro-lint: disable=<rule>`` pragma.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterator

from repro.epsilon import EPSILON
from repro.lint.artifact import LintFinding
from repro.lint.context import ModuleSource
from repro.lint.registry import register_rule
from repro.schemas import SCHEMA_TABLE

__all__: list[str] = []

_SCHEMA_TAG = re.compile(r"repro-[a-z_]+/[0-9]+")


def _finding(source: ModuleSource, rule: str, node: ast.AST, message: str) -> LintFinding:
    return LintFinding(
        rule=rule,
        path=source.rel,
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0),
        message=message,
    )


def _call_name(node: ast.Call) -> str:
    """Dotted name of a call target, best effort (``np.random.seed``)."""
    parts: list[str] = []
    target: ast.expr = node.func
    while isinstance(target, ast.Attribute):
        parts.append(target.attr)
        target = target.value
    if isinstance(target, ast.Name):
        parts.append(target.id)
        return ".".join(reversed(parts))
    return ""


def _contains_derive_seed(nodes: list[ast.expr]) -> bool:
    for root in nodes:
        for node in ast.walk(root):
            if isinstance(node, ast.Call) and _call_name(node).endswith("derive_seed"):
                return True
    return False


def _module_all(tree: ast.Module) -> frozenset[str]:
    names: set[str] = set()
    for statement in tree.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(statement, ast.Assign):
            targets, value = statement.targets, statement.value
        elif isinstance(statement, ast.AugAssign):
            targets, value = [statement.target], statement.value
        if value is None or not any(
            isinstance(target, ast.Name) and target.id == "__all__" for target in targets
        ):
            continue
        if isinstance(value, (ast.List, ast.Tuple)):
            for element in value.elts:
                if isinstance(element, ast.Constant) and isinstance(element.value, str):
                    names.add(element.value)
    return frozenset(names)


@register_rule(
    "raw-json",
    "All JSON emission goes through repro.jsonio",
    "json.dump/dumps/load bypass the strict-JSON contract (allow_nan=False, "
    "non-finite sanitisation, sorted keys, schema checking). Serialise via "
    "repro.jsonio.dumps / write_json_atomic and read artifacts via "
    "load_json_path / load_artifact. json.loads on in-memory wire bytes is "
    "allowed. Learned in PR 2 when NaN metrics produced unparseable artifacts.",
    exempt=("repro/jsonio.py",),
)
def check_raw_json(source: ModuleSource) -> Iterator[LintFinding]:
    replacements = {
        "dump": "repro.jsonio.write_json_atomic",
        "dumps": "repro.jsonio.dumps",
        "load": "repro.jsonio.load_json_path",
    }
    for node in ast.walk(source.tree):
        if isinstance(node, ast.ImportFrom) and node.module == "json":
            banned = sorted(
                alias.name for alias in node.names if alias.name in replacements
            )
            if banned:
                yield _finding(
                    source,
                    "raw-json",
                    node,
                    f"Importing {', '.join(banned)} from json bypasses the "
                    "strict-JSON contract; use the repro.jsonio front door",
                )
        elif isinstance(node, ast.Call):
            name = _call_name(node)
            if name.startswith("json.") and name[len("json.") :] in replacements:
                verb = name[len("json.") :]
                yield _finding(
                    source,
                    "raw-json",
                    node,
                    f"json.{verb}() bypasses the strict-JSON contract; "
                    f"use {replacements[verb]}",
                )


@register_rule(
    "atomic-write",
    "Artifact files are written atomically",
    "In-place writes (open(..., 'w'), Path.write_text) can leave truncated "
    "artifacts behind a crash; repro.jsonio.write_text_atomic / "
    "write_json_atomic stage a temp file and os.replace it. Learned in PR 3 "
    "when an interrupted campaign left a half-written manifest that the "
    "loader then rejected.",
    exempt=("repro/jsonio.py",),
)
def check_atomic_write(source: ModuleSource) -> Iterator[LintFinding]:
    for node in ast.walk(source.tree):
        if not isinstance(node, ast.Call):
            continue
        if isinstance(node.func, ast.Attribute):
            attr = node.func.attr
        elif isinstance(node.func, ast.Name):
            attr = node.func.id
        else:
            continue
        if attr == "write_text":
            yield _finding(
                source,
                "atomic-write",
                node,
                ".write_text() writes in place; use repro.jsonio.write_text_atomic",
            )
            continue
        if attr != "open":
            continue
        # Builtin open() takes the mode second; Path.open() takes it first.
        mode_index = 1 if isinstance(node.func, ast.Name) else 0
        mode: ast.expr | None = None
        if len(node.args) > mode_index:
            mode = node.args[mode_index]
        for keyword in node.keywords:
            if keyword.arg == "mode":
                mode = keyword.value
        if (
            isinstance(mode, ast.Constant)
            and isinstance(mode.value, str)
            and any(flag in mode.value for flag in ("w", "a", "x"))
            and "b" not in mode.value
        ):
            yield _finding(
                source,
                "atomic-write",
                node,
                f"open(..., {mode.value!r}) writes in place; use "
                "repro.jsonio.write_text_atomic / write_json_atomic",
            )


@register_rule(
    "epsilon-literal",
    "One canonical numeric tolerance",
    "The feasibility tolerance 1e-9 lives in repro.epsilon.EPSILON; spelling "
    "it as a literal invites per-module drift (PR 4 shipped a bound check "
    "with a stale tolerance that disagreed with the balancer's). Other "
    "magnitudes (1e-12 digest tolerances, 1e-6 solver gaps) are distinct "
    "constants and stay local.",
    exempt=("repro/epsilon.py",),
)
def check_epsilon_literal(source: ModuleSource) -> Iterator[LintFinding]:
    for node in ast.walk(source.tree):
        if (
            isinstance(node, ast.Constant)
            and isinstance(node.value, float)
            and node.value == EPSILON
            and id(node) not in source.docstrings
        ):
            yield _finding(
                source,
                "epsilon-literal",
                node,
                "Tolerance literal duplicates the canonical value; "
                "import EPSILON from repro.epsilon",
            )


@register_rule(
    "seeded-random",
    "All randomness is derived from the run seed",
    "Global-RNG calls (random.random(), numpy.random.seed) and unseeded "
    "generators break run reproducibility and cross-process determinism. "
    "Construct generators from repro.workloads.seeding.derive_seed(root, "
    "index, stream=...) spawn keys. Learned in PR 6 when worker-pool "
    "ordering changed campaign results.",
    exempt=("repro/workloads/seeding.py",),
)
def check_seeded_random(source: ModuleSource) -> Iterator[LintFinding]:
    for node in ast.walk(source.tree):
        if not isinstance(node, ast.Call):
            continue
        name = _call_name(node)
        seed_args = list(node.args) + [keyword.value for keyword in node.keywords]
        if name == "random.Random" or name.endswith(".Random") or name == "Random":
            if not seed_args:
                yield _finding(
                    source,
                    "seeded-random",
                    node,
                    "random.Random() without a seed is nondeterministic; "
                    "seed it via derive_seed(...)",
                )
            elif not _contains_derive_seed(seed_args):
                yield _finding(
                    source,
                    "seeded-random",
                    node,
                    "random.Random(...) seeded outside the spawn-key scheme; "
                    "derive the seed via repro.workloads.seeding.derive_seed",
                )
        elif name.endswith("default_rng") and not seed_args:
            yield _finding(
                source,
                "seeded-random",
                node,
                "default_rng() without a seed is nondeterministic; "
                "pass derive_seed(...)",
            )
        elif name in ("np.random.seed", "numpy.random.seed", "random.seed"):
            yield _finding(
                source,
                "seeded-random",
                node,
                f"{name}() mutates a global RNG; construct a local generator "
                "seeded via derive_seed instead",
            )
        elif name.startswith("random.") and name.count(".") == 1:
            yield _finding(
                source,
                "seeded-random",
                node,
                f"{name}() uses the shared global RNG; use a random.Random "
                "seeded via derive_seed",
            )


@register_rule(
    "schema-literal",
    "Schema tags are spelled once, in repro.schemas",
    "Every versioned artifact tag ('repro-<family>/<N>') must be the value "
    "of a constant in repro.schemas, where SCHEMA_TABLE names its owning "
    "module. A literal tag elsewhere either duplicates a constant (drift "
    "risk) or mints a schema nobody registered (a typo'd tag round-trips "
    "until a loader rejects it).",
    exempt=("repro/schemas.py",),
)
def check_schema_literal(source: ModuleSource) -> Iterator[LintFinding]:
    for node in ast.walk(source.tree):
        if (
            isinstance(node, ast.Constant)
            and isinstance(node.value, str)
            and _SCHEMA_TAG.fullmatch(node.value)
            and id(node) not in source.docstrings
        ):
            if node.value in SCHEMA_TABLE:
                message = (
                    f"Schema tag {node.value!r} must be spelled via its "
                    "constant in repro.schemas"
                )
            else:
                message = (
                    f"Schema tag {node.value!r} is not in the central "
                    "repro.schemas.SCHEMA_TABLE"
                )
            yield _finding(source, "schema-literal", node, message)


@register_rule(
    "manifest-shell",
    "execute_* shells never raise",
    "Worker-pool entry points named execute_* return failed manifests "
    "(status/error/traceback keys) instead of raising, so one bad run "
    "cannot take down a campaign batch. The function body must carry a "
    "top-level try/except. Learned in PR 5 when a single infeasible "
    "scenario crashed a 200-run campaign.",
)
def check_manifest_shell(source: ModuleSource) -> Iterator[LintFinding]:
    for statement in source.tree.body:
        if not isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if not statement.name.startswith("execute_"):
            continue
        if not any(isinstance(child, ast.Try) for child in statement.body):
            yield _finding(
                source,
                "manifest-shell",
                statement,
                f"{statement.name}() is a manifest shell but has no top-level "
                "try/except; it must return a failed manifest instead of raising",
            )


@register_rule(
    "wall-clock",
    "Timed paths use repro.timing",
    "time.time() is wall-clock: NTP slews and DST make it jump, corrupting "
    "measured durations. Durations come from repro.timing.measure "
    "(perf_counter-based); artifact stamps come from datetime.now(timezone.utc).",
    exempt=("repro/timing.py",),
)
def check_wall_clock(source: ModuleSource) -> Iterator[LintFinding]:
    for node in ast.walk(source.tree):
        if isinstance(node, ast.ImportFrom) and node.module == "time":
            if any(alias.name == "time" for alias in node.names):
                yield _finding(
                    source,
                    "wall-clock",
                    node,
                    "Importing time() from time bypasses repro.timing; "
                    "use repro.timing.measure for durations",
                )
        elif isinstance(node, ast.Call) and _call_name(node) == "time.time":
            yield _finding(
                source,
                "wall-clock",
                node,
                "time.time() is wall-clock and unsafe for durations; "
                "use repro.timing.measure",
            )


@register_rule(
    "registry-complete",
    "Registry modules register everything they define",
    "A module that calls register_* must not also define orphan "
    "implementations: every module-level function there must be registered, "
    "referenced, exported via __all__, or private. Catches the "
    "half-migrated state where a new strategy is written but never "
    "registered, so the CLI silently cannot reach it.",
)
def check_registry_complete(source: ModuleSource) -> Iterator[LintFinding]:
    def registers(node: ast.AST) -> bool:
        if isinstance(node, ast.Call):
            return _call_name(node).split(".")[-1].startswith("register_")
        return False

    if not any(registers(node) for node in ast.walk(source.tree)):
        return
    exported = _module_all(source.tree)
    definitions = [
        statement
        for statement in source.tree.body
        if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]
    for definition in definitions:
        if definition.name.startswith("_") or definition.name in exported:
            continue
        if any(registers(decorator) for decorator in definition.decorator_list):
            continue
        referenced = False
        for statement in source.tree.body:
            if statement is definition:
                if any(
                    isinstance(node, ast.Name) and node.id == definition.name
                    for decorator in definition.decorator_list
                    for node in ast.walk(decorator)
                ):
                    referenced = True
                continue
            if any(
                isinstance(node, ast.Name) and node.id == definition.name
                for node in ast.walk(statement)
            ):
                referenced = True
                break
        if not referenced:
            yield _finding(
                source,
                "registry-complete",
                definition,
                f"{definition.name}() is defined in a registry module but "
                "never registered or referenced; register it or add it to __all__",
            )
