"""The versioned ``repro-lint/1`` findings artifact.

Same shape family as ``repro-bench/1``: a ``schema`` header, a UTC
``created`` stamp, the configuration echo (roots scanned, rules run) and the
result rows.  Every finding carries a stable *fingerprint* —
``sha256(rule | path | message)`` truncated — that survives unrelated line
drift, so two artifacts from different commits diff meaningfully (the
cross-run gating workflow of the exemplar index).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Mapping

from repro import jsonio
from repro.errors import ConfigurationError
from repro.schemas import LINT_SCHEMA

__all__ = ["LintFinding", "LintArtifact"]


def _fingerprint(rule: str, path: str, message: str) -> str:
    digest = hashlib.sha256(f"{rule}|{path}|{message}".encode("utf-8")).hexdigest()
    return digest[:12]


@dataclass(frozen=True)
class LintFinding:
    """One rule violation at one source location."""

    #: Registry key of the rule that fired.
    rule: str
    #: Display path of the offending module (posix separators).
    path: str
    #: 1-based source line.
    line: int
    #: 0-based column.
    col: int
    #: Human-readable statement of the violation and the compliant spelling.
    message: str

    @property
    def fingerprint(self) -> str:
        """Line-drift-stable identity: ``sha256(rule | path | message)``."""
        return _fingerprint(self.rule, self.path, self.message)

    def to_dict(self) -> dict[str, Any]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": int(self.line),
            "col": int(self.col),
            "message": self.message,
            "fingerprint": self.fingerprint,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "LintFinding":
        return cls(
            rule=str(data["rule"]),
            path=str(data["path"]),
            line=int(data["line"]),
            col=int(data.get("col", 0)),
            message=str(data["message"]),
        )

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}  {self.rule}  {self.message}"


@dataclass(frozen=True)
class LintArtifact:
    """One lint run over a set of roots (schema ``repro-lint/1``)."""

    #: Paths scanned, as given on the command line.
    roots: tuple[str, ...]
    #: Rule names that ran.
    rules: tuple[str, ...]
    #: Files parsed.
    files: int
    #: Violations, sorted by (path, line, rule).
    findings: tuple[LintFinding, ...]
    #: Per-rule counts of findings silenced by ``# repro-lint: disable=``.
    suppressed: dict[str, int] = field(default_factory=dict)
    #: UTC creation stamp.
    created: str = ""
    schema: str = LINT_SCHEMA

    @classmethod
    def now(cls, **kwargs: Any) -> "LintArtifact":
        """Artifact stamped with the current UTC time."""
        created = datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ")
        return cls(created=created, **kwargs)

    @property
    def ok(self) -> bool:
        """``True`` when the scanned tree is clean."""
        return not self.findings

    @property
    def counts(self) -> dict[str, int]:
        return {
            "files": int(self.files),
            "findings": len(self.findings),
            "suppressed": sum(self.suppressed.values()),
        }

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": self.schema,
            "created": self.created,
            "roots": list(self.roots),
            "rules": list(self.rules),
            "files": int(self.files),
            "findings": [finding.to_dict() for finding in self.findings],
            "suppressed": {key: int(value) for key, value in sorted(self.suppressed.items())},
            "counts": self.counts,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "LintArtifact":
        jsonio.check_artifact_schema(data, "repro-lint", 1, kind="lint artifact")
        return cls(
            roots=tuple(str(root) for root in data.get("roots") or ()),
            rules=tuple(str(rule) for rule in data.get("rules") or ()),
            files=int(data.get("files", 0)),
            findings=tuple(
                LintFinding.from_dict(entry) for entry in data.get("findings") or ()
            ),
            suppressed={
                str(key): int(value)
                for key, value in (data.get("suppressed") or {}).items()
            },
            created=str(data.get("created", "")),
            schema=str(data.get("schema", LINT_SCHEMA)),
        )

    def dumps(self) -> str:
        """Deterministic strict-JSON form (sorted keys, trailing newline)."""
        return jsonio.dumps(self.to_dict()) + "\n"

    def save(self, target: str | Path) -> Path:
        """Write the artifact (a directory target gets ``LINT_<stamp>.json``)."""
        target = Path(target)
        try:
            if target.is_dir() or not target.suffix:
                target.mkdir(parents=True, exist_ok=True)
                stamp = self.created.replace("-", "").replace(":", "")
                target = target / f"LINT_{stamp}.json"
            else:
                target.parent.mkdir(parents=True, exist_ok=True)
            jsonio.write_text_atomic(target, self.dumps())
        except OSError as error:
            raise ConfigurationError(
                f"Cannot write lint artifact to {target}: {error}"
            ) from None
        return target

    @classmethod
    def load(cls, path: str | Path) -> "LintArtifact":
        """Read an artifact back through the shared versioned-artifact loader."""
        return cls.from_dict(
            jsonio.load_artifact(path, "repro-lint", 1, kind="lint artifact")
        )

    def render(self) -> str:
        """ASCII report of the run."""
        counts = self.counts
        lines = [
            f"lint: {counts['findings']} finding(s) in {counts['files']} file(s) "
            f"({len(self.rules)} rule(s); {counts['suppressed']} suppressed)"
        ]
        lines.extend(f"  {finding.render()}" for finding in self.findings)
        return "\n".join(lines)
