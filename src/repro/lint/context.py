"""Parsed-module context handed to every lint rule.

One :class:`ModuleSource` bundles everything a checker needs — the AST, the
raw source lines, which string constants are docstrings (rules about literal
*values* must not fire on prose), and the per-line
``# repro-lint: disable=<rule>[,<rule>]`` pragmas the engine honours when
filtering findings.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path

from repro.errors import ConfigurationError

__all__ = ["ModuleSource"]

_PRAGMA = re.compile(r"#\s*repro-lint:\s*disable=([A-Za-z0-9_\-, ]+)")


def _docstring_nodes(tree: ast.Module) -> frozenset[int]:
    """``id()`` of every Constant node sitting in a docstring position."""
    found: set[int] = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.Module, ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            body = node.body
            if (
                body
                and isinstance(body[0], ast.Expr)
                and isinstance(body[0].value, ast.Constant)
                and isinstance(body[0].value.value, str)
            ):
                found.add(id(body[0].value))
    return frozenset(found)


def _disables(lines: tuple[str, ...]) -> dict[int, frozenset[str]]:
    """1-based line number -> rule names disabled on that line."""
    table: dict[int, frozenset[str]] = {}
    for number, line in enumerate(lines, start=1):
        match = _PRAGMA.search(line)
        if match:
            names = {part.strip() for part in match.group(1).split(",")}
            table[number] = frozenset(name for name in names if name)
    return table


@dataclass(frozen=True)
class ModuleSource:
    """One Python module, parsed and indexed for the lint rules."""

    #: Absolute path on disk.
    path: Path
    #: Display path (as scanned, posix separators) — carried by findings and
    #: matched against rule exemption suffixes.
    rel: str
    #: Raw source text.
    text: str
    #: Parsed module.
    tree: ast.Module
    #: Source split into lines (1-based access via ``lines[n - 1]``).
    lines: tuple[str, ...]
    #: ``id()`` of every docstring Constant node.
    docstrings: frozenset[int]
    #: Per-line pragma suppressions.
    disables: dict[int, frozenset[str]]

    @classmethod
    def parse(cls, path: Path, rel: str) -> "ModuleSource":
        """Read and parse ``path``; every failure names the offending file.

        Unreadable files and syntax errors raise
        :class:`~repro.errors.ConfigurationError`, so ``repro-lb lint`` exits
        2 with one clean message instead of a traceback (the
        ``tests/test_cli_errors.py`` convention).
        """
        try:
            text = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as error:
            raise ConfigurationError(f"Cannot read {rel}: {error}") from None
        try:
            tree = ast.parse(text, filename=str(path))
        except SyntaxError as error:
            raise ConfigurationError(
                f"Cannot lint {rel}: invalid Python syntax at line {error.lineno}"
            ) from None
        lines = tuple(text.splitlines())
        return cls(
            path=path,
            rel=rel,
            text=text,
            tree=tree,
            lines=lines,
            docstrings=_docstring_nodes(tree),
            disables=_disables(lines),
        )

    def matches(self, suffixes: tuple[str, ...]) -> bool:
        """``True`` when the module's display path ends with any suffix."""
        return any(self.rel.endswith(suffix) for suffix in suffixes)

    def disabled_rules(self, line: int) -> frozenset[str]:
        """Rules suppressed by a pragma on ``line`` (1-based)."""
        return self.disables.get(line, frozenset())
