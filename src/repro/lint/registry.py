"""String-keyed registry of lint rules (mirrors the balancer registry).

A rule is a named AST checker over one parsed module.  Registration follows
the same pattern as :func:`repro.api.balancers.register_balancer`: a
decorator stamps the checker into a module-level table, duplicate names are
rejected loudly, and consumers enumerate/resolve rules only through the
accessor functions — so ``repro-lb lint --rules`` and ``repro-lb list`` pick
up a new rule by its registration alone.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.lint.artifact import LintFinding
from repro.lint.context import ModuleSource

__all__ = [
    "LintRule",
    "available_rules",
    "get_rule",
    "register_rule",
    "rule_info",
]

#: Signature of every checker: one parsed module in, findings out.
Checker = Callable[[ModuleSource], Iterable[LintFinding]]


@dataclass(frozen=True)
class LintRule:
    """One registered invariant rule."""

    #: Registry key (``raw-json``, ``epsilon-literal``, ...) — also the id
    #: carried by findings and accepted by ``# repro-lint: disable=``.
    name: str
    #: One-line summary for catalogs.
    title: str
    #: What the invariant is, which PR learned it, and how to comply.
    description: str
    #: The checker.
    check: Checker
    #: Path suffixes of modules the rule does not apply to (the module that
    #: *implements* the contract is allowed to spell it out).
    exempt: tuple[str, ...] = field(default=())


_RULES: dict[str, LintRule] = {}


def register_rule(
    name: str, title: str, description: str, *, exempt: tuple[str, ...] = ()
) -> Callable[[Checker], Checker]:
    """Decorator registering ``checker`` under ``name``."""

    def wrap(checker: Checker) -> Checker:
        if name in _RULES:
            raise ConfigurationError(f"Lint rule {name!r} is already registered")
        _RULES[name] = LintRule(
            name=name, title=title, description=description, check=checker, exempt=exempt
        )
        return checker

    return wrap


def available_rules() -> tuple[str, ...]:
    """Registered rule names, sorted."""
    return tuple(sorted(_RULES))


def get_rule(name: str) -> LintRule:
    """The rule registered under ``name``."""
    try:
        return _RULES[name]
    except KeyError:
        raise ConfigurationError(
            f"Unknown lint rule {name!r}; registered: {list(available_rules())}"
        ) from None


def rule_info(name: str) -> LintRule:
    """Alias of :func:`get_rule` (the catalog-accessor naming convention)."""
    return get_rule(name)
