"""AST-based invariant linter: the project's correctness contracts, enforced.

Eight PRs of growth accumulated hard-won conventions — strict JSON only via
:mod:`repro.jsonio`, atomic artifact writes, one shared
:data:`~repro.epsilon.EPSILON`, randomness only through
:func:`~repro.workloads.seeding.derive_seed` spawn keys, never-raises
``execute_*`` manifest shells, versioned ``repro-*/N`` schema tags in the
central :data:`~repro.schemas.SCHEMA_TABLE` — and every one of them could
silently regress in the next PR (PR 4's bug batch was exactly this class of
drift).  This subsystem institutionalises them the way :mod:`repro.bench`
institutionalised performance: a string-keyed registry of AST rules
(:mod:`~repro.lint.registry`, mirroring the balancer/bench/scenario
registries), the checkers themselves (:mod:`~repro.lint.checks`), a walking
engine with ``# repro-lint: disable=<rule>`` pragma support
(:mod:`~repro.lint.engine`) and a versioned ``repro-lint/1`` findings
artifact (:mod:`~repro.lint.artifact`) with stable fingerprints for
cross-run diffing.

``repro-lb lint src`` is the self-application gate: the repo must lint
clean, and CI runs it next to ruff.  Importing this package registers the
built-in rules.
"""

from repro.lint import checks as _checks  # noqa: F401 - registers the built-in rules
from repro.lint.artifact import LintArtifact, LintFinding
from repro.lint.engine import lint_paths
from repro.lint.registry import (
    LintRule,
    available_rules,
    get_rule,
    register_rule,
    rule_info,
)

__all__ = [
    "LintArtifact",
    "LintFinding",
    "LintRule",
    "available_rules",
    "get_rule",
    "lint_paths",
    "register_rule",
    "rule_info",
]
