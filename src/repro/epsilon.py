"""The canonical numeric tolerance of the whole reproduction.

PR 4's sweep shook out a real bug class: two modules spelling "the" epsilon
as their own literals drifted apart (the clamp/wrap asymmetry in
:func:`repro.scheduling.periodic_intervals.split_wrapping`), and a schedule
accepted on one side of the boundary was rejected on the other.  The fix was
one shared constant; this module is its dependency-free home, so *every*
consumer — circular-interval arithmetic, the conflict engine, feasibility
checking, memory accounting, the conformance oracle — can import it without
creating an import cycle.

``repro.lint``'s ``epsilon-literal`` rule enforces the discipline statically:
the literal value of :data:`EPSILON` may appear in exactly one Python file —
this one.  Everything else imports it.

Tolerances that are *not* this resolution (e.g. the ``1e-12`` interval-overlap
slack in :mod:`repro.scheduling.schedule`, or cost-model constants in the
search objectives) are deliberately distinct values and stay local.
"""

from __future__ import annotations

__all__ = ["EPSILON"]

#: Resolution of every steady-state time/size comparison: intervals shorter
#: than this are empty everywhere, occupancy overlaps within it are not
#: overlaps, and memory/utilisation headroom within it is not an overflow.
EPSILON = 1e-9
