"""Result objects of the load-balancing heuristic.

The heuristic returns more than a new schedule: every block move is recorded
as a :class:`MoveDecision` carrying the evaluations of all candidate
processors, so that the worked example of the paper (section 3.3) can be
replayed step by step and so that experiments can inspect *why* a block went
where it went.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.blocks import Block
from repro.core.cost import CostPolicy, MoveEvaluation
from repro.scheduling.schedule import Schedule

__all__ = ["CandidateReport", "MoveDecision", "LoadBalanceResult"]


@dataclass(frozen=True, slots=True)
class CandidateReport:
    """One candidate processor considered for a block move."""

    evaluation: MoveEvaluation
    #: ``True`` when the eligibility pre-filter allowed this processor.
    eligible: bool
    #: ``True`` when the Block/LCM condition held for this candidate
    #: (``None`` when it was never checked because the candidate lost earlier).
    lcm_ok: bool | None
    #: Score tuple assigned by the active cost policy (larger is better).
    score: tuple[float, ...]

    @property
    def target(self) -> str:
        """Target processor of the candidate."""
        return self.evaluation.target


@dataclass(frozen=True, slots=True)
class MoveDecision:
    """The decision taken for one block."""

    block: Block
    #: The block's start time at decision time (may be smaller than the
    #: original start if a previous category-1 gain propagated to it).
    start_before: float
    chosen_processor: str
    placement_start: float
    gain: float
    candidates: tuple[CandidateReport, ...]
    #: ``True`` when no candidate satisfied every rule and the block was kept
    #: on its original processor as a fallback.
    forced: bool = False
    #: Blocks (ids) whose start times were decreased as a consequence of this
    #: move (the paper's "update the start times of the blocks containing
    #: tasks whose instances are in the moved block").
    updated_blocks: tuple[int, ...] = ()

    @property
    def moved_away(self) -> bool:
        """``True`` when the block changed processor."""
        return self.chosen_processor != self.block.processor

    def candidate_for(self, processor: str) -> CandidateReport | None:
        """The candidate report of a given processor, if it was considered."""
        for candidate in self.candidates:
            if candidate.target == processor:
                return candidate
        return None

    def describe(self) -> str:
        """One-paragraph human readable description of the decision."""
        parts = [
            f"block {self.block.label} (S={self.start_before:g}, "
            f"E={self.block.execution_time:g}, m={self.block.memory:g}, "
            f"cat={int(self.block.category)}) from {self.block.processor}"
        ]
        for candidate in self.candidates:
            ev = candidate.evaluation
            flags = []
            if not candidate.eligible:
                flags.append("not eligible")
            if not ev.feasible:
                flags.append("infeasible")
            if candidate.lcm_ok is False:
                flags.append("LCM violated")
            flag_text = f" ({', '.join(flags)})" if flags else ""
            parts.append(
                f"  -> {ev.target}: G={ev.gain:g}, moved mem={ev.target_memory:g}, "
                f"lambda={ev.lambda_value if ev.lambda_value is not None else 'n/a'}, "
                f"score={candidate.score}{flag_text}"
            )
        parts.append(
            f"  chosen: {self.chosen_processor} at S={self.placement_start:g} "
            f"(gain {self.gain:g}{', forced' if self.forced else ''})"
        )
        return "\n".join(parts)


@dataclass(slots=True)
class LoadBalanceResult:
    """Complete outcome of one load-balancing run."""

    initial_schedule: Schedule
    balanced_schedule: Schedule
    decisions: list[MoveDecision]
    blocks: tuple[Block, ...]
    policy: CostPolicy
    #: Free-form warnings (forced placements, skipped checks, ...).
    warnings: list[str] = field(default_factory=list)
    #: Number of cost-function evaluations performed (exactly M · N_blocks:
    #: every block is evaluated against every processor once — the quantity
    #: the paper's complexity claim of section 4 counts).
    evaluations: int = 0
    #: Which rule set produced the accepted result when
    #: ``retry_until_feasible`` is enabled: ``"paper"`` (the configured
    #: options), ``"conservative"`` (the protective re-run) or ``"no-op"``
    #: (balancing abandoned, the initial schedule is returned unchanged).
    safety_level: str = "paper"

    # -- headline numbers ---------------------------------------------------
    @property
    def makespan_before(self) -> float:
        """Total execution time of the initial schedule (the paper's ``L_former``)."""
        return self.initial_schedule.makespan

    @property
    def makespan_after(self) -> float:
        """Total execution time of the balanced schedule (the paper's ``L_new``)."""
        return self.balanced_schedule.makespan

    @property
    def total_gain(self) -> float:
        """``G_total = L_former - L_new`` (Theorem 1's quantity)."""
        return self.makespan_before - self.makespan_after

    @property
    def memory_before(self) -> dict[str, float]:
        """Per-processor memory of the initial schedule."""
        return self.initial_schedule.memory_by_processor()

    @property
    def memory_after(self) -> dict[str, float]:
        """Per-processor memory of the balanced schedule."""
        return self.balanced_schedule.memory_by_processor()

    @property
    def max_memory_before(self) -> float:
        """``ω`` of the initial schedule (maximum per-processor memory)."""
        return max(self.memory_before.values(), default=0.0)

    @property
    def max_memory_after(self) -> float:
        """``ω`` of the balanced schedule."""
        return max(self.memory_after.values(), default=0.0)

    @property
    def moves(self) -> int:
        """Number of blocks that changed processor."""
        return sum(1 for decision in self.decisions if decision.moved_away)

    def decision_for(self, block_label: str) -> MoveDecision | None:
        """Decision of the block with the given label (e.g. ``"[a#1]"``)."""
        for decision in self.decisions:
            if decision.block.label == block_label:
                return decision
        return None

    def summary(self) -> str:
        """Multi-line textual summary mirroring the paper's example wrap-up."""
        before = ", ".join(f"{k}: {v:g}" for k, v in sorted(self.memory_before.items()))
        after = ", ".join(f"{k}: {v:g}" for k, v in sorted(self.memory_after.items()))
        lines = [
            f"Load balancing with policy {self.policy.value!r}: "
            f"{len(self.blocks)} blocks, {self.moves} moved to another processor",
            f"  total execution time: {self.makespan_before:g} -> {self.makespan_after:g} "
            f"(G_total = {self.total_gain:g})",
            f"  memory before: [{before}]",
            f"  memory after:  [{after}] (max {self.max_memory_after:g})",
        ]
        if self.warnings:
            lines.append(f"  warnings: {len(self.warnings)}")
            lines.extend(f"    - {w}" for w in self.warnings)
        return "\n".join(lines)
