"""The paper's contribution: load balancing with efficient memory usage.

* :mod:`~repro.core.blocks` — block construction and categories;
* :mod:`~repro.core.cost` — gain (eq. (3)) and cost-function policies (eq. (5));
* :mod:`~repro.core.conditions` — eligibility pre-filter and Block/LCM
  condition (eq. (4));
* :mod:`~repro.core.occupancy` — incremental steady-state conflict engine;
* :mod:`~repro.core.load_balancer` — Algorithm 3.2;
* :mod:`~repro.core.result` — decision traces and result objects.
"""

from repro.core.blocks import Block, BlockBuildOptions, BlockCategory, build_blocks
from repro.core.conditions import (
    BalancingState,
    ProcessorState,
    is_eligible,
    satisfies_lcm_condition,
)
from repro.core.cost import (
    CostPolicy,
    MoveContext,
    MoveEvaluation,
    evaluate_move,
    policy_score,
    prepare_move_context,
)
from repro.core.load_balancer import LoadBalancer, LoadBalancerOptions, balance_schedule
from repro.core.occupancy import ConflictEngine, OccupancyTimeline
from repro.core.result import CandidateReport, LoadBalanceResult, MoveDecision

__all__ = [
    "BalancingState",
    "Block",
    "BlockBuildOptions",
    "BlockCategory",
    "CandidateReport",
    "ConflictEngine",
    "CostPolicy",
    "OccupancyTimeline",
    "LoadBalanceResult",
    "LoadBalancer",
    "LoadBalancerOptions",
    "MoveContext",
    "MoveDecision",
    "MoveEvaluation",
    "ProcessorState",
    "balance_schedule",
    "build_blocks",
    "evaluate_move",
    "is_eligible",
    "policy_score",
    "prepare_move_context",
    "satisfies_lcm_condition",
]
