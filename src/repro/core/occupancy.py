"""Incremental steady-state occupancy index (the conflict engine).

Every steady-state acceptance decision of the load balancer boils down to the
same question: *does this circular busy pattern intersect what is already on
the processor?*  The original implementation re-derived the reserved pattern
list from scratch for every ``(block, processor)`` candidate, making each
query linear in the number of instances already placed — quadratic over a
whole balancing run.

This module keeps, per processor, a persistent **occupancy timeline**: the
circular busy intervals modulo the hyper-period, normalised into linear
pieces and stored sorted by start together with a running prefix maximum of
the piece end times.  With that structure an overlap query is a binary search
(``O(log n)`` plus the overlapping pieces actually hit) and an accepted move
is an incremental update instead of a recomputation.

Two timelines are kept per processor (mirroring the two reserved-pattern
sources of the balancer):

* the **moved** timeline — patterns of the blocks already moved to the
  processor (grown by :meth:`ConflictEngine.occupy`, never shrunk);
* the **resident** timeline — the current slots of the not-yet-processed
  blocks sitting on the processor (seeded from the initial schedule, shrunk
  by :meth:`ConflictEngine.release` as blocks get processed and shifted by
  :meth:`ConflictEngine.shift` when a category-1 gain propagates).

The incremental-update invariant (checked move-for-move against the
from-scratch computation by ``LoadBalancerOptions.cross_check`` and by the
property suite) is documented in ``DESIGN.md`` §3.
"""

from __future__ import annotations

from bisect import bisect_left
from collections.abc import Iterable

from repro.errors import SchedulingError
from repro.scheduling.periodic_intervals import EPSILON as _EPS
from repro.scheduling.periodic_intervals import normalize_pieces

__all__ = ["OccupancyTimeline", "ConflictEngine"]


class OccupancyTimeline:
    """Sorted circular interval set over one period, with ``O(log n)`` queries.

    Intervals are added as circular ``(offset, length)`` pairs, normalised by
    :func:`repro.scheduling.periodic_intervals.split_wrapping` into linear
    ``[start, end)`` pieces inside ``[0, period)``.  Pieces carry an optional
    ``owner`` tag (the balancer stores the task name) so queries can ignore
    intervals that are about to move together with the candidate.

    The structure tolerates overlapping pieces (degenerate fallback
    placements can overlap legitimately); queries therefore keep a prefix
    maximum of piece end times so the backward scan can stop as soon as no
    earlier piece can still reach the queried window.
    """

    __slots__ = ("period", "_starts", "_ends", "_owners", "_prefix_max")

    def __init__(self, period: float) -> None:
        if period <= 0:
            raise SchedulingError(f"Occupancy period must be positive, got {period}")
        self.period = float(period)
        self._starts: list[float] = []
        self._ends: list[float] = []
        self._owners: list[object] = []
        #: ``_prefix_max[i] == max(_ends[: i + 1])`` — lets a query discard
        #: every piece left of an index in one comparison.
        self._prefix_max: list[float] = []

    def __len__(self) -> int:
        return len(self._starts)

    def intervals(self) -> list[tuple[float, float, object]]:
        """Stored ``(start, end, owner)`` pieces in start order (for tests)."""
        return list(zip(self._starts, self._ends, self._owners, strict=True))

    @property
    def busy_time(self) -> float:
        """Sum of piece lengths (double-counts overlapping pieces)."""
        return sum(e - s for s, e in zip(self._starts, self._ends, strict=True))

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def add(self, offset: float, length: float, owner: object = None) -> None:
        """Insert the circular interval ``[offset, offset + length)``."""
        for begin, end in normalize_pieces(offset, length, self.period):
            index = bisect_left(self._starts, begin)
            self._starts.insert(index, begin)
            self._ends.insert(index, end)
            self._owners.insert(index, owner)
            before = self._prefix_max[index - 1] if index else float("-inf")
            self._prefix_max.insert(index, max(before, end))
            for j in range(index + 1, len(self._prefix_max)):
                if self._prefix_max[j] >= end:
                    break
                self._prefix_max[j] = end

    def extend(self, items: Iterable[tuple[float, float, object]]) -> None:
        """Bulk-insert circular ``(offset, length, owner)`` intervals.

        Equivalent to calling :meth:`add` per item but built in one pass:
        all pieces (existing plus new) are merged with a single stable sort
        by start and the prefix maximum is recomputed once.  Seeding a
        timeline with ``n`` resident slots is ``O(n log n)`` this way instead
        of the ``O(n²)`` of repeated sorted-list insertion — the difference
        between seconds and minutes at stress-xl scale.
        """
        pieces = [
            (begin, end, owner)
            for offset, length, owner in items
            for begin, end in normalize_pieces(offset, length, self.period)
        ]
        if not pieces:
            return
        merged = list(zip(self._starts, self._ends, self._owners, strict=True))
        merged.extend(pieces)
        merged.sort(key=lambda piece: piece[0])
        self._starts = [piece[0] for piece in merged]
        self._ends = [piece[1] for piece in merged]
        self._owners = [piece[2] for piece in merged]
        prefix: list[float] = []
        running = float("-inf")
        for end in self._ends:
            running = max(running, end)
            prefix.append(running)
        self._prefix_max = prefix

    def remove(self, offset: float, length: float, owner: object = None) -> None:
        """Remove a previously added interval (same ``offset``/``length``/``owner``).

        Start and end are matched within :data:`repro.epsilon.EPSILON` rather
        than by exact float equality: ``shift()`` callers recompute offsets
        through ``%``-arithmetic, which can land an ulp away from the value
        originally stored.

        Raises
        ------
        SchedulingError
            When no matching piece is stored — a sign the caller's incremental
            bookkeeping diverged from the timeline's contents.
        """
        for begin, end in normalize_pieces(offset, length, self.period):
            index = bisect_left(self._starts, begin - _EPS)
            while index < len(self._starts) and self._starts[index] <= begin + _EPS:
                if abs(self._ends[index] - end) <= _EPS and self._owners[index] == owner:
                    break
                index += 1
            else:
                raise SchedulingError(
                    f"Occupancy piece [{begin:g}, {end:g}) of {owner!r} is not stored; "
                    "incremental bookkeeping diverged"
                )
            del self._starts[index]
            del self._ends[index]
            del self._owners[index]
            del self._prefix_max[index]
            running = self._prefix_max[index - 1] if index else float("-inf")
            for j in range(index, len(self._prefix_max)):
                running = max(running, self._ends[j])
                self._prefix_max[j] = running

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def overlaps(
        self, offset: float, length: float, exclude: frozenset | Iterable = frozenset()
    ) -> bool:
        """``True`` when the circular interval hits a stored piece.

        ``exclude`` skips pieces whose owner is in the given set (the
        balancer excludes the tasks that shift together with a candidate).
        Matches the semantics of
        :func:`repro.scheduling.periodic_intervals.circular_overlap`:
        zero-length intervals never overlap anything.
        """
        if length <= _EPS or not self._starts:
            return False
        # One canonical boundary rule for queries and stored pieces alike:
        # normalize_pieces is the same tuple-returning helper split_wrapping
        # wraps, so the query side cannot drift from the storage side at the
        # period boundary (it used to hand-roll the clamp and disagree with
        # split_wrapping on sub-epsilon wrap pieces).
        pieces = normalize_pieces(offset, length, self.period)
        starts = self._starts
        ends = self._ends
        owners = self._owners
        prefix_max = self._prefix_max
        for query_start, query_end in pieces:
            index = bisect_left(starts, query_end) - 1
            low = query_start + _EPS
            high = query_end - _EPS
            while index >= 0:
                if prefix_max[index] <= low:
                    break
                if ends[index] > low and starts[index] < high and owners[index] not in exclude:
                    return True
                index -= 1
        return False

    def overlaps_pattern(
        self,
        pattern: Iterable[tuple[float, float]],
        exclude: frozenset | Iterable = frozenset(),
    ) -> bool:
        """``True`` when any ``(offset, length)`` of ``pattern`` hits a piece."""
        return any(self.overlaps(offset, length, exclude) for offset, length in pattern)

class ConflictEngine:
    """Per-processor occupancy timelines driving steady-state acceptance.

    Owned by :class:`repro.core.conditions.BalancingState`; the load balancer
    updates it incrementally (:meth:`occupy` on accepted moves,
    :meth:`release`/:meth:`shift` as resident blocks are consumed or shifted
    by propagated gains) and queries it through :meth:`compatible` instead of
    rebuilding reserved-pattern lists per candidate.
    """

    __slots__ = ("hyper_period", "moved", "resident")

    def __init__(self, hyper_period: int, processors: Iterable[str]) -> None:
        if hyper_period <= 0:
            raise SchedulingError(
                f"Conflict engine needs a positive hyper-period, got {hyper_period}"
            )
        self.hyper_period = int(hyper_period)
        self.moved: dict[str, OccupancyTimeline] = {}
        self.resident: dict[str, OccupancyTimeline] = {}
        for name in processors:
            self.moved[name] = OccupancyTimeline(self.hyper_period)
            self.resident[name] = OccupancyTimeline(self.hyper_period)

    # ------------------------------------------------------------------
    # Incremental updates
    # ------------------------------------------------------------------
    def occupy(self, processor: str, offset: float, length: float, owner: object = None) -> None:
        """Record a pattern of a block accepted (moved) onto ``processor``."""
        self.moved[processor].add(offset, length, owner)

    def reside(self, processor: str, offset: float, length: float, owner: object) -> None:
        """Record the current slot of a not-yet-processed instance."""
        self.resident[processor].add(offset, length, owner)

    def reside_bulk(
        self, processor: str, items: Iterable[tuple[float, float, object]]
    ) -> None:
        """Record many resident slots at once (initial-schedule seeding)."""
        self.resident[processor].extend(items)

    def release(self, processor: str, offset: float, length: float, owner: object) -> None:
        """Drop a resident slot (its block is about to be processed)."""
        self.resident[processor].remove(offset, length, owner)

    def shift(
        self,
        processor: str,
        old_offset: float,
        new_offset: float,
        length: float,
        owner: object,
    ) -> None:
        """Move a resident slot (a category-1 gain shifted the instance)."""
        self.resident[processor].remove(old_offset, length, owner)
        self.resident[processor].add(new_offset, length, owner)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def compatible(
        self,
        processor: str,
        pattern: Iterable[tuple[float, float]],
        *,
        include_resident: bool = False,
        exclude: frozenset = frozenset(),
    ) -> bool:
        """Exact steady-state acceptance test against ``processor``.

        Equivalent to
        :func:`repro.core.conditions.steady_state_compatible` over the
        reserved patterns the balancer would have collected from scratch:
        the moved timeline always counts; the resident timeline counts when
        ``include_resident`` (``protect_unmoved`` mode, shift-safety and the
        safe fallback), minus the slots owned by ``exclude`` tasks.
        """
        moved = self.moved[processor]
        resident = self.resident[processor] if include_resident else None
        for offset, length in pattern:
            if moved.overlaps(offset, length):
                return False
            if resident is not None and resident.overlaps(offset, length, exclude):
                return False
        return True

    def compatible_batch(
        self,
        processors: Iterable[str],
        pattern: Iterable[tuple[float, float]],
        *,
        include_resident: bool = False,
        exclude: frozenset = frozenset(),
    ) -> dict[str, bool]:
        """:meth:`compatible` over many processors (one verdict per name).

        The python engine answers by looping; the array engine overrides this
        with one vectorised sweep.  Keeping the method on both engines lets
        the balancer's safe fallback stay engine-agnostic.
        """
        fixed = list(pattern)
        return {
            name: self.compatible(
                name, fixed, include_resident=include_resident, exclude=exclude
            )
            for name in processors
        }

    def moved_pattern(self, processor: str) -> list[tuple[float, float]]:
        """Linear pieces of the moved timeline (introspection/tests)."""
        return [(s, e - s) for s, e, _owner in self.moved[processor].intervals()]

    def resident_pattern(self, processor: str) -> list[tuple[float, float]]:
        """Linear pieces of the resident timeline (introspection/tests)."""
        return [(s, e - s) for s, e, _owner in self.resident[processor].intervals()]
