"""Eligibility rules and the Block/LCM condition (eq. (4) of the paper).

Two gating rules restrict which processors a block may be moved to:

* **eligibility** — the heuristic "computes the cost function λ for the
  processors whose end time of the last block scheduled on these processors
  is less or equal to the start time of the block" (section 3.2).  In other
  words, a processor already busy (with blocks moved so far) beyond the
  block's current start time is not considered;
* **Block condition / LCM condition** — eq. (4): once blocks are moved to a
  processor, the schedule on that processor must still fit within one
  hyper-period of its first block so that the next hyper-period's repetition
  of that first block is not delayed: ``S_B + E_B <= S_A + LCM`` where ``A``
  is the first block moved to the processor.

Both rules are pure functions of the running :class:`BalancingState`, kept in
this module so that they can be unit-tested (and disabled) independently of
the main loop.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.core.blocks import Block
from repro.core.kernels import ArrayConflictEngine, make_engine
from repro.core.occupancy import ConflictEngine
from repro.epsilon import EPSILON
from repro.scheduling.periodic_intervals import circular_overlap
from repro.scheduling.unrolling import InstanceEdge

__all__ = [
    "ProcessorState",
    "BalancingState",
    "is_eligible",
    "satisfies_lcm_condition",
    "steady_state_compatible",
]

_EPS = EPSILON


@dataclass(slots=True)
class ProcessorState:
    """Running per-processor bookkeeping of the load balancer."""

    name: str
    #: Sum of the memory of the blocks already moved to this processor.
    moved_memory: float = 0.0
    #: Sum of the execution time of the blocks already moved here.
    moved_execution: float = 0.0
    #: Completion time of the last block moved here (0.0 when none yet).
    last_end: float = 0.0
    #: Start time of the first block moved here (None when none yet).
    first_start: float | None = None
    #: Number of blocks moved here.
    moved_blocks: int = 0

    @property
    def is_empty(self) -> bool:
        """``True`` while no block has been moved to the processor."""
        return self.moved_blocks == 0

    def register(self, block: Block, start: float, end: float | None = None) -> None:
        """Record that ``block`` has been placed here starting at ``start``.

        ``end`` defaults to ``start + block.span``; the load balancer passes
        the exact completion time computed from the members' current
        positions (which may differ slightly when start-time updates shifted
        members non-uniformly).
        """
        self.moved_memory += block.memory
        self.moved_execution += block.execution_time
        self.moved_blocks += 1
        self.last_end = max(self.last_end, start + block.span if end is None else end)
        if self.first_start is None:
            self.first_start = start


@dataclass(slots=True)
class BalancingState:
    """Global running state shared by the cost function and the conditions."""

    processors: dict[str, ProcessorState] = field(default_factory=dict)
    #: Current position of every instance: ``(task, index) -> (processor, start)``.
    #: Initially the original schedule; updated when blocks are moved and when
    #: category-2 start times are decreased following a category-1 gain.
    current: dict[tuple[str, int], tuple[str, float]] = field(default_factory=dict)
    #: Hyper-period of the application (the LCM of eq. (4)).
    hyper_period: int = 0
    #: Optional cache of the instance-level input edges of every instance,
    #: filled by the load balancer to avoid re-expanding multi-rate
    #: dependences for every (block, processor) evaluation.
    in_edges: dict[tuple[str, int], tuple[InstanceEdge, ...]] = field(default_factory=dict)
    #: Steady-state busy patterns (circular ``(offset, length)`` pairs modulo
    #: the hyper-period) of the blocks already moved to each processor.  Kept
    #: as the from-scratch differential oracle of the conflict engine (see
    #: ``LoadBalancerOptions.cross_check``).
    moved_patterns: dict[str, list[tuple[float, float]]] = field(default_factory=dict)
    #: Incremental occupancy index answering steady-state queries in
    #: ``O(log n)``; attached by :meth:`attach_engine` before balancing.
    engine: ConflictEngine | ArrayConflictEngine | None = None

    def attach_engine(
        self, processors: Iterable[str], *, kind: str = "python"
    ) -> ConflictEngine | ArrayConflictEngine:
        """Create (and own) the incremental conflict engine for this run.

        ``kind`` selects the implementation (see
        :data:`repro.core.kernels.ENGINE_KINDS`): the per-object Python
        timelines or the flat-array kernels.  Both answer identically; the
        balancer's ``cross_check`` oracle guards that equivalence at runtime.
        """
        self.engine = make_engine(kind, self.hyper_period, processors)
        return self.engine

    def processor(self, name: str) -> ProcessorState:
        """State of one processor (created on first access)."""
        if name not in self.processors:
            self.processors[name] = ProcessorState(name)
        return self.processors[name]

    def position(self, key: tuple[str, int]) -> tuple[str, float]:
        """Current ``(processor, start)`` of an instance."""
        return self.current[key]

    def completion(self, key: tuple[str, int], wcet: float) -> float:
        """Current completion time of an instance given its WCET."""
        return self.current[key][1] + wcet


def is_eligible(block: Block, block_current_start: float, proc_state: ProcessorState) -> bool:
    """Eligibility pre-filter of section 3.2.

    A processor is eligible for ``block`` when the last block already moved to
    it completes no later than the block's (current) start time.  Processors
    with no moved block yet are always eligible.
    """
    if proc_state.is_empty:
        return True
    return proc_state.last_end <= block_current_start + _EPS


def satisfies_lcm_condition(
    block: Block, placement_start: float, proc_state: ProcessorState, hyper_period: int
) -> bool:
    """Block condition of eq. (4).

    ``S_B + E_B <= S_A + LCM`` where ``A`` is the first block moved to the
    target processor.  When the processor has received no block yet the moved
    block becomes ``A`` itself and the condition reduces to
    ``E_B <= LCM`` (always true for feasible inputs, but still checked).
    """
    end = placement_start + block.execution_time
    if proc_state.first_start is None:
        return end <= placement_start + hyper_period + _EPS
    return end <= proc_state.first_start + hyper_period + _EPS


def steady_state_compatible(
    candidate_pattern: Iterable[tuple[float, float]],
    reserved_patterns: Iterable[tuple[float, float]],
    hyper_period: int,
) -> bool:
    """Exact repeatability check for a candidate block placement.

    The paper's Block/LCM condition is a *sufficient* guard: it keeps every
    processor's moved blocks inside one hyper-period of its first block.  The
    exact condition for the schedule to repeat forever is that the candidate
    block's busy pattern, taken modulo the hyper-period, does not intersect
    the patterns already reserved on the target processor (blocks moved there
    plus, optionally, the original slots of blocks not yet processed).  The
    load balancer uses this acceptance test so that balanced schedules never
    lose the strict-periodicity repetition property; its hot path answers it
    through the incremental :class:`~repro.core.occupancy.ConflictEngine`,
    and this brute-force pairwise form is kept as the differential oracle
    (``LoadBalancerOptions.cross_check``).
    """
    reserved = list(reserved_patterns)
    for offset, length in candidate_pattern:
        for reserved_offset, reserved_length in reserved:
            if circular_overlap(offset, length, reserved_offset, reserved_length, hyper_period):
                return False
    return True
