"""The load-balancing heuristic with efficient memory usage (Algorithm 3.2).

This is the paper's contribution.  Starting from an initial schedule (any
feasible strictly periodic schedule, typically the output of
:mod:`repro.scheduling.heuristic`), the heuristic:

1. builds blocks on every processor (:mod:`repro.core.blocks`);
2. processes the blocks in increasing order of their (current) start times;
3. for each block, evaluates every processor — eligibility pre-filter, gain,
   cost function — and moves the block to the processor maximising the cost
   function among those satisfying the Block/LCM condition (eq. (4));
4. when a category-1 block decreases its start time, propagates the decrease
   to the blocks containing later instances of its tasks (strict periodicity
   must be preserved);
5. rebuilds the schedule at the new positions and re-synthesises the
   inter-processor communications.

Robustness additions beyond the paper (all switchable, all documented in
DESIGN.md §2):

* an **exact steady-state acceptance test** (``enforce_steady_state``): the
  moved block's busy pattern modulo the hyper-period must not collide with
  the patterns of the blocks already moved to the target processor, and a
  category-1 gain is only accepted if the start-time decrease it propagates
  to later-instance blocks keeps *their* patterns conflict-free too.  The
  paper's LCM condition is a sufficient approximation of this; the exact test
  keeps the balanced schedule repeatable even when the initial schedule spans
  several hyper-periods;
* a **safe fallback**: when no candidate satisfies every rule, the block is
  re-seated at its pinned start on the processor (original first) whose
  already-moved patterns it does not collide with, so overlaps are avoided
  even in degenerate cases;
* optional **original-slot protection** (``protect_unmoved``, off by
  default): never place a block over the current slot of a not-yet-processed
  block — a conservative mode that guarantees every block can fall back to
  its original position, at the price of fewer moves;
* optional **downstream protection** (``protect_downstream``, off by
  default): refuse moves that would make the data of a still-unprocessed
  consumer arrive after that consumer's pinned start time.  This guarantees
  precedence feasibility in all cases at the price of fewer moves (and it
  changes the worked example's trace, which is why it is off by default).

The heuristic never increases the total execution time (Theorem 1's lower
bound) and trades the remaining freedom for a smaller and better spread
memory footprint (Theorem 2).  Its complexity is ``O(M · N_blocks)`` block
evaluations (section 4), each evaluation being linear in the number of
external input edges of the block.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core import kernels
from repro.core.blocks import Block, BlockBuildOptions, build_blocks
from repro.core.conditions import (
    BalancingState,
    is_eligible,
    satisfies_lcm_condition,
    steady_state_compatible,
)
from repro.core.cost import (
    CostPolicy,
    MoveEvaluation,
    evaluate_move,
    policy_score,
    prepare_move_context,
)
from repro.core.result import CandidateReport, LoadBalanceResult, MoveDecision
from repro.epsilon import EPSILON
from repro.errors import ConfigurationError, SchedulingError
from repro.scheduling.communications import synthesize_communications
from repro.scheduling.feasibility import check_schedule
from repro.scheduling.schedule import Schedule, ScheduledInstance
from repro.scheduling.unrolling import instance_edges

__all__ = ["LoadBalancerOptions", "LoadBalancer", "balance_schedule"]

_EPS = EPSILON


@dataclass(frozen=True, slots=True)
class LoadBalancerOptions:
    """Configuration of the load-balancing heuristic."""

    #: Cost-function interpretation (see :class:`repro.core.cost.CostPolicy`).
    policy: CostPolicy = CostPolicy.RATIO
    #: Apply the eligibility pre-filter of section 3.2 ("processors whose end
    #: time of the last block is less or equal to the start time of the block").
    enforce_eligibility: bool = True
    #: Apply the Block/LCM condition of eq. (4).
    enforce_lcm_condition: bool = True
    #: Apply the exact circular steady-state acceptance test (recommended).
    enforce_steady_state: bool = True
    #: Never place a block over the current slot of a not-yet-processed
    #: block, so the fallback position always remains available (conservative
    #: mode: fewer moves, but no move can ever invalidate a later block).
    protect_unmoved: bool = False
    #: Refuse moves that would make the data of an unprocessed consumer
    #: arrive after its pinned start time (conservative; changes the paper's
    #: worked-example trace, hence off by default).
    protect_downstream: bool = False
    #: Options of the block construction step.
    block_options: BlockBuildOptions = field(default_factory=BlockBuildOptions)
    #: Re-synthesise communication operations on the balanced schedule.
    attach_communications: bool = True
    #: Run the feasibility checker on the balanced schedule and record any
    #: violation as a warning on the result (never raises).
    verify_result: bool = True
    #: When the balanced schedule turns out infeasible (the paper's update
    #: rule can transiently break a pinned consumer's data arrival and rely
    #: on later moves that never come), retry once with the conservative
    #: protections enabled, and if even that fails return the initial
    #: schedule unchanged.  Guarantees the result is never worse than doing
    #: nothing; the chosen rung is reported in ``LoadBalanceResult.safety_level``.
    retry_until_feasible: bool = True
    #: Differential-oracle mode: answer every steady-state query with the
    #: incremental conflict engine *and* the from-scratch reserved-pattern
    #: computation, raising :class:`~repro.errors.SchedulingError` on any
    #: divergence.  Slow; meant for the property-test layer.
    cross_check: bool = False
    #: Conflict-engine implementation answering the steady-state queries:
    #: ``"python"`` (per-object timelines) or ``"array"`` (flat numpy
    #: kernels, see :mod:`repro.core.kernels`).  Both are exactly
    #: equivalent; the default tracks :data:`repro.core.kernels.DEFAULT_ENGINE`
    #: at options-construction time.
    engine: str = field(default_factory=lambda: kernels.DEFAULT_ENGINE)
    #: Sampling stride of the ``cross_check`` oracle: every ``stride``-th
    #: cross-checked query runs the from-scratch comparison (1 = every
    #: query).  The oracle is quadratic, so checking every query at N=5000
    #: is intractable; a large prime stride keeps a run verifiable
    #: end-to-end while still sampling moves across the whole run.
    cross_check_stride: int = 1

    def __post_init__(self) -> None:
        """Reject contradictory flag combinations outright.

        These combinations used to be silently ineffective (the dependent
        switch simply never fired), which hid configuration mistakes in
        experiment sweeps; they now raise :class:`ConfigurationError`.
        """
        if self.protect_unmoved and not self.enforce_steady_state:
            raise ConfigurationError(
                "protect_unmoved requires enforce_steady_state: original-slot "
                "protection is applied through the steady-state acceptance test, "
                "so disabling the test silently disables the protection"
            )
        if self.retry_until_feasible and not self.verify_result:
            raise ConfigurationError(
                "retry_until_feasible requires verify_result: without the final "
                "feasibility check the retry ladder can never trigger; pass "
                "retry_until_feasible=False explicitly if verification is unwanted"
            )
        if self.engine not in kernels.ENGINE_KINDS:
            raise ConfigurationError(
                f"Unknown conflict-engine kind {self.engine!r}; expected one of "
                f"{kernels.ENGINE_KINDS}"
            )
        if self.cross_check_stride < 1:
            raise ConfigurationError(
                f"cross_check_stride must be >= 1, got {self.cross_check_stride}"
            )
        if self.cross_check_stride != 1 and not self.cross_check:
            raise ConfigurationError(
                "cross_check_stride requires cross_check: the stride only samples "
                "the differential oracle, so setting it without the oracle is "
                "silently ineffective"
            )


class LoadBalancer:
    """Runs Algorithm 3.2 of the paper on an initial schedule."""

    def __init__(self, schedule: Schedule, options: LoadBalancerOptions | None = None) -> None:
        if len(schedule) == 0:
            raise ConfigurationError("Cannot balance an empty schedule")
        self.schedule = schedule
        self.graph = schedule.graph
        self.architecture = schedule.architecture
        self.options = options or LoadBalancerOptions()
        #: ``(block id, sorted (current start, wcet) pairs, base offset)`` of
        #: the block being processed (see :meth:`_cache_block_pattern`).
        self._pattern_cache: tuple[int, list[tuple[float, float]], float] | None = None
        #: Shared counter behind :meth:`_should_cross_check` (stride sampling).
        self._cross_check_queries = 0

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run(self) -> LoadBalanceResult:
        """Execute the heuristic and return the full result.

        With ``retry_until_feasible`` (the default), an infeasible outcome
        triggers one conservative re-run (slot and downstream protection
        enabled) and, as a last resort, a no-op result returning the initial
        schedule unchanged — the heuristic is then guaranteed never to make
        the schedule worse, which is the paper's stated intent.
        """
        result = self._execute()
        if not (self.options.retry_until_feasible and self.options.verify_result):
            return result
        if check_schedule(result.balanced_schedule, check_memory=False).is_feasible:
            return result

        original_options = self.options
        already_conservative = (
            original_options.protect_unmoved and original_options.protect_downstream
        )
        if not already_conservative:
            from dataclasses import replace

            # The conservative rung enables every protection, including the
            # steady-state test the protections are implemented through (an
            # ablated run may have switched it off).
            self.options = replace(
                original_options,
                protect_unmoved=True,
                protect_downstream=True,
                enforce_steady_state=True,
            )
            try:
                conservative = self._execute()
            finally:
                self.options = original_options
            if check_schedule(
                conservative.balanced_schedule, check_memory=False
            ).is_feasible:
                conservative.safety_level = "conservative"
                conservative.warnings.append(
                    "the paper-faithful rule set produced an infeasible schedule; the result "
                    "comes from the conservative re-run (protect_unmoved + protect_downstream)"
                )
                return conservative

        noop = LoadBalanceResult(
            initial_schedule=self.schedule,
            balanced_schedule=self.schedule,
            decisions=[],
            blocks=result.blocks,
            policy=original_options.policy,
            warnings=result.warnings
            + [
                "balancing abandoned: no rule set produced a feasible balanced schedule, the "
                "initial schedule is returned unchanged"
            ],
            evaluations=result.evaluations,
            safety_level="no-op",
        )
        return noop

    def _execute(self) -> LoadBalanceResult:
        """One pass of Algorithm 3.2 under the current options."""
        blocks = build_blocks(self.schedule, self.options.block_options)
        state = BalancingState(hyper_period=self.graph.hyper_period)
        state.current = {
            instance.key: (instance.processor, instance.start)
            for instance in self.schedule.instances
        }
        for name in self.architecture.processor_names:
            state.processor(name)
            state.moved_patterns[name] = []
        # Both instance-edge directions come from the shared (cached) unrolled
        # expansion — per-instance re-expansion used to dominate large runs.
        in_edges: dict[tuple[str, int], list] = {key: [] for key in state.current}
        self._out_edges: dict[tuple[str, int], list] = {key: [] for key in state.current}
        for edge in instance_edges(self.graph):
            in_edges[edge.consumer].append(edge)
            self._out_edges[edge.producer].append(edge)
        state.in_edges = {key: tuple(edges) for key, edges in in_edges.items()}
        self._wcet = {name: task.wcet for name, task in self.graph.tasks.items()}
        self._block_of_instance: dict[tuple[str, int], int] = {}
        engine = state.attach_engine(
            self.architecture.processor_names, kind=self.options.engine
        )
        hyper_period = state.hyper_period
        self._cross_check_queries = 0
        # Seed the resident timelines in bulk: one sorted build per processor
        # instead of O(n²) repeated sorted-list insertion (the difference
        # between seconds and minutes at stress-xl scale).
        resident_seed: dict[str, list[tuple[float, float, object]]] = {
            name: [] for name in self.architecture.processor_names
        }
        for block in blocks:
            for key in block.member_keys:
                self._block_of_instance[key] = block.id
                _proc, start = state.position(key)
                resident_seed[block.processor].append(
                    (start % hyper_period, self._wcet[key[0]], key[0])
                )
        for name, items in resident_seed.items():
            if items:
                engine.reside_bulk(name, items)

        decisions: list[MoveDecision] = []
        warnings: list[str] = []
        self._evaluations = 0
        self._pattern_cache: tuple[int, list[tuple[float, float]], float] | None = None
        unprocessed: dict[int, Block] = {block.id: block for block in blocks}
        unprocessed_by_origin: dict[str, set[int]] = {
            name: set() for name in self.architecture.processor_names
        }
        for block in blocks:
            unprocessed_by_origin[block.processor].add(block.id)

        # The paper sorts the blocks by increasing start time once and
        # processes them in that order (start-time updates propagated during
        # the run never reorder them in the worked example; re-sorting
        # dynamically would also make the loop super-linear).
        for block in sorted(blocks, key=lambda b: (b.start, b.id)):
            del unprocessed[block.id]
            unprocessed_by_origin[block.processor].discard(block.id)
            for key in block.member_keys:
                _proc, start = state.position(key)
                engine.release(
                    block.processor, start % hyper_period, self._wcet[key[0]], key[0]
                )
            decision = self._process_block(
                block, state, unprocessed, unprocessed_by_origin, warnings
            )
            decisions.append(decision)

        balanced = self._rebuild_schedule(state)
        if self.options.verify_result:
            report = check_schedule(balanced, check_memory=False)
            if not report.is_feasible:
                warnings.extend(report.all_violations)

        return LoadBalanceResult(
            initial_schedule=self.schedule,
            balanced_schedule=balanced,
            decisions=decisions,
            blocks=blocks,
            policy=self.options.policy,
            warnings=warnings,
            evaluations=self._evaluations,
        )

    # ------------------------------------------------------------------
    # Block processing
    # ------------------------------------------------------------------
    def _current_start(self, block: Block, state: BalancingState) -> float:
        return min(state.position(key)[1] for key in block.member_keys)

    def _cache_block_pattern(self, block: Block, state: BalancingState) -> None:
        """Snapshot the member positions backing ``_block_pattern``.

        The candidate loop asks for the same block's pattern at many
        placement starts; the members' current positions are fixed until the
        move is applied, so their sorted ``(current start, wcet)`` pairs and
        the base offset are computed once per block instead of once per
        query (this mirrors :class:`~repro.core.cost.MoveContext` for the
        steady-state side of the evaluation).
        """
        members = sorted(block.members, key=lambda m: m.start)
        current = {m.key: state.current[m.key][1] for m in members}
        base = min(current.values())
        self._pattern_cache = (
            block.id,
            [(current[m.key], m.wcet) for m in members],
            base,
        )

    def _block_pattern(
        self, block: Block, placement_start: float, state: BalancingState
    ) -> list[tuple[float, float]]:
        """Circular busy pattern of ``block`` if placed at ``placement_start``."""
        cache = self._pattern_cache
        if cache is not None and cache[0] == block.id:
            _block_id, members, base = cache
            hyper_period = state.hyper_period
            pattern = [
                (float((placement_start + current - base) % hyper_period), wcet)
                for current, wcet in members
            ]
            if self.options.cross_check and self._should_cross_check():
                fresh = block.circular_pattern(
                    placement_start, state.hyper_period, state.current
                )
                if fresh != pattern:
                    raise SchedulingError(
                        f"pattern-cache divergence on block {block.label}: "
                        f"cached={pattern}, from-scratch={fresh}"
                    )
            return pattern
        return block.circular_pattern(placement_start, state.hyper_period, state.current)

    def _should_cross_check(self) -> bool:
        """Stride-sampled gate of the differential oracle.

        Counts every query that *would* be cross-checked and fires on every
        ``cross_check_stride``-th one (always, with the default stride of 1).
        One shared counter covers the steady-state and pattern-cache check
        sites, so a sampled run still probes both.
        """
        index = self._cross_check_queries
        self._cross_check_queries = index + 1
        return index % self.options.cross_check_stride == 0

    def _steady_ok(
        self,
        target: str,
        pattern: list[tuple[float, float]],
        state: BalancingState,
        unprocessed: dict[int, Block],
        unprocessed_by_origin: dict[str, set[int]],
        *,
        include_unmoved: bool,
        exclude_tasks: frozenset[str] = frozenset(),
    ) -> bool:
        """Steady-state acceptance through the incremental conflict engine.

        With ``cross_check`` enabled the from-scratch reserved-pattern
        computation is evaluated as well and any divergence raises — the
        differential oracle the property-test layer runs move-for-move.
        """
        assert state.engine is not None
        verdict = state.engine.compatible(
            target, pattern, include_resident=include_unmoved, exclude=exclude_tasks
        )
        if self.options.cross_check and self._should_cross_check():
            oracle = steady_state_compatible(
                pattern,
                self._reserved_patterns(
                    target,
                    state,
                    unprocessed,
                    unprocessed_by_origin,
                    include_unmoved=include_unmoved,
                    exclude_tasks=exclude_tasks,
                ),
                state.hyper_period,
            )
            if oracle != verdict:
                raise SchedulingError(
                    f"conflict-engine divergence on {target!r}: engine={verdict}, "
                    f"from-scratch oracle={oracle}, pattern={pattern}, "
                    f"include_unmoved={include_unmoved}, exclude={sorted(exclude_tasks)}"
                )
        return verdict

    def _reserved_patterns(
        self,
        target: str,
        state: BalancingState,
        unprocessed: dict[int, Block],
        unprocessed_by_origin: dict[str, set[int]],
        *,
        include_unmoved: bool,
        exclude_tasks: frozenset[str] = frozenset(),
    ) -> list[tuple[float, float]]:
        """Patterns a candidate placement on ``target`` must not collide with.

        This is the *from-scratch* computation, kept as the differential
        oracle of the incremental conflict engine (``cross_check``); the hot
        path queries ``state.engine`` instead.  ``include_unmoved`` adds the
        current slots of the blocks that still sit, unprocessed, on ``target``
        (used by the conservative ``protect_unmoved`` mode and by the safe
        fallback).  ``exclude_tasks`` removes the slots of instances that are
        about to be shifted together with the candidate (their relative
        position is preserved, so checking them would be spurious).
        """
        reserved = list(state.moved_patterns[target])
        if include_unmoved:
            hyper_period = state.hyper_period
            for block_id in unprocessed_by_origin[target]:
                for key in unprocessed[block_id].member_keys:
                    if key[0] in exclude_tasks:
                        continue
                    _proc, start = state.position(key)
                    reserved.append((float(start % hyper_period), self._wcet[key[0]]))
        return reserved

    def _update_shift_safe(
        self,
        block: Block,
        target: str,
        placement_start: float,
        gain: float,
        state: BalancingState,
        unprocessed: dict[int, Block],
        unprocessed_by_origin: dict[str, set[int]],
    ) -> bool:
        """Check that propagating a category-1 gain keeps later instances conflict-free.

        Accepting a gain of ``g`` shifts every unprocessed instance of the
        moved tasks ``g`` earlier (strict periodicity).  This must not make
        those instances' steady-state patterns collide with blocks already
        moved to their processors, with the candidate block's new pattern, or
        with the slots of unshifted unprocessed blocks sharing their
        processor.  Data arrivals of the shifted instances are *not* checked
        here — the paper's heuristic relies on later moves to restore them
        (exactly what happens in the worked example), and any residual
        violation is reported by the final feasibility check.
        """
        if gain <= _EPS or not block.is_first_category:
            return True
        hyper_period = state.hyper_period
        moved_tasks = frozenset(block.first_instance_tasks)
        candidate_pattern = self._block_pattern(block, placement_start, state)
        for other in unprocessed.values():
            for key in other.member_keys:
                if key[0] not in moved_tasks or block.contains(key):
                    continue
                proc, start = state.position(key)
                shifted = ((start - gain) % hyper_period, self._wcet[key[0]])
                if not self._steady_ok(
                    proc,
                    [shifted],
                    state,
                    unprocessed,
                    unprocessed_by_origin,
                    include_unmoved=True,
                    exclude_tasks=moved_tasks,
                ):
                    return False
                if proc == target and not steady_state_compatible(
                    [shifted], candidate_pattern, hyper_period
                ):
                    return False
        return True

    def _safe_fallback(
        self,
        block: Block,
        current_start: float,
        evaluations: dict[str, MoveEvaluation],
        state: BalancingState,
        unprocessed: dict[int, Block],
        unprocessed_by_origin: dict[str, set[int]],
        warnings: list[str],
    ) -> str:
        """Choose a processor for a block no candidate rule accepted.

        The block keeps its pinned start time; the fallback only picks *where*
        to seat it: the original processor if its pattern is still free there,
        otherwise the least-loaded processor whose moved and resident patterns
        it does not collide with, otherwise (degenerate case) the original
        processor with a warning.
        """
        pattern = self._block_pattern(block, current_start, state)
        ordered = [block.processor] + [
            name
            for name in sorted(
                self.architecture.processor_names,
                key=lambda n: state.processor(n).moved_memory,
            )
            if name != block.processor
        ]
        # All M processors answered in one engine call; with cross_check on,
        # each verdict is still validated (stride-sampled) against the
        # from-scratch oracle through the usual per-target path.
        assert state.engine is not None
        verdicts = state.engine.compatible_batch(
            ordered, pattern, include_resident=True
        )
        if self.options.cross_check:
            for name in ordered:
                per_target = self._steady_ok(
                    name,
                    pattern,
                    state,
                    unprocessed,
                    unprocessed_by_origin,
                    include_unmoved=True,
                )
                if per_target != verdicts[name]:
                    raise SchedulingError(
                        f"compatible_batch divergence on {name!r}: batch="
                        f"{verdicts[name]}, per-target={per_target}"
                    )
        passing = [name for name in ordered if verdicts[name]]
        for name in passing:
            if evaluations[name].feasible:
                return name
        if passing:
            return passing[0]
        warnings.append(
            f"block {block.label}: no processor can host its pattern at start "
            f"{current_start:g} without a steady-state conflict; kept on "
            f"{block.processor} (the final schedule will report the overlap)"
        )
        return block.processor

    def _downstream_safe(
        self,
        block: Block,
        target: str,
        placement_start: float,
        state: BalancingState,
        unprocessed: dict[int, Block],
    ) -> bool:
        """Conservative check that the move breaks no unprocessed consumer's timing."""
        current_start = self._current_start(block, state)
        member_keys = set(block.member_keys)
        for key in block.member_keys:
            _proc, member_start = state.position(key)
            new_end = placement_start + (member_start - current_start) + self._wcet[key[0]]
            for edge in self._out_edges[key]:
                if edge.consumer in member_keys:
                    continue
                consumer_block = self._block_of_instance.get(edge.consumer)
                if consumer_block is None or consumer_block not in unprocessed:
                    continue
                consumer_proc, consumer_start = state.position(edge.consumer)
                arrival = new_end + self.architecture.comm_time(
                    target, consumer_proc, edge.data_size
                )
                if arrival > consumer_start + _EPS:
                    return False
        return True

    def _process_block(
        self,
        block: Block,
        state: BalancingState,
        unprocessed: dict[int, Block],
        unprocessed_by_origin: dict[str, set[int]],
        warnings: list[str],
    ) -> MoveDecision:
        options = self.options
        current_start = self._current_start(block, state)
        proc_names = self.architecture.processor_names
        proc_index = {name: i for i, name in enumerate(proc_names)}

        # Target-independent work factored out of the M-way candidate loop:
        # the arrival bounds (MoveContext) and the circular-pattern snapshot.
        context = prepare_move_context(block, state, self.graph, self.architecture)
        self._cache_block_pattern(block, state)

        evaluations: dict[str, MoveEvaluation] = {}
        eligibility: dict[str, bool] = {}
        scores: dict[str, tuple[float, ...]] = {}
        for name in proc_names:
            proc_state = state.processor(name)
            eligible = (
                is_eligible(block, current_start, proc_state)
                if options.enforce_eligibility
                else True
            )
            evaluation = evaluate_move(
                block, name, state, self.graph, self.architecture, context=context
            )
            if options.cross_check:
                # The differential oracle also covers the cached-evaluation
                # path: a context-free evaluation must agree field-for-field.
                fresh = evaluate_move(block, name, state, self.graph, self.architecture)
                if fresh != evaluation:
                    raise SchedulingError(
                        f"move-context divergence on block {block.label} -> {name}: "
                        f"cached={evaluation}, from-scratch={fresh}"
                    )
            self._evaluations += 1
            evaluations[name] = evaluation
            eligibility[name] = eligible
            scores[name] = policy_score(evaluation, proc_state, options.policy)

        viable = [
            name for name in proc_names if eligibility[name] and evaluations[name].feasible
        ]
        ranked = sorted(
            viable,
            key=lambda name: (
                scores[name],
                1 if name == block.processor else 0,
                -proc_index[name],
            ),
            reverse=True,
        )

        lcm_results: dict[str, bool] = {}
        chosen: str | None = None
        for name in ranked:
            placement = evaluations[name].placement_start
            stays_in_place = (
                name == block.processor and abs(placement - current_start) <= _EPS
            )
            if options.enforce_lcm_condition and not stays_in_place:
                # Keeping a block exactly where the (repeatable) initial
                # schedule put it can never break the hyper-period repetition,
                # so the Block/LCM condition only gates actual displacements.
                ok = satisfies_lcm_condition(
                    block, placement, state.processor(name), state.hyper_period
                )
                lcm_results[name] = ok
                if not ok:
                    continue
            if options.enforce_steady_state:
                if not self._steady_ok(
                    name,
                    self._block_pattern(block, placement, state),
                    state,
                    unprocessed,
                    unprocessed_by_origin,
                    include_unmoved=options.protect_unmoved,
                ):
                    continue
                gain_here = (
                    max(0.0, current_start - placement) if block.is_first_category else 0.0
                )
                if not self._update_shift_safe(
                    block, name, placement, gain_here, state, unprocessed, unprocessed_by_origin
                ):
                    continue
            if options.protect_downstream and not self._downstream_safe(
                block, name, placement, state, unprocessed
            ):
                continue
            chosen = name
            break

        forced = False
        if chosen is None:
            # Fallback: the block keeps its pinned start time and is seated on
            # a processor whose patterns it does not collide with (original
            # processor first).  Data arrivals may still be violated when
            # producers moved away; the final feasibility check reports it.
            chosen = self._safe_fallback(
                block,
                current_start,
                evaluations,
                state,
                unprocessed,
                unprocessed_by_origin,
                warnings,
            )
            forced = True

        evaluation = evaluations[chosen]
        if forced:
            placement_start = current_start
        else:
            placement_start = evaluation.placement_start
        gain = max(0.0, current_start - placement_start) if block.is_first_category else 0.0

        updated = self._apply_move(block, chosen, placement_start, gain, state, unprocessed)

        candidates = tuple(
            CandidateReport(
                evaluation=evaluations[name],
                eligible=eligibility[name],
                lcm_ok=lcm_results.get(name),
                score=scores[name],
            )
            for name in proc_names
        )
        return MoveDecision(
            block=block,
            start_before=current_start,
            chosen_processor=chosen,
            placement_start=placement_start,
            gain=gain,
            candidates=candidates,
            forced=forced,
            updated_blocks=tuple(updated),
        )

    def _apply_move(
        self,
        block: Block,
        target: str,
        placement_start: float,
        gain: float,
        state: BalancingState,
        unprocessed: dict[int, Block],
    ) -> list[int]:
        """Update the running state after a block move; return updated block ids."""
        current_start = self._current_start(block, state)
        hyper_period = state.hyper_period
        engine = state.engine
        assert engine is not None
        # Relocate every member, preserving its offset relative to the block.
        new_end = placement_start
        for key in block.member_keys:
            _proc, member_start = state.position(key)
            offset = member_start - current_start
            new_member_start = placement_start + offset
            state.current[key] = (target, new_member_start)
            wcet = self._wcet[key[0]]
            pattern_offset = float(new_member_start % hyper_period)
            state.moved_patterns[target].append((pattern_offset, wcet))
            engine.occupy(target, pattern_offset, wcet, key[0])
            new_end = max(new_end, new_member_start + wcet)
        state.processor(target).register(block, placement_start, new_end)

        # Propagate a positive category-1 gain to the blocks holding later
        # instances of the moved tasks (strict periodicity).
        updated: list[int] = []
        if block.is_first_category and gain > _EPS:
            moved_tasks = set(block.first_instance_tasks)
            for other in unprocessed.values():
                shifted = False
                for key in other.member_keys:
                    if key[0] in moved_tasks and not block.contains(key):
                        proc, start = state.position(key)
                        state.current[key] = (proc, start - gain)
                        engine.shift(
                            proc,
                            start % hyper_period,
                            (start - gain) % hyper_period,
                            self._wcet[key[0]],
                            key[0],
                        )
                        shifted = True
                if shifted:
                    updated.append(other.id)
        # The block's members just moved: the pattern snapshot taken at the
        # top of _process_block no longer reflects state.current, so drop it
        # rather than rely on nobody asking for this block's pattern again.
        self._pattern_cache = None
        return updated

    # ------------------------------------------------------------------
    # Materialisation
    # ------------------------------------------------------------------
    def _rebuild_schedule(self, state: BalancingState) -> Schedule:
        instances = []
        for instance in self.schedule.instances:
            processor, start = state.position(instance.key)
            instances.append(
                ScheduledInstance(
                    task=instance.task,
                    index=instance.index,
                    processor=processor,
                    start=start,
                    wcet=instance.wcet,
                    memory=instance.memory,
                )
            )
        balanced = Schedule(self.graph, self.architecture, instances, ())
        if self.options.attach_communications:
            balanced = balanced.with_instances(
                balanced.instances, synthesize_communications(balanced)
            )
        return balanced


def balance_schedule(
    schedule: Schedule, options: LoadBalancerOptions | None = None
) -> LoadBalanceResult:
    """Convenience function: run :class:`LoadBalancer` on ``schedule``."""
    return LoadBalancer(schedule, options).run()
