"""Flat-array occupancy kernels: the vectorised steady-state hot path.

At paper scale (N≈40) the per-object :class:`~repro.core.occupancy.OccupancyTimeline`
is plenty; at the ROADMAP north-star scale (N=5k–50k) the balancer issues
millions of overlap queries and the per-piece Python loops dominate the run.
This module keeps the same occupancy information as **parallel numpy arrays**
— piece starts, ends, the running prefix maximum of ends and interned owner
ids — so that

* one query against one timeline is a vectorised ``searchsorted`` plus a
  prefix-maximum comparison (no Python-level scan),
* a whole candidate pattern (every piece of a block, or every candidate
  offset the balancer wants to probe) is evaluated in **one**
  :meth:`ArrayTimeline.overlaps_batch` call, and
* all M target processors of the safe fallback are answered through
  :meth:`ArrayConflictEngine.compatible_batch`.

Semantics are *identical* to the Python engine by construction: every kernel
normalises circular intervals through the same
:func:`repro.scheduling.periodic_intervals.normalize_pieces` rule, applies
the same :data:`repro.epsilon.EPSILON` comparisons, and float64 numpy
arithmetic (``%``, ``max``, comparisons) is bit-identical to Python floats.
The equivalence is pinned three ways: the ``cross_check`` oracle of
:class:`repro.core.load_balancer.LoadBalancer`, the property suite in
``tests/test_kernels.py``, and the byte-identical E6/E7 tables required by
ISSUE 10.

The module also hosts :func:`clearing_shift_batch`, the initial scheduler's
pattern-probe kernel: the first-conflict clearing shift of a candidate task
pattern against a processor's busy pieces, evaluated as one (count × pieces)
matrix instead of nested Python loops.

Engine selection
----------------
:func:`make_engine` builds either engine kind; :data:`DEFAULT_ENGINE` is what
``LoadBalancerOptions.engine`` defaults to (read at options-construction
time, so tests can monkeypatch it to re-run whole experiments on the Python
engine).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from repro.errors import SchedulingError
from repro.scheduling.periodic_intervals import EPSILON as _EPS
from repro.scheduling.periodic_intervals import clearing_shift, normalize_pieces

__all__ = [
    "DEFAULT_ENGINE",
    "ENGINE_KINDS",
    "ArrayTimeline",
    "ArrayConflictEngine",
    "clearing_shift_batch",
    "make_engine",
]

#: Engine kinds accepted by ``LoadBalancerOptions.engine``.
ENGINE_KINDS: tuple[str, ...] = ("python", "array")

#: The engine new ``LoadBalancerOptions`` instances default to.  Module-level
#: (not baked into the dataclass default) so a monkeypatch flips every
#: subsequently built options object — that is how the E6/E7 byte-identity
#: test replays whole experiments on the Python engine.
DEFAULT_ENGINE: str = "array"

#: Owner id stored for pieces added without an owner tag.
_NO_OWNER = 0


class ArrayTimeline:
    """Flat-array mirror of :class:`~repro.core.occupancy.OccupancyTimeline`.

    Pieces live in parallel numpy arrays sorted by start; owners (task names
    or ``None``) are interned to integer ids so exclusion tests vectorise as
    ``np.isin``.  All epsilon decisions reuse the shared constants, so every
    query answers exactly what the Python timeline would.
    """

    __slots__ = (
        "period",
        "_size",
        "_starts",
        "_ends",
        "_prefix_max",
        "_owner_ids",
        "_id_of_owner",
        "_owner_of_id",
    )

    def __init__(self, period: float) -> None:
        if period <= 0:
            raise SchedulingError(f"Occupancy period must be positive, got {period}")
        self.period = float(period)
        self._size = 0
        self._starts = np.empty(8, dtype=np.float64)
        self._ends = np.empty(8, dtype=np.float64)
        self._prefix_max = np.empty(8, dtype=np.float64)
        self._owner_ids = np.empty(8, dtype=np.int64)
        self._id_of_owner: dict[object, int] = {None: _NO_OWNER}
        self._owner_of_id: list[object] = [None]

    def __len__(self) -> int:
        return self._size

    # ------------------------------------------------------------------
    # Owner interning
    # ------------------------------------------------------------------
    def _intern(self, owner: object) -> int:
        owner_id = self._id_of_owner.get(owner)
        if owner_id is None:
            owner_id = len(self._owner_of_id)
            self._id_of_owner[owner] = owner_id
            self._owner_of_id.append(owner)
        return owner_id

    def _exclude_ids(self, exclude: Iterable) -> np.ndarray | None:
        """Interned ids of ``exclude`` owners already present, or ``None``."""
        ids = [
            self._id_of_owner[owner] for owner in exclude if owner in self._id_of_owner
        ]
        return np.asarray(ids, dtype=np.int64) if ids else None

    # ------------------------------------------------------------------
    # Introspection (mirrors OccupancyTimeline for the property suite)
    # ------------------------------------------------------------------
    def intervals(self) -> list[tuple[float, float, object]]:
        """Stored ``(start, end, owner)`` pieces in start order."""
        n = self._size
        return [
            (float(self._starts[i]), float(self._ends[i]), self._owner_of_id[int(self._owner_ids[i])])
            for i in range(n)
        ]

    @property
    def busy_time(self) -> float:
        """Sum of piece lengths (double-counts overlapping pieces)."""
        return sum(
            float(self._ends[i]) - float(self._starts[i]) for i in range(self._size)
        )

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def _grow(self, extra: int) -> None:
        needed = self._size + extra
        capacity = len(self._starts)
        if needed <= capacity:
            return
        while capacity < needed:
            capacity *= 2
        for name in ("_starts", "_ends", "_prefix_max", "_owner_ids"):
            old = getattr(self, name)
            fresh = np.empty(capacity, dtype=old.dtype)
            fresh[: self._size] = old[: self._size]
            setattr(self, name, fresh)

    def _rebuild_prefix(self) -> None:
        n = self._size
        if n:
            np.maximum.accumulate(self._ends[:n], out=self._prefix_max[:n])

    def add(self, offset: float, length: float, owner: object = None) -> None:
        """Insert the circular interval ``[offset, offset + length)``."""
        owner_id = self._intern(owner)
        for begin, end in normalize_pieces(offset, length, self.period):
            self._grow(1)
            n = self._size
            index = int(np.searchsorted(self._starts[:n], begin, side="left"))
            for arr, value in (
                (self._starts, begin),
                (self._ends, end),
                (self._owner_ids, owner_id),
            ):
                arr[index + 1 : n + 1] = arr[index:n].copy()
                arr[index] = value
            self._size = n + 1
            self._rebuild_prefix()

    def extend(self, items: Iterable[tuple[float, float, object]]) -> None:
        """Bulk-insert circular ``(offset, length, owner)`` intervals.

        One stable merge-sort pass over old plus new pieces and one prefix
        accumulation — the array twin of ``OccupancyTimeline.extend``.
        """
        pieces: list[tuple[float, float, int]] = []
        for offset, length, owner in items:
            owner_id = self._intern(owner)
            for begin, end in normalize_pieces(offset, length, self.period):
                pieces.append((begin, end, owner_id))
        if not pieces:
            return
        n = self._size
        new_starts = np.asarray([p[0] for p in pieces], dtype=np.float64)
        new_ends = np.asarray([p[1] for p in pieces], dtype=np.float64)
        new_owner_ids = np.asarray([p[2] for p in pieces], dtype=np.int64)
        starts = np.concatenate([self._starts[:n], new_starts])
        ends = np.concatenate([self._ends[:n], new_ends])
        owner_ids = np.concatenate([self._owner_ids[:n], new_owner_ids])
        order = np.argsort(starts, kind="stable")
        total = len(order)
        capacity = len(self._starts)
        while capacity < total:
            capacity *= 2
        if capacity != len(self._starts):
            self._starts = np.empty(capacity, dtype=np.float64)
            self._ends = np.empty(capacity, dtype=np.float64)
            self._prefix_max = np.empty(capacity, dtype=np.float64)
            self._owner_ids = np.empty(capacity, dtype=np.int64)
        self._size = total
        self._starts[:total] = starts[order]
        self._ends[:total] = ends[order]
        self._owner_ids[:total] = owner_ids[order]
        self._rebuild_prefix()

    def remove(self, offset: float, length: float, owner: object = None) -> None:
        """Remove a previously added interval (epsilon-matched, like the Python engine).

        Raises
        ------
        SchedulingError
            When no matching piece is stored.
        """
        owner_id = self._id_of_owner.get(owner, -1)
        for begin, end in normalize_pieces(offset, length, self.period):
            n = self._size
            index = int(np.searchsorted(self._starts[:n], begin - _EPS, side="left"))
            found = -1
            while index < n and self._starts[index] <= begin + _EPS:
                if (
                    abs(float(self._ends[index]) - end) <= _EPS
                    and int(self._owner_ids[index]) == owner_id
                ):
                    found = index
                    break
                index += 1
            if found < 0:
                raise SchedulingError(
                    f"Occupancy piece [{begin:g}, {end:g}) of {owner!r} is not stored; "
                    "incremental bookkeeping diverged"
                )
            for arr in (self._starts, self._ends, self._owner_ids):
                arr[found : n - 1] = arr[found + 1 : n].copy()
            self._size = n - 1
            self._rebuild_prefix()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def overlaps(
        self, offset: float, length: float, exclude: frozenset | Iterable = frozenset()
    ) -> bool:
        """``True`` when the circular interval hits a stored piece.

        Same contract as ``OccupancyTimeline.overlaps``.  Without exclusions
        the answer is a single prefix-maximum comparison: with ``i`` the
        number of stored pieces starting strictly before the query window's
        high end, a hit exists iff ``max(ends[:i]) > low``.
        """
        n = self._size
        if length <= _EPS or not n:
            return False
        exclude_ids = self._exclude_ids(exclude) if exclude else None
        starts = self._starts[:n]
        for query_start, query_end in normalize_pieces(offset, length, self.period):
            low = query_start + _EPS
            high = query_end - _EPS
            i = int(np.searchsorted(starts, high, side="left"))
            if i == 0:
                continue
            if exclude_ids is None:
                if self._prefix_max[i - 1] > low:
                    return True
            else:
                hits = self._ends[:i] > low
                if hits.any() and bool(
                    (~np.isin(self._owner_ids[:i][hits], exclude_ids)).any()
                ):
                    return True
        return False

    def overlaps_batch(
        self,
        pattern: Sequence[tuple[float, float]],
        exclude: frozenset | Iterable = frozenset(),
    ) -> np.ndarray:
        """Per-interval overlap verdicts for a whole pattern, in one sweep.

        ``pattern`` is a sequence of circular ``(offset, length)`` intervals;
        the result is a boolean array of the same length, element ``j`` being
        exactly ``self.overlaps(*pattern[j], exclude)``.  All normalised
        query pieces go through one vectorised ``searchsorted``.
        """
        verdicts = np.zeros(len(pattern), dtype=bool)
        n = self._size
        if not n or not len(pattern):
            return verdicts
        lows: list[float] = []
        highs: list[float] = []
        origins: list[int] = []
        for j, (offset, length) in enumerate(pattern):
            if length <= _EPS:
                continue
            for query_start, query_end in normalize_pieces(offset, length, self.period):
                lows.append(query_start + _EPS)
                highs.append(query_end - _EPS)
                origins.append(j)
        if not lows:
            return verdicts
        low_arr = np.asarray(lows, dtype=np.float64)
        high_arr = np.asarray(highs, dtype=np.float64)
        origin_arr = np.asarray(origins, dtype=np.int64)
        window = np.searchsorted(self._starts[:n], high_arr, side="left")
        nonempty = window > 0
        exclude_ids = self._exclude_ids(exclude) if exclude else None
        if exclude_ids is None:
            hit = nonempty.copy()
            hit[nonempty] = (
                self._prefix_max[window[nonempty] - 1] > low_arr[nonempty]
            )
        else:
            hit = np.zeros(len(low_arr), dtype=bool)
            for k in np.flatnonzero(nonempty):
                i = int(window[k])
                hits = self._ends[:i] > low_arr[k]
                hit[k] = bool(hits.any()) and bool(
                    (~np.isin(self._owner_ids[:i][hits], exclude_ids)).any()
                )
        np.logical_or.at(verdicts, origin_arr, hit)
        return verdicts

    def overlaps_pattern(
        self,
        pattern: Iterable[tuple[float, float]],
        exclude: frozenset | Iterable = frozenset(),
    ) -> bool:
        """``True`` when any ``(offset, length)`` of ``pattern`` hits a piece."""
        return bool(self.overlaps_batch(list(pattern), exclude).any())


class ArrayConflictEngine:
    """Drop-in :class:`~repro.core.occupancy.ConflictEngine` on array timelines.

    Same public surface (``occupy``/``reside``/``reside_bulk``/``release``/
    ``shift``/``compatible``/``compatible_batch``/pattern introspection), so
    ``BalancingState.attach_engine(kind=...)`` can swap engines without the
    balancer noticing anything but the speed.
    """

    __slots__ = ("hyper_period", "moved", "resident")

    def __init__(self, hyper_period: int, processors: Iterable[str]) -> None:
        if hyper_period <= 0:
            raise SchedulingError(
                f"Conflict engine needs a positive hyper-period, got {hyper_period}"
            )
        self.hyper_period = int(hyper_period)
        self.moved: dict[str, ArrayTimeline] = {}
        self.resident: dict[str, ArrayTimeline] = {}
        for name in processors:
            self.moved[name] = ArrayTimeline(self.hyper_period)
            self.resident[name] = ArrayTimeline(self.hyper_period)

    # ------------------------------------------------------------------
    # Incremental updates
    # ------------------------------------------------------------------
    def occupy(self, processor: str, offset: float, length: float, owner: object = None) -> None:
        """Record a pattern of a block accepted (moved) onto ``processor``."""
        self.moved[processor].add(offset, length, owner)

    def reside(self, processor: str, offset: float, length: float, owner: object) -> None:
        """Record the current slot of a not-yet-processed instance."""
        self.resident[processor].add(offset, length, owner)

    def reside_bulk(
        self, processor: str, items: Iterable[tuple[float, float, object]]
    ) -> None:
        """Record many resident slots at once (initial-schedule seeding)."""
        self.resident[processor].extend(items)

    def release(self, processor: str, offset: float, length: float, owner: object) -> None:
        """Drop a resident slot (its block is about to be processed)."""
        self.resident[processor].remove(offset, length, owner)

    def shift(
        self,
        processor: str,
        old_offset: float,
        new_offset: float,
        length: float,
        owner: object,
    ) -> None:
        """Move a resident slot (a category-1 gain shifted the instance)."""
        self.resident[processor].remove(old_offset, length, owner)
        self.resident[processor].add(new_offset, length, owner)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def compatible(
        self,
        processor: str,
        pattern: Iterable[tuple[float, float]],
        *,
        include_resident: bool = False,
        exclude: frozenset = frozenset(),
    ) -> bool:
        """Exact steady-state acceptance test against ``processor``."""
        fixed = pattern if isinstance(pattern, Sequence) else list(pattern)
        if bool(self.moved[processor].overlaps_batch(fixed).any()):
            return False
        if include_resident and bool(
            self.resident[processor].overlaps_batch(fixed, exclude).any()
        ):
            return False
        return True

    def compatible_batch(
        self,
        processors: Iterable[str],
        pattern: Iterable[tuple[float, float]],
        *,
        include_resident: bool = False,
        exclude: frozenset = frozenset(),
    ) -> dict[str, bool]:
        """:meth:`compatible` for all M target processors in one call.

        Each processor's verdict is two vectorised pattern sweeps (moved +
        resident timeline); the safe fallback of the balancer asks this for
        the full processor list instead of looping per-piece in Python.
        """
        fixed = list(pattern)
        return {
            name: self.compatible(
                name, fixed, include_resident=include_resident, exclude=exclude
            )
            for name in processors
        }

    def moved_pattern(self, processor: str) -> list[tuple[float, float]]:
        """Linear pieces of the moved timeline (introspection/tests)."""
        return [(s, e - s) for s, e, _owner in self.moved[processor].intervals()]

    def resident_pattern(self, processor: str) -> list[tuple[float, float]]:
        """Linear pieces of the resident timeline (introspection/tests)."""
        return [(s, e - s) for s, e, _owner in self.resident[processor].intervals()]


def _first_overlap_in(
    offset: float,
    length: float,
    busy_starts: np.ndarray,
    busy_lengths: np.ndarray,
    period: float,
) -> int:
    """Index of the first stored piece overlapping ``offset`` (or -1).

    ``length > EPSILON`` is the caller's responsibility; the elementwise
    test is exactly :func:`circular_overlap` over the given column slice.
    """
    if busy_starts.size == 0:
        return -1
    valid = busy_lengths > _EPS
    overlap = valid & (
        (length >= period - _EPS)
        | (busy_lengths >= period - _EPS)
        | (np.mod(offset - busy_starts, period) < busy_lengths - _EPS)
        | (np.mod(busy_starts - offset, period) < length - _EPS)
    )
    first = int(overlap.argmax())
    return first if overlap[first] else -1


def clearing_shift_batch(
    offsets: np.ndarray,
    length: float,
    busy_starts: np.ndarray,
    busy_lengths: np.ndarray,
    period: float,
    max_busy_length: float | None = None,
) -> float:
    """First-conflict clearing shift of a candidate pattern, vectorised.

    Mirrors the initial scheduler's reference scan exactly: rows are the
    pattern offsets in instance order, columns the busy pieces in stored
    order (ascending start), and the first overlapping pair in row-major
    order determines the shift (computed by the scalar
    :func:`repro.scheduling.periodic_intervals.clearing_shift`, preserving
    its inseparable-intervals :class:`SchedulingError`).  Returns ``0.0``
    when no pair overlaps.  The elementwise overlap test applies the same
    :data:`EPSILON` rules as :func:`circular_overlap`.

    When ``busy_starts`` is sorted ascending and ``max_busy_length`` bounds
    every busy length, the scan is windowed: a piece at ``b`` can only
    overlap the candidate at ``o`` when ``b`` lies in the circular interval
    ``(o - max_busy_length - EPSILON, o + length)``, so each row reduces to
    (at most two) ``searchsorted`` slices instead of all ``n`` columns.
    The windowed and dense paths return identical results (pinned by the
    property suite); the window only prunes pieces the dense test would
    reject anyway.
    """
    if length <= _EPS or offsets.size == 0 or busy_starts.size == 0:
        return 0.0
    n = busy_starts.size
    window = (
        max_busy_length + length + 2.0 * _EPS if max_busy_length is not None else None
    )
    if window is None or window >= period:
        # Dense scan: every (instance, piece) pair in row-major order.
        busy_valid = busy_lengths > _EPS
        trivially = busy_valid & (
            (length >= period - _EPS) | (busy_lengths >= period - _EPS)
        )
        x = np.mod(offsets[:, None] - busy_starts[None, :], period)
        y = np.mod(busy_starts[None, :] - offsets[:, None], period)
        overlap = busy_valid[None, :] & (
            trivially[None, :]
            | (x < (busy_lengths - _EPS)[None, :])
            | (y < length - _EPS)
        )
        flat = overlap.ravel()
        first = int(flat.argmax())
        if not flat[first]:
            return 0.0
        row, col = divmod(first, n)
        return clearing_shift(
            float(offsets[row]),
            length,
            float(busy_starts[col]),
            float(busy_lengths[col]),
            period,
        )

    assert max_busy_length is not None
    for row in range(offsets.size):
        offset = float(offsets[row])
        low = (offset - max_busy_length - _EPS) % period
        high = (offset + length) % period
        if low <= high:
            lo_index = int(np.searchsorted(busy_starts, low, side="left"))
            hi_index = int(np.searchsorted(busy_starts, high, side="right"))
            segments = ((lo_index, hi_index),)
        else:
            # The window wraps: ascending stored order visits the
            # low-offset segment first.
            hi_index = int(np.searchsorted(busy_starts, high, side="right"))
            lo_index = int(np.searchsorted(busy_starts, low, side="left"))
            segments = ((0, hi_index), (lo_index, n))
        for begin, stop in segments:
            if begin >= stop:
                continue
            col = _first_overlap_in(
                offset,
                length,
                busy_starts[begin:stop],
                busy_lengths[begin:stop],
                period,
            )
            if col >= 0:
                col += begin
                return clearing_shift(
                    offset,
                    length,
                    float(busy_starts[col]),
                    float(busy_lengths[col]),
                    period,
                )
    return 0.0


def make_engine(
    kind: str, hyper_period: int, processors: Iterable[str]
):
    """Build a conflict engine of the requested ``kind``.

    ``"python"`` returns the per-object
    :class:`~repro.core.occupancy.ConflictEngine`; ``"array"`` the
    flat-array :class:`ArrayConflictEngine`.  Both expose the same surface.
    """
    if kind == "python":
        from repro.core.occupancy import ConflictEngine

        return ConflictEngine(hyper_period, processors)
    if kind == "array":
        return ArrayConflictEngine(hyper_period, processors)
    raise SchedulingError(
        f"Unknown conflict-engine kind {kind!r}; expected one of {ENGINE_KINDS}"
    )
