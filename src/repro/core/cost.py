"""Gain and cost function of the load-balancing heuristic (eqs. (3) and (5)).

For a block ``A`` currently on processor ``Pi`` and a candidate target
processor ``Pj`` the heuristic computes:

* the **gain** ``G_{Pi->Pj}(A) = S_old - S_new`` (eq. (3)): the decrease of
  the block's start time if it were moved to ``Pj``.  The new start time is
  the earliest time at which every member of the block has received the data
  of its external producers (current completion time plus one communication
  time when the producer sits on a different processor than ``Pj``) and the
  last block already moved to ``Pj`` has completed;
* the **cost function** ``λ_{Pi->Pj}(A)`` (eq. (5)) combining the gain with
  the memory already moved to ``Pj``: a larger gain and a smaller memory
  amount both increase ``λ``.

Category-2 blocks (later instances) cannot change their start time: their
start is pinned by strict periodicity.  A move of such a block is *feasible*
only when the pinned start can be honoured on the target (data arrives and
the processor is free in time); otherwise the candidate is discarded — this
is what step 6 of the paper's worked example does when it writes ``λ = 0/6``.

Several scoring policies are provided because the paper's eq. (5) and its
worked example are not perfectly consistent (see ``DESIGN.md``, section 2):

``RATIO``
    ``λ = (G+1)/Σm`` with ``λ = G+1`` when nothing has been moved to the
    target yet.  This matches steps 1, 2, 4, 5 and 6 of the example and is
    the library default.
``RATIO_STRICT``
    Literal eq. (5): ``λ = G`` when nothing has been moved to the target yet.
``LEXICOGRAPHIC``
    Maximise the gain first, then minimise the moved memory.  This policy
    reproduces *every decision* of the worked example including the final
    makespan of 14 (see experiment E1).
``MEMORY_ONLY``
    Ignore the gain and minimise the moved memory — the variant analysed by
    Theorem 2 (the ``(2 - 1/M)``-approximation).
``LOAD_ONLY``
    Ignore memory and minimise the execution time already moved to the
    target — a classic memory-blind load balancer used as a baseline.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.blocks import Block
from repro.core.conditions import BalancingState, ProcessorState
from repro.epsilon import EPSILON
from repro.model.architecture import Architecture
from repro.model.graph import TaskGraph
from repro.scheduling.unrolling import predecessors_of_instance

__all__ = [
    "CostPolicy",
    "MoveContext",
    "MoveEvaluation",
    "evaluate_move",
    "policy_score",
    "prepare_move_context",
]

_EPS = EPSILON


class CostPolicy(enum.Enum):
    """Selectable interpretations of the paper's cost function."""

    RATIO = "ratio"
    RATIO_STRICT = "ratio_strict"
    LEXICOGRAPHIC = "lexicographic"
    MEMORY_ONLY = "memory_only"
    LOAD_ONLY = "load_only"


@dataclass(frozen=True, slots=True)
class MoveEvaluation:
    """Outcome of evaluating one ``(block, target processor)`` candidate."""

    block_id: int
    source: str
    target: str
    #: ``True`` when the move honours the block's (possibly pinned) start time.
    feasible: bool
    #: Start-time gain ``S_old - S_new`` (0 for feasible category-2 moves,
    #: negative for infeasible candidates — kept for reporting).
    gain: float
    #: Start time the block would get on the target.
    placement_start: float
    #: Memory already moved to the target before this move.
    target_memory: float
    #: Execution time already moved to the target before this move.
    target_execution: float
    #: Value of the ratio cost function λ (``None`` for non-ratio policies).
    lambda_value: float | None = None

    @property
    def placement_end(self) -> float:
        """Not meaningful on its own; the balancer adds the block span."""
        return self.placement_start


@dataclass(frozen=True, slots=True)
class MoveContext:
    """Target-independent part of every ``(block, processor)`` evaluation.

    Evaluating one block against ``M`` candidate processors repeats the same
    walk over the block's members and external input edges ``M`` times; only
    the communication term of each arrival depends on the target — and, the
    architecture being homogeneous, it takes exactly two values per edge:
    zero when the target *is* the producer's processor and one fixed
    cross-processor time otherwise.  The context therefore keeps, per
    producer processor, the maximum arrival bound for both cases; a
    per-target evaluation reduces to one pass over those maxima.

    Built once per block by :func:`prepare_move_context` (the load balancer's
    candidate loop does this) and valid as long as ``state.current`` does not
    change — i.e. until the block's move is applied.
    """

    block_id: int
    current_start: float
    #: ``(producer processor, local bound, remote bound)`` triples where the
    #: bounds are maxima of ``producer_end [+ comm] - member_offset`` over the
    #: external input edges produced on that processor.
    bounds: tuple[tuple[str, float, float], ...]


def prepare_move_context(
    block: Block,
    state: BalancingState,
    graph: TaskGraph,
    architecture: Architecture,
) -> MoveContext:
    """Precompute the target-independent arrival bounds of ``block``.

    The block's *current* start time and per-member offsets are taken from
    ``state.current`` (they may have been decreased by earlier category-1
    gains); producer completion times are also read from ``state.current`` so
    that blocks already moved are seen at their new positions and blocks not
    yet processed at their original ones.
    """
    member_keys = set(block.member_keys)
    positions = {key: state.position(key) for key in member_keys}
    current_start = min(start for _proc, start in positions.values())

    comm = architecture.comm
    local: dict[str, float] = {}
    remote: dict[str, float] = {}
    for key in member_keys:
        _proc, member_start = positions[key]
        offset = member_start - current_start
        in_edges = state.in_edges.get(key)
        if in_edges is None:
            in_edges = predecessors_of_instance(graph, key[0], key[1])
        for edge in in_edges:
            if edge.producer in member_keys:
                continue  # intra-block dependence: moves with the block
            producer_proc, producer_start = state.position(edge.producer)
            producer_task = graph.task(edge.producer[0])
            producer_end = producer_start + producer_task.wcet
            # Same operation order as the unbatched evaluation
            # ((producer_end + comm) - offset) so the cached bounds are
            # bit-identical to what per-target evaluation used to compute.
            local_val = (producer_end + 0.0) - offset
            remote_val = (producer_end + comm.time(edge.data_size)) - offset
            if producer_proc not in local or local_val > local[producer_proc]:
                local[producer_proc] = local_val
            if producer_proc not in remote or remote_val > remote[producer_proc]:
                remote[producer_proc] = remote_val

    return MoveContext(
        block_id=block.id,
        current_start=current_start,
        bounds=tuple((proc, local[proc], remote[proc]) for proc in local),
    )


def evaluate_move(
    block: Block,
    target: str,
    state: BalancingState,
    graph: TaskGraph,
    architecture: Architecture,
    context: MoveContext | None = None,
) -> MoveEvaluation:
    """Evaluate moving ``block`` to ``target`` under the current state.

    ``context`` carries the precomputed target-independent arrival bounds
    (see :class:`MoveContext`); when omitted — or stale, i.e. built for a
    different block — it is rebuilt from ``state.current``, which reproduces
    the original from-scratch evaluation.
    """
    if context is None or context.block_id != block.id:
        context = prepare_move_context(block, state, graph, architecture)
    current_start = context.current_start

    # Earliest start implied by data arrivals of external producers.
    data_bound = 0.0
    for producer_proc, local_val, remote_val in context.bounds:
        bound = local_val if producer_proc == target else remote_val
        if bound > data_bound:
            data_bound = bound

    proc_state = state.processor(target)
    earliest = max(0.0, data_bound, proc_state.last_end)

    if block.is_first_category:
        gain = current_start - earliest
        feasible = gain >= -_EPS
        placement_start = earliest if feasible else current_start
        gain = max(gain, 0.0) if feasible else gain
    else:
        # Pinned by strict periodicity: the block must start exactly at its
        # current start time; the move is feasible only if everything is
        # ready by then.
        feasible = earliest <= current_start + _EPS
        placement_start = current_start
        gain = 0.0 if feasible else current_start - earliest

    return MoveEvaluation(
        block_id=block.id,
        source=block.processor,
        target=target,
        feasible=feasible,
        gain=gain,
        placement_start=placement_start,
        target_memory=proc_state.moved_memory,
        target_execution=proc_state.moved_execution,
        lambda_value=_ratio_lambda(gain, proc_state, strict=False),
    )


def _ratio_lambda(gain: float, proc_state: ProcessorState, *, strict: bool) -> float:
    """Ratio form of eq. (5) for the given gain and target state."""
    if proc_state.is_empty or proc_state.moved_memory <= _EPS:
        return gain if strict else gain + 1.0
    return (gain + 1.0) / proc_state.moved_memory


def policy_score(
    evaluation: MoveEvaluation, proc_state: ProcessorState, policy: CostPolicy
) -> tuple[float, ...]:
    """Comparable score of a candidate under ``policy`` (larger is better).

    The returned tuples are only comparable within a single policy; the load
    balancer appends its own tie-break keys (current processor first, then
    processor declaration order).
    """
    if policy is CostPolicy.RATIO:
        return (_ratio_lambda(evaluation.gain, proc_state, strict=False),)
    if policy is CostPolicy.RATIO_STRICT:
        return (_ratio_lambda(evaluation.gain, proc_state, strict=True),)
    if policy is CostPolicy.LEXICOGRAPHIC:
        return (evaluation.gain, -proc_state.moved_memory)
    if policy is CostPolicy.MEMORY_ONLY:
        return (-proc_state.moved_memory,)
    if policy is CostPolicy.LOAD_ONLY:
        return (evaluation.gain, -proc_state.moved_execution)
    raise AssertionError(f"Unhandled cost policy {policy!r}")  # pragma: no cover
