"""Block construction (section 3.1 of the paper).

The load-balancing heuristic does not move individual task instances but
*blocks*: groups of dependent instances scheduled back-to-back on the same
processor, built so that moving the whole block only creates (or suppresses)
communications at its boundary.  Blocks come in two categories:

* **category 1** — the block contains only *first* instances of its tasks;
  moving such a block may decrease its start time (and therefore the total
  execution time);
* **category 2** — the block's first member is a later instance; its start
  time is pinned by strict periodicity to the start of the corresponding
  first instances and can only decrease when the category-1 block holding
  those first instances decreases its own start.

The grouping rule implemented here follows the definition and the worked
example of the paper:

* members are scheduled on the same processor;
* members are contiguous in the schedule (each next member starts exactly
  when the previous one ends, within ``gap_tolerance``);
* each added member is connected by an instance-level dependence edge to some
  member already in the group (so the group is a connected piece of the
  instance DAG — in the example ``b1`` and ``c1`` form a block because ``c``
  depends on ``b`` and they run back-to-back, while the four instances of
  ``a`` are four singleton blocks);
* a group that currently contains only first instances is closed before a
  later instance would be added (so category-1 blocks never mix with later
  instances, as required by the paper's category definitions).
"""

from __future__ import annotations

import enum
from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.epsilon import EPSILON
from repro.errors import SchedulingError
from repro.scheduling.schedule import Schedule, ScheduledInstance
from repro.scheduling.unrolling import instance_edges

__all__ = ["BlockCategory", "Block", "BlockBuildOptions", "build_blocks"]

_EPS = EPSILON


class BlockCategory(enum.IntEnum):
    """The two block categories of the paper (section 3.1)."""

    #: Contains only first instances; its start time may decrease when moved.
    FIRST_INSTANCES = 1
    #: Starts with a later instance; its start time is pinned by strict periodicity.
    LATER_INSTANCES = 2


@dataclass(frozen=True, slots=True)
class BlockBuildOptions:
    """Options of :func:`build_blocks`."""

    #: Maximum idle gap (in time units) tolerated between consecutive members.
    #: The paper's example groups only back-to-back instances; keep 0.0 unless
    #: you want coarser blocks.
    gap_tolerance: float = 0.0
    #: When ``False``, dependence connectivity is not required and any
    #: contiguous run of instances forms a block (useful for ablations).
    require_dependence: bool = True


@dataclass(frozen=True, slots=True)
class Block:
    """A group of instances moved as one unit by the load balancer."""

    id: int
    processor: str
    members: tuple[ScheduledInstance, ...]
    category: BlockCategory
    #: Cached aggregates (the members tuple is immutable, so they are fixed
    #: at construction).  ``member_keys`` and ``start`` are on the balancer's
    #: innermost candidate loop — recomputing the sort per access used to be
    #: a top-3 profile entry at stress scale.
    _member_keys: tuple[tuple[str, int], ...] = field(
        init=False, repr=False, compare=False
    )
    _start: float = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if not self.members:
            raise SchedulingError("A block needs at least one member instance")
        processors = {m.processor for m in self.members}
        if processors != {self.processor}:
            raise SchedulingError(
                f"Block {self.id} members span processors {sorted(processors)}, "
                f"expected only {self.processor!r}"
            )
        object.__setattr__(
            self,
            "_member_keys",
            tuple(m.key for m in sorted(self.members, key=lambda m: m.start)),
        )
        object.__setattr__(self, "_start", min(m.start for m in self.members))

    # -- aggregate attributes (paper: execution time / memory of a block are
    #    the sums over its tasks, its start time is its first task's start) --
    @property
    def start(self) -> float:
        """Start time of the first member (the block's start time)."""
        return self._start

    @property
    def end(self) -> float:
        """Completion time of the last member."""
        return max(m.end for m in self.members)

    @property
    def execution_time(self) -> float:
        """Sum of the members' WCETs (the paper's block execution time)."""
        return sum(m.wcet for m in self.members)

    @property
    def span(self) -> float:
        """Wall-clock span ``end - start`` (equals execution time for gap-free blocks)."""
        return self.end - self.start

    @property
    def memory(self) -> float:
        """Sum of the members' required memory amounts."""
        return sum(m.memory for m in self.members)

    @property
    def member_keys(self) -> tuple[tuple[str, int], ...]:
        """``(task, index)`` keys of the members, in start order (cached)."""
        return self._member_keys

    @property
    def tasks(self) -> tuple[str, ...]:
        """Distinct task names appearing in the block, in start order."""
        seen: list[str] = []
        for member in sorted(self.members, key=lambda m: m.start):
            if member.task not in seen:
                seen.append(member.task)
        return tuple(seen)

    @property
    def first_instance_tasks(self) -> tuple[str, ...]:
        """Tasks whose *first* instance belongs to this block."""
        return tuple(sorted({m.task for m in self.members if m.is_first}))

    @property
    def is_first_category(self) -> bool:
        """``True`` for category-1 blocks."""
        return self.category is BlockCategory.FIRST_INSTANCES

    @property
    def label(self) -> str:
        """Readable label such as ``[b#0-c#0]`` mirroring the paper's notation."""
        inner = "-".join(m.label for m in sorted(self.members, key=lambda m: m.start))
        return f"[{inner}]"

    def contains(self, key: tuple[str, int]) -> bool:
        """``True`` when the instance ``(task, index)`` belongs to the block."""
        return any(m.key == key for m in self.members)

    def offsets(self) -> dict[tuple[str, int], float]:
        """Start offset of each member relative to the block's start."""
        base = self.start
        return {m.key: m.start - base for m in self.members}

    def circular_pattern(
        self,
        placement_start: float,
        hyper_period: int,
        positions: "dict[tuple[str, int], tuple[str, float]] | None" = None,
    ) -> list[tuple[float, float]]:
        """Steady-state busy pattern if the block were placed at ``placement_start``.

        Returns circular ``(offset, wcet)`` pairs modulo ``hyper_period``, one
        per member, preserving the members' current relative offsets.
        ``positions`` supplies the members' *current* ``(processor, start)``
        placements (the balancer's running state, where earlier category-1
        gains may have shifted them); when omitted the scheduled positions the
        block was built from are used.
        """
        members = sorted(self.members, key=lambda m: m.start)
        if positions is None:
            current = {m.key: m.start for m in members}
        else:
            current = {m.key: positions[m.key][1] for m in members}
        base = min(current.values())
        return [
            (float((placement_start + current[m.key] - base) % hyper_period), m.wcet)
            for m in members
        ]

    def __len__(self) -> int:
        return len(self.members)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"Block#{self.id}{self.label}@{self.processor}(S={self.start:g}, cat={int(self.category)})"


def _adjacency(schedule: Schedule) -> dict[tuple[str, int], set[tuple[str, int]]]:
    """Undirected instance-level dependence adjacency of the schedule's graph."""
    neighbours: dict[tuple[str, int], set[tuple[str, int]]] = {}
    for edge in instance_edges(schedule.graph):
        neighbours.setdefault(edge.producer, set()).add(edge.consumer)
        neighbours.setdefault(edge.consumer, set()).add(edge.producer)
    return neighbours


def build_blocks(
    schedule: Schedule, options: BlockBuildOptions | None = None
) -> tuple[Block, ...]:
    """Group the instances of ``schedule`` into blocks.

    Blocks are returned sorted by (start time, processor declaration order)
    and numbered in that order, which is exactly the processing order of the
    load-balancing heuristic ("sort the blocks by their start times in an
    increasing order").
    """
    options = options or BlockBuildOptions()
    if options.gap_tolerance < 0:
        raise SchedulingError("gap_tolerance must be non-negative")
    neighbours = _adjacency(schedule) if options.require_dependence else {}

    groups: list[tuple[str, list[ScheduledInstance]]] = []
    for processor, timeline in schedule.timelines().items():
        current: list[ScheduledInstance] = []
        for instance in timeline.instances:
            if not current:
                current = [instance]
                continue
            contiguous = instance.start <= current[-1].end + options.gap_tolerance + _EPS
            if options.require_dependence:
                linked = any(
                    instance.key in neighbours.get(member.key, ())
                    for member in current
                )
            else:
                linked = True
            only_firsts = all(member.is_first for member in current)
            keeps_category = not (only_firsts and not instance.is_first)
            if contiguous and linked and keeps_category:
                current.append(instance)
            else:
                groups.append((processor, current))
                current = [instance]
        if current:
            groups.append((processor, current))

    proc_order = {name: i for i, name in enumerate(schedule.architecture.processor_names)}
    groups.sort(key=lambda item: (min(m.start for m in item[1]), proc_order[item[0]]))

    blocks: list[Block] = []
    for block_id, (processor, members) in enumerate(groups):
        members_sorted = tuple(sorted(members, key=lambda m: m.start))
        category = (
            BlockCategory.FIRST_INSTANCES
            if members_sorted[0].is_first and all(m.is_first for m in members_sorted)
            else BlockCategory.LATER_INSTANCES
        )
        blocks.append(
            Block(id=block_id, processor=processor, members=members_sorted, category=category)
        )
    return tuple(blocks)


def blocks_by_processor(blocks: Iterable[Block]) -> dict[str, list[Block]]:
    """Group blocks by their (original) processor, preserving start order."""
    grouped: dict[str, list[Block]] = {}
    for block in sorted(blocks, key=lambda b: (b.start, b.id)):
        grouped.setdefault(block.processor, []).append(block)
    return grouped
