"""Memory accounting helpers.

The paper accounts memory *per task instance*: a task with required memory
``m`` executed ``q`` times inside the hyper-period contributes ``q * m`` to
the memory used on its processor (the worked example counts 4 instances of a
task with ``m = 4`` as 16 units on ``P1``).  On top of that static demand,
multi-rate inter-processor dependences create *buffer* demand on the
consumer's processor: when the consumer is ``n`` times slower than the
producer, the ``n`` data items of one consumer window must all be stored
until the consumer executes (Figure 1 — memory reuse is not possible).

This module provides the static accounting used by the heuristic and the
metrics, and the buffer-demand computation used by the simulator's memory
tracker and by capacity checks.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from dataclasses import dataclass

from repro.epsilon import EPSILON
from repro.errors import ModelError
from repro.model.graph import TaskGraph

__all__ = [
    "instance_memory",
    "static_memory_of_tasks",
    "static_memory_by_processor",
    "edge_buffer_demand",
    "buffer_demand_by_processor",
    "MemoryBreakdown",
]


def instance_memory(graph: TaskGraph, task_name: str) -> float:
    """Memory required by one instance of ``task_name``."""
    return graph.task(task_name).memory


def static_memory_of_tasks(graph: TaskGraph, task_names: Iterable[str]) -> float:
    """Total per-hyper-period static memory of the given tasks.

    Every instance of every listed task counts once (paper accounting).
    """
    hp = graph.hyper_period
    total = 0.0
    for name in task_names:
        task = graph.task(name)
        total += (hp // task.period) * task.memory
    return total


def static_memory_by_processor(
    graph: TaskGraph, assignment: Mapping[tuple[str, int], str]
) -> dict[str, float]:
    """Static memory per processor for an instance-level assignment.

    Parameters
    ----------
    graph:
        The application.
    assignment:
        Mapping from ``(task name, instance index)`` to processor name.

    Returns
    -------
    dict[str, float]
        Memory used on every processor appearing in the assignment.
    """
    usage: dict[str, float] = {}
    for (task_name, _index), processor in assignment.items():
        task = graph.task(task_name)
        usage[processor] = usage.get(processor, 0.0) + task.memory
    return usage


def edge_buffer_demand(
    graph: TaskGraph, producer: str, consumer: str, *, cross_processor: bool = True
) -> float:
    """Peak buffer demand of one dependence on the consumer's processor.

    The demand equals ``n * data_size`` where ``n`` is the number of producer
    samples one consumer execution needs (Figure 1 of the paper with
    ``n = 4``).  Same-processor dependences are usually served directly from
    the producer's memory; pass ``cross_processor=False`` to get ``0`` in that
    case, which is the default behaviour of the capacity checks.
    """
    dep = graph.dependence(producer, consumer)
    producer_task = graph.task(producer)
    consumer_task = graph.task(consumer)
    if not cross_processor:
        return 0.0
    items = dep.buffered_items(producer_task, consumer_task)
    return items * dep.effective_data_size(producer_task)


def buffer_demand_by_processor(
    graph: TaskGraph, task_assignment: Mapping[str, str]
) -> dict[str, float]:
    """Worst-case buffer demand per processor for a task-level assignment.

    For every dependence whose producer and consumer live on different
    processors, the consumer's processor must buffer ``n`` producer samples.
    The per-processor demands of different edges are summed, which is a safe
    upper bound (simultaneous occupancy); the discrete-event simulator
    measures the actual peak.

    Parameters
    ----------
    graph:
        The application.
    task_assignment:
        Mapping from task name to processor name (all instances of a task are
        on the same processor once strict periodicity is enforced per task;
        instance-level refinements use the simulator instead).
    """
    demand: dict[str, float] = {}
    for dep in graph.dependences:
        try:
            producer_proc = task_assignment[dep.producer]
            consumer_proc = task_assignment[dep.consumer]
        except KeyError as exc:
            raise ModelError(f"Assignment misses task {exc.args[0]!r}") from None
        if producer_proc == consumer_proc:
            continue
        amount = edge_buffer_demand(graph, dep.producer, dep.consumer)
        demand[consumer_proc] = demand.get(consumer_proc, 0.0) + amount
    return demand


@dataclass(frozen=True, slots=True)
class MemoryBreakdown:
    """Static + buffer memory usage of one processor.

    Attributes
    ----------
    processor:
        Processor name.
    static:
        Sum of the per-instance required memory of the instances placed there.
    buffers:
        Worst-case buffer demand created by incoming inter-processor edges.
    """

    processor: str
    static: float
    buffers: float = 0.0

    @property
    def total(self) -> float:
        """Static plus buffer demand."""
        return self.static + self.buffers

    def fits(self, capacity: float) -> bool:
        """``True`` when the total demand fits within ``capacity``."""
        return self.total <= capacity + EPSILON
