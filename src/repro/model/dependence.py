"""Dependence (data-flow) edges between strictly periodic tasks.

A dependence ``a -> b`` means task ``b`` consumes the data produced by task
``a``: an instance of ``b`` cannot start before the producer instances it
needs have completed, plus an inter-processor communication delay when the
two tasks run on different processors.

Multi-rate semantics (section 3.1 and Figure 1 of the paper)
-----------------------------------------------------------
When the consumer's period is ``n`` times the producer's period, each
consumer instance needs the ``n`` data items produced by the ``n`` producer
instances falling inside its period window; all ``n`` items must be buffered
on the consumer's processor until the consumer runs (memory reuse is not
possible).  When the producer is the slower one (period ``n`` times the
consumer's), ``n`` consecutive consumer instances re-use the single data item
of one producer instance.  Equal periods are the trivial 1:1 case.

:func:`Dependence.producer_instances_for` encodes exactly this mapping at the
instance level; everything else in the library (scheduling, block building,
gain computation, buffer tracking) is built on top of it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.errors import ModelError
from repro.model.periods import period_ratio
from repro.model.task import Task

__all__ = ["Dependence"]


@dataclass(frozen=True, slots=True)
class Dependence:
    """A directed data dependence between two tasks.

    Parameters
    ----------
    producer:
        Name of the task producing the data.
    consumer:
        Name of the task consuming the data.
    data_size:
        Optional override of the size of each transferred data item.  When
        ``None`` (the default) the producer task's own ``data_size`` is used.
    metadata:
        Free-form user annotations.
    """

    producer: str
    consumer: str
    data_size: float | None = None
    metadata: dict[str, Any] = field(default_factory=dict, compare=False, hash=False)

    def __post_init__(self) -> None:
        if not self.producer or not self.consumer:
            raise ModelError(
                f"Dependence endpoints must be non-empty task names, "
                f"got {self.producer!r} -> {self.consumer!r}"
            )
        if self.producer == self.consumer:
            raise ModelError(f"Self-dependence on task {self.producer!r} is not allowed")
        if self.data_size is not None and self.data_size < 0:
            raise ModelError(
                f"Dependence {self.producer!r}->{self.consumer!r}: "
                f"data size must be non-negative, got {self.data_size}"
            )

    @property
    def key(self) -> tuple[str, str]:
        """``(producer, consumer)`` pair identifying the edge."""
        return (self.producer, self.consumer)

    def effective_data_size(self, producer_task: Task) -> float:
        """Size of one transferred item, falling back to the producer's ``data_size``."""
        return self.data_size if self.data_size is not None else producer_task.data_size

    # ------------------------------------------------------------------
    # Instance-level expansion of the multi-rate semantics
    # ------------------------------------------------------------------
    def rate(self, producer_task: Task, consumer_task: Task) -> tuple[int, int]:
        """Return ``(producer items per consumer execution, consumer executions per item)``.

        ``(n, 1)``  — consumer ``n`` times slower: needs ``n`` fresh items each run.
        ``(1, n)``  — consumer ``n`` times faster: ``n`` runs share one item.
        ``(1, 1)``  — same period.
        """
        self._check_endpoints(producer_task, consumer_task)
        return period_ratio(producer_task.period, consumer_task.period)

    def producer_instances_for(
        self, producer_task: Task, consumer_task: Task, consumer_index: int
    ) -> tuple[int, ...]:
        """Indices of the producer instances required by one consumer instance.

        For a consumer ``n`` times slower than the producer, consumer instance
        ``j`` needs producer instances ``j*n .. j*n + n - 1`` (the ``n``
        repetitions inside its period window, as in Figure 1 of the paper
        where ``b`` waits for the four data items of ``a``).  For a consumer
        ``n`` times faster, consumer instance ``j`` needs the single producer
        instance ``j // n``.
        """
        if consumer_index < 0:
            raise ModelError(f"Consumer instance index must be non-negative, got {consumer_index}")
        items_per_exec, execs_per_item = self.rate(producer_task, consumer_task)
        if items_per_exec >= 1 and execs_per_item == 1:
            start = consumer_index * items_per_exec
            return tuple(range(start, start + items_per_exec))
        return (consumer_index // execs_per_item,)

    def consumer_instances_for(
        self, producer_task: Task, consumer_task: Task, producer_index: int
    ) -> tuple[int, ...]:
        """Indices of the consumer instances that use one producer instance.

        Inverse mapping of :meth:`producer_instances_for`; used by the
        simulator's buffer tracker to know when a buffered item can be freed.
        """
        if producer_index < 0:
            raise ModelError(f"Producer instance index must be non-negative, got {producer_index}")
        items_per_exec, execs_per_item = self.rate(producer_task, consumer_task)
        if items_per_exec >= 1 and execs_per_item == 1:
            return (producer_index // items_per_exec,)
        start = producer_index * execs_per_item
        return tuple(range(start, start + execs_per_item))

    def buffered_items(self, producer_task: Task, consumer_task: Task) -> int:
        """Number of producer items a consumer instance must have buffered.

        This is exactly the ``n`` of Figure 1: when the consumer is ``n``
        times slower the consumer's processor must hold ``n`` items at once.
        """
        items_per_exec, _ = self.rate(producer_task, consumer_task)
        return items_per_exec

    def _check_endpoints(self, producer_task: Task, consumer_task: Task) -> None:
        if producer_task.name != self.producer:
            raise ModelError(
                f"Dependence expects producer {self.producer!r}, got task {producer_task.name!r}"
            )
        if consumer_task.name != self.consumer:
            raise ModelError(
                f"Dependence expects consumer {self.consumer!r}, got task {consumer_task.name!r}"
            )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.producer} -> {self.consumer}"
