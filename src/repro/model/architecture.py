"""Homogeneous distributed architecture model.

The paper assumes a *homogeneous* architecture: identical processors with the
same memory capacity, connected by identical communication media.  The
library keeps the architecture description explicit so that (a) memory
capacities can be checked, (b) the discrete-event simulator can serialise
transfers on shared media, and (c) non-homogeneous descriptions are rejected
early (the heuristic's correctness arguments rely on homogeneity).

Communication model
-------------------
The paper defines the communication time as "the time elapsed between the
start time of the sending task and the completion time of the receiving
task" and notes that it "depends on the size of the data to be transferred".
:class:`CommunicationModel` therefore supports both a fixed latency (the
worked example uses ``C = 1``) and an affine latency + size/bandwidth model.
Intra-processor communications take zero time.
"""

from __future__ import annotations

import math
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field
from typing import Any

from repro.errors import ArchitectureError

__all__ = [
    "Processor",
    "Medium",
    "CommunicationModel",
    "Architecture",
]


@dataclass(frozen=True, slots=True)
class Processor:
    """A processing element of the homogeneous architecture.

    Parameters
    ----------
    name:
        Unique identifier, e.g. ``"P1"``.
    memory_capacity:
        Data memory available on this processor, in the same unit as the
        tasks' ``memory`` attribute.  ``math.inf`` (the default) means the
        capacity is not checked — the paper's example does not give explicit
        capacities, only the goal of using memory efficiently.
    """

    name: str
    memory_capacity: float = math.inf
    metadata: dict[str, Any] = field(default_factory=dict, compare=False, hash=False)

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ArchitectureError(f"Processor name must be a non-empty string, got {self.name!r}")
        if self.memory_capacity <= 0:
            raise ArchitectureError(
                f"Processor {self.name!r}: memory capacity must be positive, "
                f"got {self.memory_capacity}"
            )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


@dataclass(frozen=True, slots=True)
class Medium:
    """A communication medium connecting two or more processors.

    The worked example of the paper uses a single bus ``Med`` connecting the
    three processors; Theorem 1 assumes every pair of processors is connected
    by *some* medium (possibly the same one for several pairs).
    """

    name: str
    connects: tuple[str, ...]
    metadata: dict[str, Any] = field(default_factory=dict, compare=False, hash=False)

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ArchitectureError(f"Medium name must be a non-empty string, got {self.name!r}")
        if len(self.connects) < 2:
            raise ArchitectureError(
                f"Medium {self.name!r} must connect at least two processors, "
                f"got {self.connects!r}"
            )
        if len(set(self.connects)) != len(self.connects):
            raise ArchitectureError(f"Medium {self.name!r} lists a processor twice")

    def links(self, a: str, b: str) -> bool:
        """``True`` when the medium connects processors ``a`` and ``b``."""
        return a in self.connects and b in self.connects

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


@dataclass(frozen=True, slots=True)
class CommunicationModel:
    """Analytic inter-processor communication time model.

    ``time(data_size) = latency + data_size / bandwidth`` for transfers
    between distinct processors; zero for intra-processor data exchange.
    With the default ``bandwidth = inf`` the model degenerates to the fixed
    communication time ``C`` used throughout the paper's example.
    """

    latency: float = 1.0
    bandwidth: float = math.inf

    def __post_init__(self) -> None:
        if self.latency < 0:
            raise ArchitectureError(f"Communication latency must be non-negative, got {self.latency}")
        if self.bandwidth <= 0:
            raise ArchitectureError(f"Communication bandwidth must be positive, got {self.bandwidth}")

    def time(self, data_size: float = 1.0, *, same_processor: bool = False) -> float:
        """Communication time for one data item of the given size."""
        if same_processor:
            return 0.0
        if data_size < 0:
            raise ArchitectureError(f"Data size must be non-negative, got {data_size}")
        if math.isinf(self.bandwidth):
            return self.latency
        return self.latency + data_size / self.bandwidth

    @property
    def is_fixed(self) -> bool:
        """``True`` when the model is a pure fixed latency (paper's ``C``)."""
        return math.isinf(self.bandwidth)


class Architecture:
    """A homogeneous set of processors connected by communication media."""

    def __init__(
        self,
        processors: Sequence[Processor] | Sequence[str],
        media: Sequence[Medium] = (),
        *,
        comm: CommunicationModel | None = None,
        name: str = "architecture",
    ) -> None:
        self.name = name
        self.comm = comm if comm is not None else CommunicationModel()
        procs: list[Processor] = []
        for item in processors:
            procs.append(item if isinstance(item, Processor) else Processor(str(item)))
        if not procs:
            raise ArchitectureError("An architecture needs at least one processor")
        names = [p.name for p in procs]
        if len(set(names)) != len(names):
            raise ArchitectureError(f"Duplicate processor names in {names}")
        self._processors: dict[str, Processor] = {p.name: p for p in procs}
        self._check_homogeneous()

        media_list = list(media)
        if not media_list and len(procs) > 1:
            # Default: one shared bus connecting every processor, as in the
            # paper's example architecture (Figure 2, medium "Med").
            media_list = [Medium("Med", tuple(names))]
        self._media: dict[str, Medium] = {}
        for medium in media_list:
            if medium.name in self._media:
                raise ArchitectureError(f"Duplicate medium name {medium.name!r}")
            for proc in medium.connects:
                if proc not in self._processors:
                    raise ArchitectureError(
                        f"Medium {medium.name!r} connects unknown processor {proc!r}"
                    )
            self._media[medium.name] = medium
        self._check_connectivity()

    # ------------------------------------------------------------------
    # Factories
    # ------------------------------------------------------------------
    @classmethod
    def homogeneous(
        cls,
        count: int,
        *,
        memory_capacity: float = math.inf,
        comm: CommunicationModel | None = None,
        prefix: str = "P",
        name: str = "architecture",
    ) -> "Architecture":
        """Build ``count`` identical processors ``P1..Pcount`` on a single bus."""
        if count < 1:
            raise ArchitectureError(f"Processor count must be >= 1, got {count}")
        processors = [
            Processor(f"{prefix}{i + 1}", memory_capacity=memory_capacity) for i in range(count)
        ]
        return cls(processors, comm=comm, name=name)

    # ------------------------------------------------------------------
    # Checks
    # ------------------------------------------------------------------
    def _check_homogeneous(self) -> None:
        capacities = {p.memory_capacity for p in self._processors.values()}
        if len(capacities) > 1:
            raise ArchitectureError(
                "The paper's model requires homogeneous processors with identical memory "
                f"capacity; got capacities {sorted(capacities)}"
            )

    def _check_connectivity(self) -> None:
        """Every pair of distinct processors must be reachable through the media."""
        if len(self._processors) <= 1:
            return
        if not self._media:
            raise ArchitectureError(
                "A multi-processor architecture needs at least one communication medium"
            )
        # Union-find over processors through shared media membership.
        parent = {name: name for name in self._processors}

        def find(x: str) -> str:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        def union(a: str, b: str) -> None:
            ra, rb = find(a), find(b)
            if ra != rb:
                parent[ra] = rb

        for medium in self._media.values():
            first = medium.connects[0]
            for other in medium.connects[1:]:
                union(first, other)
        roots = {find(name) for name in self._processors}
        if len(roots) > 1:
            raise ArchitectureError(
                "Architecture is not connected: some processors cannot communicate"
            )

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._processors)

    def __contains__(self, name: str) -> bool:
        return name in self._processors

    def __iter__(self):
        return iter(self._processors.values())

    @property
    def processors(self) -> Mapping[str, Processor]:
        """Read-only mapping of processors keyed by name."""
        return dict(self._processors)

    @property
    def processor_names(self) -> tuple[str, ...]:
        """Processor names in declaration order."""
        return tuple(self._processors)

    @property
    def media(self) -> Mapping[str, Medium]:
        """Read-only mapping of media keyed by name."""
        return dict(self._media)

    @property
    def memory_capacity(self) -> float:
        """The (common) per-processor memory capacity."""
        return next(iter(self._processors.values())).memory_capacity

    def processor(self, name: str) -> Processor:
        """Return the processor called ``name``."""
        try:
            return self._processors[name]
        except KeyError:
            raise ArchitectureError(f"Unknown processor {name!r}") from None

    def medium_between(self, a: str, b: str) -> Medium:
        """Return a medium connecting processors ``a`` and ``b``.

        When several media connect the pair the first one in declaration
        order is returned (deterministic).
        """
        self.processor(a)
        self.processor(b)
        if a == b:
            raise ArchitectureError(f"No medium is needed between {a!r} and itself")
        for medium in self._media.values():
            if medium.links(a, b):
                return medium
        raise ArchitectureError(f"No communication medium connects {a!r} and {b!r}")

    def are_connected(self, a: str, b: str) -> bool:
        """``True`` when a single medium directly connects ``a`` and ``b``."""
        if a == b:
            return True
        try:
            self.medium_between(a, b)
        except ArchitectureError:
            return False
        return True

    def comm_time(self, source: str, target: str, data_size: float = 1.0) -> float:
        """Communication time between two processors for one data item."""
        return self.comm.time(data_size, same_processor=(source == target))

    def processor_pairs(self) -> tuple[tuple[str, str], ...]:
        """All unordered pairs of distinct processors."""
        names = self.processor_names
        return tuple(
            (names[i], names[j]) for i in range(len(names)) for j in range(i + 1, len(names))
        )

    def has_memory_limits(self) -> bool:
        """``True`` when memory capacities are finite and must be checked."""
        return not math.isinf(self.memory_capacity)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Architecture(name={self.name!r}, processors={len(self._processors)}, "
            f"media={len(self._media)}, capacity={self.memory_capacity})"
        )
