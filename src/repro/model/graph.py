"""Application model: a directed acyclic graph of strictly periodic tasks.

The :class:`TaskGraph` is the main input of both the distributed scheduling
substrate (:mod:`repro.scheduling.heuristic`) and the load balancing heuristic
(:mod:`repro.core.load_balancer`).  It stores :class:`~repro.model.task.Task`
objects and :class:`~repro.model.dependence.Dependence` edges and offers the
structural queries used throughout the library: predecessor/successor sets,
topological ordering, hyper-period computation, utilisation, and conversion
to a :mod:`networkx` digraph for analysis and plotting.

Invariants enforced at construction/mutation time:

* task names are unique;
* every dependence endpoint refers to a known task;
* dependent tasks have harmonically related periods (equal or integer
  multiples), as required by the multi-rate semantics of the paper;
* the graph is acyclic (checked lazily by :meth:`TaskGraph.validate` and by
  :meth:`TaskGraph.topological_order`).
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable, Iterator, Mapping
from typing import Any

import networkx as nx

from repro.errors import ModelError
from repro.model.dependence import Dependence
from repro.model.periods import hyper_period as _hyper_period
from repro.model.periods import is_harmonic_pair
from repro.model.task import Task

__all__ = ["TaskGraph"]


class TaskGraph:
    """A multi-rate application modelled as a DAG of strictly periodic tasks."""

    def __init__(
        self,
        tasks: Iterable[Task] = (),
        dependences: Iterable[Dependence] = (),
        *,
        name: str = "application",
    ) -> None:
        self.name = name
        self._tasks: dict[str, Task] = {}
        self._deps: dict[tuple[str, str], Dependence] = {}
        self._succ: dict[str, set[str]] = {}
        self._pred: dict[str, set[str]] = {}
        #: Mutation counter; bumped on every structural change so derived
        #: caches (hyper-period, instance-level edge expansion) can detect
        #: staleness cheaply.
        self._version = 0
        self._hyper_period: int | None = None
        for task in tasks:
            self.add_task(task)
        for dep in dependences:
            self.add_dependence(dep)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_task(self, task: Task) -> Task:
        """Add a task to the graph.

        Raises
        ------
        ModelError
            If a different task with the same name already exists.
        """
        existing = self._tasks.get(task.name)
        if existing is not None:
            if existing == task:
                return existing
            raise ModelError(f"A different task named {task.name!r} is already in the graph")
        self._tasks[task.name] = task
        self._succ.setdefault(task.name, set())
        self._pred.setdefault(task.name, set())
        self._version += 1
        self._hyper_period = None
        return task

    def create_task(
        self,
        name: str,
        period: int,
        wcet: float,
        memory: float = 0.0,
        data_size: float = 1.0,
        **metadata: Any,
    ) -> Task:
        """Convenience constructor: build a :class:`Task` and add it."""
        task = Task(
            name=name,
            period=period,
            wcet=wcet,
            memory=memory,
            data_size=data_size,
            metadata=dict(metadata),
        )
        return self.add_task(task)

    def add_dependence(self, dep: Dependence | tuple[str, str]) -> Dependence:
        """Add a dependence edge, checking endpoints and period harmonicity."""
        if isinstance(dep, tuple):
            dep = Dependence(*dep)
        for endpoint in dep.key:
            if endpoint not in self._tasks:
                raise ModelError(
                    f"Dependence {dep} refers to unknown task {endpoint!r}; add the task first"
                )
        producer = self._tasks[dep.producer]
        consumer = self._tasks[dep.consumer]
        if not is_harmonic_pair(producer.period, consumer.period):
            raise ModelError(
                f"Dependence {dep}: periods {producer.period} and {consumer.period} are not "
                "harmonically related (one must divide the other)"
            )
        if dep.key in self._deps:
            return self._deps[dep.key]
        self._deps[dep.key] = dep
        self._succ[dep.producer].add(dep.consumer)
        self._pred[dep.consumer].add(dep.producer)
        self._version += 1
        return dep

    def connect(self, producer: str, consumer: str, data_size: float | None = None) -> Dependence:
        """Convenience wrapper building a :class:`Dependence` and adding it."""
        return self.add_dependence(Dependence(producer, consumer, data_size=data_size))

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def __contains__(self, name: str) -> bool:
        return name in self._tasks

    def __len__(self) -> int:
        return len(self._tasks)

    def __iter__(self) -> Iterator[Task]:
        return iter(self._tasks.values())

    def task(self, name: str) -> Task:
        """Return the task called ``name``.

        Raises
        ------
        ModelError
            If no such task exists.
        """
        try:
            return self._tasks[name]
        except KeyError:
            raise ModelError(f"Unknown task {name!r}") from None

    @property
    def tasks(self) -> Mapping[str, Task]:
        """Read-only view of the tasks keyed by name."""
        return dict(self._tasks)

    @property
    def task_names(self) -> tuple[str, ...]:
        """Task names in insertion order."""
        return tuple(self._tasks)

    @property
    def dependences(self) -> tuple[Dependence, ...]:
        """All dependence edges."""
        return tuple(self._deps.values())

    def dependence(self, producer: str, consumer: str) -> Dependence:
        """Return the edge ``producer -> consumer``.

        Raises
        ------
        ModelError
            If there is no such edge.
        """
        try:
            return self._deps[(producer, consumer)]
        except KeyError:
            raise ModelError(f"No dependence {producer!r} -> {consumer!r}") from None

    def has_dependence(self, producer: str, consumer: str) -> bool:
        """``True`` when the edge ``producer -> consumer`` exists."""
        return (producer, consumer) in self._deps

    def successors(self, name: str) -> tuple[str, ...]:
        """Names of direct consumers of ``name`` (sorted for determinism)."""
        self.task(name)
        return tuple(sorted(self._succ[name]))

    def predecessors(self, name: str) -> tuple[str, ...]:
        """Names of direct producers feeding ``name`` (sorted for determinism)."""
        self.task(name)
        return tuple(sorted(self._pred[name]))

    def in_dependences(self, name: str) -> tuple[Dependence, ...]:
        """Edges whose consumer is ``name``."""
        return tuple(self._deps[(p, name)] for p in sorted(self._pred[name]))

    def out_dependences(self, name: str) -> tuple[Dependence, ...]:
        """Edges whose producer is ``name``."""
        return tuple(self._deps[(name, s)] for s in sorted(self._succ[name]))

    def sources(self) -> tuple[str, ...]:
        """Tasks with no predecessor (typically sensors)."""
        return tuple(sorted(n for n in self._tasks if not self._pred[n]))

    def sinks(self) -> tuple[str, ...]:
        """Tasks with no successor (typically actuators)."""
        return tuple(sorted(n for n in self._tasks if not self._succ[n]))

    # ------------------------------------------------------------------
    # Global properties
    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        """Monotonic mutation counter (bumped by every structural change).

        Derived views (instance unrolling, conflict-engine seeds) key their
        caches on ``(graph, version)`` so a mutated graph is never served a
        stale expansion.
        """
        return self._version

    @property
    def hyper_period(self) -> int:
        """LCM of all task periods; the analysis window of the paper.

        Cached until the task set changes: the heuristic's hot path queries
        the hyper-period once per instance-level expansion and the LCM fold
        over hundreds of tasks used to dominate large balancing runs.
        """
        if not self._tasks:
            raise ModelError("Cannot compute the hyper-period of an empty task graph")
        if self._hyper_period is None:
            self._hyper_period = _hyper_period(t.period for t in self._tasks.values())
        return self._hyper_period

    @property
    def total_utilization(self) -> float:
        """Sum of per-task utilisations ``E/T``."""
        return sum(t.utilization for t in self._tasks.values())

    def total_instances(self) -> int:
        """Total number of task instances inside one hyper-period."""
        hp = self.hyper_period
        return sum(hp // t.period for t in self._tasks.values())

    def total_memory_per_hyper_period(self) -> float:
        """Sum over all instances of their required memory amount.

        This is the quantity that gets distributed over the processors (the
        paper's example sums 16 + 4 + 4 = 24 units for its five tasks).
        """
        hp = self.hyper_period
        return sum((hp // t.period) * t.memory for t in self._tasks.values())

    def distinct_periods(self) -> tuple[int, ...]:
        """Sorted tuple of the distinct periods present in the graph."""
        return tuple(sorted({t.period for t in self._tasks.values()}))

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    def topological_order(self) -> tuple[str, ...]:
        """Task names in a deterministic topological order.

        Kahn's algorithm with a lexicographically smallest-first tie break so
        that results are reproducible across runs.

        Raises
        ------
        ModelError
            If the dependence graph contains a cycle.
        """
        indegree = {name: len(self._pred[name]) for name in self._tasks}
        ready = deque(sorted(n for n, d in indegree.items() if d == 0))
        order: list[str] = []
        while ready:
            node = ready.popleft()
            order.append(node)
            newly_ready = []
            for succ in self._succ[node]:
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    newly_ready.append(succ)
            for succ in sorted(newly_ready):
                ready.append(succ)
            # keep the queue sorted to stay deterministic
            ready = deque(sorted(ready))
        if len(order) != len(self._tasks):
            remaining = sorted(set(self._tasks) - set(order))
            raise ModelError(f"Task graph contains a dependence cycle involving {remaining}")
        return tuple(order)

    def is_acyclic(self) -> bool:
        """``True`` when the dependence graph has no cycle."""
        try:
            self.topological_order()
        except ModelError:
            return False
        return True

    def ancestors(self, name: str) -> set[str]:
        """All transitive producers of ``name``."""
        self.task(name)
        seen: set[str] = set()
        stack = list(self._pred[name])
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            stack.extend(self._pred[node])
        return seen

    def descendants(self, name: str) -> set[str]:
        """All transitive consumers of ``name``."""
        self.task(name)
        seen: set[str] = set()
        stack = list(self._succ[name])
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            stack.extend(self._succ[node])
        return seen

    def connected_components(self) -> tuple[frozenset[str], ...]:
        """Weakly connected components (ignoring edge direction)."""
        seen: set[str] = set()
        components: list[frozenset[str]] = []
        for start in self._tasks:
            if start in seen:
                continue
            component: set[str] = set()
            stack = [start]
            while stack:
                node = stack.pop()
                if node in component:
                    continue
                component.add(node)
                stack.extend(self._succ[node])
                stack.extend(self._pred[node])
            seen |= component
            components.append(frozenset(component))
        return tuple(components)

    def validate(self) -> None:
        """Run every structural check; raise :class:`ModelError` on failure."""
        if not self._tasks:
            raise ModelError("Task graph is empty")
        self.topological_order()  # acyclicity
        for dep in self._deps.values():
            producer = self.task(dep.producer)
            consumer = self.task(dep.consumer)
            if not is_harmonic_pair(producer.period, consumer.period):
                raise ModelError(
                    f"Dependence {dep}: non harmonic periods "
                    f"{producer.period} / {consumer.period}"
                )
        self.hyper_period  # noqa: B018 - computing it validates periods

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def to_networkx(self) -> nx.DiGraph:
        """Export the graph as a :class:`networkx.DiGraph` with task attributes."""
        graph = nx.DiGraph(name=self.name)
        for task in self._tasks.values():
            graph.add_node(
                task.name,
                period=task.period,
                wcet=task.wcet,
                memory=task.memory,
                data_size=task.data_size,
            )
        for dep in self._deps.values():
            graph.add_edge(dep.producer, dep.consumer, data_size=dep.data_size)
        return graph

    def copy(self) -> "TaskGraph":
        """Deep-enough copy (tasks/dependences are immutable value objects)."""
        return TaskGraph(self._tasks.values(), self._deps.values(), name=self.name)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TaskGraph(name={self.name!r}, tasks={len(self._tasks)}, "
            f"dependences={len(self._deps)})"
        )
