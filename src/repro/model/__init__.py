"""Application and architecture model.

This subpackage contains everything needed to *describe* a problem instance:

* :class:`~repro.model.task.Task` and :class:`~repro.model.task.TaskInstance`
  — strictly periodic non-preemptive tasks and their repetitions;
* :class:`~repro.model.dependence.Dependence` — multi-rate data-flow edges;
* :class:`~repro.model.graph.TaskGraph` — the application DAG;
* :class:`~repro.model.architecture.Architecture`,
  :class:`~repro.model.architecture.Processor`,
  :class:`~repro.model.architecture.Medium`,
  :class:`~repro.model.architecture.CommunicationModel` — the homogeneous
  distributed platform;
* :mod:`~repro.model.periods` — hyper-period arithmetic;
* :mod:`~repro.model.memory` — static and buffer memory accounting;
* :func:`~repro.model.validation.validate_problem` — necessary-condition
  checks on a problem instance.
"""

from repro.model.architecture import Architecture, CommunicationModel, Medium, Processor
from repro.model.dependence import Dependence
from repro.model.graph import TaskGraph
from repro.model.memory import (
    MemoryBreakdown,
    buffer_demand_by_processor,
    edge_buffer_demand,
    static_memory_by_processor,
    static_memory_of_tasks,
)
from repro.model.periods import (
    hyper_period,
    instances_in_hyper_period,
    is_harmonic_pair,
    is_harmonic_set,
    lcm,
    lcm_many,
    period_ratio,
)
from repro.model.task import Task, TaskInstance, instance_label
from repro.model.validation import ProblemReport, validate_problem

__all__ = [
    "Architecture",
    "CommunicationModel",
    "Dependence",
    "Medium",
    "MemoryBreakdown",
    "ProblemReport",
    "Processor",
    "Task",
    "TaskGraph",
    "TaskInstance",
    "buffer_demand_by_processor",
    "edge_buffer_demand",
    "hyper_period",
    "instance_label",
    "instances_in_hyper_period",
    "is_harmonic_pair",
    "is_harmonic_set",
    "lcm",
    "lcm_many",
    "period_ratio",
    "static_memory_by_processor",
    "static_memory_of_tasks",
    "validate_problem",
]
