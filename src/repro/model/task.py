"""Task model: strictly periodic, non-preemptive real-time tasks.

A :class:`Task` is the unit the application designer manipulates: it carries
a period, a worst-case execution time (WCET), a required memory amount (the
space needed on the processor that executes it to store its variables and
input buffers, as defined in section 3.1 of the paper) and the size of the
data item it produces for its consumers (which drives communication times and
consumer-side buffering).

A :class:`TaskInstance` is one repetition of a task inside the hyper-period.
Because of strict periodicity the ``k``-th instance of a task whose first
instance starts at ``S`` starts exactly at ``S + k * period``; instances are
therefore identified simply by ``(task name, k)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any

from repro.errors import ModelError
from repro.model.periods import validate_period

__all__ = ["Task", "TaskInstance", "instance_label"]


@dataclass(frozen=True, slots=True)
class Task:
    """A strictly periodic, non-preemptive task.

    Parameters
    ----------
    name:
        Unique identifier of the task inside its :class:`~repro.model.graph.TaskGraph`.
    period:
        Strict period ``T`` (positive integer).  Consecutive instances start
        exactly ``T`` time units apart and the implicit deadline equals the
        period.
    wcet:
        Worst-case execution time ``E`` (non-negative; the paper assumes it is
        known for every task).  Must not exceed the period.
    memory:
        Required memory amount ``m``: the data space the task needs on the
        processor executing it (one occurrence *per instance*, following the
        accounting of the paper's example where four instances of a task of
        memory 4 account for 16 units on their processor).
    data_size:
        Size of the data item produced by one instance for each consumer.
        Used by size-dependent communication models and by the consumer-side
        buffer tracking of Figure 1.  Defaults to ``1.0``.
    metadata:
        Free-form dictionary for user annotations (sensor name, rate group,
        criticality level, ...).  Not interpreted by the library.
    """

    name: str
    period: int
    wcet: float
    memory: float = 0.0
    data_size: float = 1.0
    metadata: dict[str, Any] = field(default_factory=dict, compare=False, hash=False)

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ModelError(f"Task name must be a non-empty string, got {self.name!r}")
        validate_period(self.period, owner=self.name)
        if self.wcet < 0:
            raise ModelError(f"Task {self.name!r}: WCET must be non-negative, got {self.wcet}")
        if self.wcet > self.period:
            raise ModelError(
                f"Task {self.name!r}: WCET {self.wcet} exceeds its period {self.period}; "
                "the task can never meet its implicit deadline"
            )
        if self.memory < 0:
            raise ModelError(
                f"Task {self.name!r}: required memory must be non-negative, got {self.memory}"
            )
        if self.data_size < 0:
            raise ModelError(
                f"Task {self.name!r}: data size must be non-negative, got {self.data_size}"
            )

    @property
    def utilization(self) -> float:
        """Processor utilisation ``E / T`` of the task."""
        return self.wcet / self.period

    def instances(self, hyper_period: int) -> int:
        """Number of instances of this task inside ``hyper_period``."""
        if hyper_period % self.period != 0:
            raise ModelError(
                f"Hyper-period {hyper_period} is not a multiple of task {self.name!r} "
                f"period {self.period}"
            )
        return hyper_period // self.period

    def with_updates(self, **changes: Any) -> "Task":
        """Return a copy of the task with the given fields replaced."""
        return replace(self, **changes)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Task({self.name}, T={self.period}, E={self.wcet}, "
            f"m={self.memory}, data={self.data_size})"
        )


def instance_label(task_name: str, index: int) -> str:
    """Human readable label of an instance, e.g. ``a#2`` for the 3rd instance of ``a``."""
    return f"{task_name}#{index}"


@dataclass(frozen=True, slots=True)
class TaskInstance:
    """One repetition of a :class:`Task` inside the hyper-period.

    Instances are value objects: two instances compare equal when they denote
    the same repetition of the same task.  The instance knows nothing about
    *where* or *when* it is scheduled — that is the job of
    :class:`repro.scheduling.schedule.ScheduledInstance`.

    Attributes
    ----------
    task:
        The task this instance belongs to.
    index:
        Zero-based repetition index inside the hyper-period
        (``0 <= index < hyper_period // task.period``).
    """

    task: Task
    index: int

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ModelError(
                f"Instance index must be non-negative, got {self.index} for {self.task.name!r}"
            )

    @property
    def name(self) -> str:
        """Task name of the instance."""
        return self.task.name

    @property
    def label(self) -> str:
        """Readable identifier such as ``a#0``."""
        return instance_label(self.task.name, self.index)

    @property
    def is_first(self) -> bool:
        """``True`` for the first instance of its task (index 0).

        First instances are the ones that matter for the block categories of
        the paper: a *category 1* block contains only first instances and is
        the only kind of block whose start time may decrease when moved.
        """
        return self.index == 0

    @property
    def release_offset(self) -> int:
        """Offset of the instance's period window start, ``index * period``."""
        return self.index * self.task.period

    def key(self) -> tuple[str, int]:
        """Hashable ``(task name, index)`` key."""
        return (self.task.name, self.index)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.label
