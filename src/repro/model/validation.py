"""Structural validation of an application against an architecture.

Before any scheduling or balancing is attempted it is useful to know whether
the problem instance is *obviously* impossible (total utilisation larger than
the number of processors, a single task that cannot fit in a processor's
memory, ...) or merely suspicious (very unbalanced memory demand, many
non-harmonic period groups, ...).  :func:`validate_problem` gathers these
checks and returns a :class:`ProblemReport` with errors (definitely
infeasible) and warnings (heuristics may struggle).

These checks are *necessary* conditions only; passing them does not guarantee
that the scheduling heuristic will find a feasible schedule (the problem is
NP-hard), but failing an error-level check guarantees that it cannot.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.epsilon import EPSILON
from repro.model.architecture import Architecture
from repro.model.graph import TaskGraph
from repro.model.memory import edge_buffer_demand

__all__ = ["ProblemReport", "validate_problem"]


@dataclass(slots=True)
class ProblemReport:
    """Outcome of :func:`validate_problem`."""

    errors: list[str] = field(default_factory=list)
    warnings: list[str] = field(default_factory=list)

    @property
    def is_feasible(self) -> bool:
        """``True`` when no error-level problem was found."""
        return not self.errors

    def raise_if_infeasible(self) -> None:
        """Raise :class:`~repro.errors.ModelError` summarising the errors, if any."""
        if self.errors:
            from repro.errors import ModelError

            raise ModelError(
                "Problem instance is infeasible: " + "; ".join(self.errors)
            )

    def summary(self) -> str:
        """Human readable multi-line summary."""
        lines = []
        if not self.errors and not self.warnings:
            lines.append("No structural problem detected.")
        for message in self.errors:
            lines.append(f"ERROR: {message}")
        for message in self.warnings:
            lines.append(f"WARNING: {message}")
        return "\n".join(lines)


def validate_problem(graph: TaskGraph, architecture: Architecture) -> ProblemReport:
    """Run necessary-condition checks on ``(graph, architecture)``.

    Error-level checks
    ------------------
    * the graph itself is structurally valid (acyclic, harmonic dependences);
    * total utilisation does not exceed the number of processors;
    * no single task has a WCET larger than its period (already enforced by
      :class:`~repro.model.task.Task`, re-checked defensively);
    * when memory capacities are finite: no single task instance exceeds the
      per-processor capacity, and the total memory demand does not exceed the
      aggregate capacity.

    Warning-level checks
    --------------------
    * utilisation above 69 % of the platform (heuristics frequently fail in
      the high-utilisation regime for non-preemptive strictly periodic sets);
    * a dependence whose worst-case consumer-side buffer alone uses more than
      half of a processor's memory;
    * a number of distinct periods much larger than what the paper assumes
      ("the number of different periods is small", section 4).
    """
    report = ProblemReport()

    try:
        graph.validate()
    except Exception as exc:  # noqa: BLE001 - reported, not swallowed silently
        report.errors.append(str(exc))
        return report

    processor_count = len(architecture)
    total_util = graph.total_utilization
    if total_util > processor_count + EPSILON:
        report.errors.append(
            f"Total utilisation {total_util:.3f} exceeds the number of processors "
            f"{processor_count}; no schedule can exist"
        )
    elif total_util > 0.69 * processor_count:
        report.warnings.append(
            f"Total utilisation {total_util:.3f} is above 69% of the platform capacity "
            f"({processor_count} processors); non-preemptive strictly periodic scheduling "
            "may fail"
        )

    for task in graph:
        if task.wcet > task.period:  # defensive; Task already rejects this
            report.errors.append(
                f"Task {task.name!r}: WCET {task.wcet} exceeds period {task.period}"
            )

    if architecture.has_memory_limits():
        capacity = architecture.memory_capacity
        for task in graph:
            if task.memory > capacity:
                report.errors.append(
                    f"Task {task.name!r} needs {task.memory} memory units but each processor "
                    f"only has {capacity}"
                )
        total_memory = graph.total_memory_per_hyper_period()
        aggregate = capacity * processor_count
        if total_memory > aggregate + EPSILON:
            report.errors.append(
                f"Total memory demand {total_memory} exceeds the aggregate capacity "
                f"{aggregate} of the {processor_count} processors"
            )
        elif total_memory > 0.9 * aggregate:
            report.warnings.append(
                f"Total memory demand {total_memory} uses more than 90% of the aggregate "
                f"capacity {aggregate}; balancing will be tight"
            )
        for dep in graph.dependences:
            demand = edge_buffer_demand(graph, dep.producer, dep.consumer)
            if demand > 0.5 * capacity and not math.isinf(capacity):
                report.warnings.append(
                    f"Dependence {dep} may buffer {demand} units on the consumer's processor, "
                    f"more than half of the capacity {capacity}"
                )

    distinct_periods = len(graph.distinct_periods())
    if distinct_periods > max(8, len(graph) // 4):
        report.warnings.append(
            f"The task set uses {distinct_periods} distinct periods; the paper's block-based "
            "heuristic assumes a small number of periods (few sensors), so blocks may be tiny"
        )

    return report
