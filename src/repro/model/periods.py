"""Period arithmetic for strictly periodic task sets.

The applications targeted by the paper are multi-periodic: tasks have
integer periods, dependences only connect tasks whose periods are equal or
integer multiples of one another, and the behaviour of the whole application
is fully characterised over one *hyper-period*, i.e. the least common
multiple (LCM) of every period (the paper cites [13] for this classical
result).  Because of the *strict periodicity* constraint, once the start time
of the first instance of a task is fixed, the start time of every later
instance is fixed as well: instance ``k`` starts exactly ``k`` periods after
instance ``0``.

This module gathers the small pieces of integer arithmetic used all over the
library: LCM of a set of periods, number of instances per hyper-period,
harmonicity checks and period-ratio computation for multi-rate dependences.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence

from repro.errors import ModelError

__all__ = [
    "lcm",
    "lcm_many",
    "hyper_period",
    "instances_in_hyper_period",
    "is_harmonic_pair",
    "is_harmonic_set",
    "period_ratio",
    "validate_period",
]


def validate_period(period: int, *, owner: str | None = None) -> int:
    """Check that ``period`` is a strictly positive integer and return it.

    Parameters
    ----------
    period:
        Candidate period value.
    owner:
        Optional task name used to produce a better error message.

    Raises
    ------
    ModelError
        If the period is not an integer or is not strictly positive.
    """
    if isinstance(period, bool) or not isinstance(period, int):
        raise ModelError(
            f"Period must be a positive integer, got {period!r}"
            + (f" for task {owner!r}" if owner else "")
        )
    if period <= 0:
        raise ModelError(
            f"Period must be strictly positive, got {period}"
            + (f" for task {owner!r}" if owner else "")
        )
    return period


def lcm(a: int, b: int) -> int:
    """Least common multiple of two positive integers."""
    if a <= 0 or b <= 0:
        raise ModelError(f"lcm() arguments must be positive, got {a} and {b}")
    return a // math.gcd(a, b) * b


def lcm_many(values: Iterable[int]) -> int:
    """Least common multiple of an iterable of positive integers.

    Raises
    ------
    ModelError
        If the iterable is empty or contains a non-positive value.
    """
    result = 0
    for value in values:
        if value <= 0:
            raise ModelError(f"lcm_many() received a non-positive period: {value}")
        result = value if result == 0 else lcm(result, value)
    if result == 0:
        raise ModelError("lcm_many() requires at least one period")
    return result


def hyper_period(periods: Iterable[int]) -> int:
    """Hyper-period (LCM of all task periods) of a task set.

    The hyper-period is the analysis window used throughout the paper: each
    task ``a`` with period ``Ta`` appears ``LCM / Ta`` times inside it and the
    schedule of the window repeats indefinitely.
    """
    return lcm_many(periods)


def instances_in_hyper_period(period: int, hp: int) -> int:
    """Number of instances of a task of the given ``period`` in hyper-period ``hp``.

    Raises
    ------
    ModelError
        If ``hp`` is not a multiple of ``period`` (which would mean the
        hyper-period was computed from a different task set).
    """
    validate_period(period)
    if hp % period != 0:
        raise ModelError(
            f"Hyper-period {hp} is not a multiple of period {period}; "
            "the task does not belong to this task set"
        )
    return hp // period


def is_harmonic_pair(period_a: int, period_b: int) -> bool:
    """Return ``True`` when one period divides the other.

    Dependences in the paper's model only make sense between tasks whose
    periods are identical or integer multiples of each other ("the possible
    dependence between tasks at different periods"), since the consumer needs
    an integer number of producer samples per execution.
    """
    validate_period(period_a)
    validate_period(period_b)
    return period_a % period_b == 0 or period_b % period_a == 0


def is_harmonic_set(periods: Sequence[int]) -> bool:
    """Return ``True`` when the periods form a harmonic chain.

    A set is harmonic when, after sorting, every period divides the next one.
    Harmonic sets are the common case in the control applications motivating
    the paper (a small number of sensors impose their periods, section 4).
    This is a stronger property than pairwise harmonicity of dependent tasks
    and is only used by workload generators and diagnostics.
    """
    ordered = sorted(validate_period(p) for p in periods)
    return all(ordered[i + 1] % ordered[i] == 0 for i in range(len(ordered) - 1))


def period_ratio(producer_period: int, consumer_period: int) -> tuple[int, int]:
    """Ratio of a multi-rate dependence, as ``(per_consumer, per_producer)``.

    Returns
    -------
    tuple[int, int]
        ``(n, 1)`` when the consumer is ``n`` times slower than the producer
        (the consumer needs ``n`` fresh samples per execution, the situation
        of Figure 1 of the paper), ``(1, n)`` when the consumer is ``n`` times
        faster (the same producer sample is consumed by ``n`` consumer
        instances) and ``(1, 1)`` for equal periods.

    Raises
    ------
    ModelError
        If the two periods are not harmonically related.
    """
    validate_period(producer_period)
    validate_period(consumer_period)
    if consumer_period % producer_period == 0:
        return (consumer_period // producer_period, 1)
    if producer_period % consumer_period == 0:
        return (1, producer_period // consumer_period)
    raise ModelError(
        "Dependent tasks must have harmonically related periods; "
        f"got producer period {producer_period} and consumer period {consumer_period}"
    )
