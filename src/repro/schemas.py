"""Central table of every versioned artifact schema this project emits.

Eight PRs of growth accumulated a dozen ``repro-<family>/<version>`` schema
tags, each defined as a string literal in the module that owns the artifact.
That convention had no guard: a new artifact could mint a tag nobody else
knew about, and a typo'd tag (``"repro-bnech/1"``) would round-trip happily
until a loader rejected it in production.  This module is the one place a
schema tag may be spelled as a literal; every owning module imports its
constant from here, and the ``schema-literal`` rule of :mod:`repro.lint`
statically rejects any matching string literal anywhere else in ``src/``.

Each table entry names the module that owns the schema — the module holding
the paired ``to_dict``/``from_dict`` (or writer/loader) for that artifact —
so the table doubles as the artifact catalog ``repro-lb list`` prints.
"""

from __future__ import annotations

__all__ = [
    "PIPELINE_SCHEMA",
    "RUN_SCHEMA",
    "RUN_SCHEMA_V2",
    "MANIFEST_SCHEMA",
    "BENCH_SCHEMA",
    "SWEEP_SCHEMA",
    "CONFORMANCE_SCHEMA",
    "SEARCH_SCHEMA",
    "REGRESSION_SCHEMA",
    "DELTA_SCHEMA",
    "CHURN_SCHEMA",
    "SERVICE_SCHEMA",
    "LINT_SCHEMA",
    "SCHEMA_TABLE",
]

#: Declarative pipeline config (``PipelineConfig.to_dict``/``from_dict``).
PIPELINE_SCHEMA = "repro-pipeline/1"
#: Structured pipeline run result (``RunResult``).
RUN_SCHEMA = "repro-run/1"
#: Run result carrying rebalance provenance (prior fingerprint + delta digest).
RUN_SCHEMA_V2 = "repro-run/2"
#: Per-run campaign manifest written by the campaign worker pool.
MANIFEST_SCHEMA = "repro-campaign/1"
#: Benchmark-harness artifact (wall times, metrics, env fingerprint).
BENCH_SCHEMA = "repro-bench/1"
#: Differential scenario-sweep artifact (cells + findings).
SWEEP_SCHEMA = "repro-sweep/1"
#: Simulation-conformance report (replay vs analytical model).
CONFORMANCE_SCHEMA = "repro-conformance/1"
#: Adversarial-search artifact (counterexamples + lineage).
SEARCH_SCHEMA = "repro-search/1"
#: Frozen regression-scenario registry entry.
REGRESSION_SCHEMA = "repro-regression/1"
#: Serialised churn timeline (workload deltas).
DELTA_SCHEMA = "repro-delta/1"
#: Churn-grid artifact (per-step differential + conformance verdicts).
CHURN_SCHEMA = "repro-churn/1"
#: Service wire envelope (every JSON endpoint except the raw cache fetch).
SERVICE_SCHEMA = "repro-service/1"
#: Invariant-linter findings artifact (``repro-lb lint``).
LINT_SCHEMA = "repro-lint/1"

#: Tag -> owning module (where the paired ``to_dict``/``from_dict`` lives).
SCHEMA_TABLE: dict[str, str] = {
    PIPELINE_SCHEMA: "repro.api.config",
    RUN_SCHEMA: "repro.api.pipeline",
    RUN_SCHEMA_V2: "repro.api.pipeline",
    MANIFEST_SCHEMA: "repro.experiments.campaign",
    BENCH_SCHEMA: "repro.bench.artifact",
    SWEEP_SCHEMA: "repro.scenarios.sweep",
    CONFORMANCE_SCHEMA: "repro.conformance.report",
    SEARCH_SCHEMA: "repro.search.artifact",
    REGRESSION_SCHEMA: "repro.scenarios.regression",
    DELTA_SCHEMA: "repro.churn.deltas",
    CHURN_SCHEMA: "repro.scenarios.churn",
    SERVICE_SCHEMA: "repro.service.protocol",
    LINT_SCHEMA: "repro.lint.artifact",
}
