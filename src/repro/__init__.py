"""repro — reproduction of Kermia & Sorel's load-balancing heuristic (2008).

The package implements, end to end, the system described in *Load Balancing
and Efficient Memory Usage for Homogeneous Distributed Real-Time Embedded
Systems* (SRMPDS'08 / ICPP Workshops 2008): the strictly periodic multi-rate
task model, a distributed scheduling substrate, the block-based load
balancing heuristic with efficient memory usage, a discrete-event simulator,
baselines, workload generators and the analysis tools that validate the
paper's theorems empirically.

Quickstart
----------
>>> from repro import (
...     Architecture, TaskGraph, schedule_application, balance_schedule,
... )
>>> graph = TaskGraph()
>>> _ = graph.create_task("sensor", period=5, wcet=1, memory=2)
>>> _ = graph.create_task("filter", period=10, wcet=2, memory=3)
>>> _ = graph.connect("sensor", "filter")
>>> architecture = Architecture.homogeneous(2)
>>> initial = schedule_application(graph, architecture)
>>> result = balance_schedule(initial)
>>> result.makespan_after <= result.makespan_before
True
"""

from repro._version import __version__
from repro.api import (
    BalanceOutcome,
    Pipeline,
    PipelineConfig,
    RunResult,
    available_balancers,
    balance,
    run_pipeline,
)
from repro.core import (
    Block,
    BlockBuildOptions,
    BlockCategory,
    CostPolicy,
    LoadBalanceResult,
    LoadBalancer,
    LoadBalancerOptions,
    balance_schedule,
    build_blocks,
)
from repro.errors import (
    AnalysisError,
    ArchitectureError,
    ConfigurationError,
    InfeasibleError,
    ModelError,
    ReproError,
    SchedulingError,
    ValidationError,
    WorkloadError,
)
from repro.model import (
    Architecture,
    CommunicationModel,
    Dependence,
    Medium,
    Processor,
    Task,
    TaskGraph,
    validate_problem,
)
from repro.scheduling import (
    InitialScheduler,
    PlacementPolicy,
    Schedule,
    ScheduledInstance,
    SchedulerOptions,
    assert_feasible,
    check_schedule,
    schedule_application,
)

__all__ = [
    "AnalysisError",
    "Architecture",
    "ArchitectureError",
    "BalanceOutcome",
    "Block",
    "BlockBuildOptions",
    "BlockCategory",
    "CommunicationModel",
    "ConfigurationError",
    "CostPolicy",
    "Dependence",
    "InfeasibleError",
    "InitialScheduler",
    "LoadBalanceResult",
    "LoadBalancer",
    "LoadBalancerOptions",
    "Medium",
    "ModelError",
    "Pipeline",
    "PipelineConfig",
    "PlacementPolicy",
    "Processor",
    "ReproError",
    "RunResult",
    "Schedule",
    "ScheduledInstance",
    "SchedulerOptions",
    "SchedulingError",
    "Task",
    "TaskGraph",
    "ValidationError",
    "WorkloadError",
    "__version__",
    "assert_feasible",
    "available_balancers",
    "balance",
    "balance_schedule",
    "build_blocks",
    "check_schedule",
    "run_pipeline",
    "schedule_application",
    "validate_problem",
]
