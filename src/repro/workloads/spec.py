"""Workload specification and the generated-problem container.

A :class:`WorkloadSpec` captures every knob of the synthetic workload
generators (task count, processor count, utilisation, period ladder, memory
range, graph shape, random seed); :class:`Workload` bundles the generated
:class:`~repro.model.graph.TaskGraph` and
:class:`~repro.model.architecture.Architecture` together with the spec that
produced them, so experiment tables can always state their parameters.
"""

from __future__ import annotations

import dataclasses
import enum
import math
from dataclasses import dataclass, field, replace
from typing import Any, Mapping

import numpy as np

from repro.errors import WorkloadError
from repro.model.architecture import Architecture, CommunicationModel
from repro.model.graph import TaskGraph

__all__ = ["GraphShape", "WorkloadSpec", "Workload"]


class GraphShape(enum.Enum):
    """Shape families of the synthetic task graphs."""

    #: Random layered DAG (general case).
    LAYERED = "layered"
    #: Linear pipelines (signal-processing chains).
    PIPELINE = "pipeline"
    #: Fork-join (scatter/gather) applications.
    FORK_JOIN = "fork_join"
    #: Multi-rate sensor fusion (many fast sensors feeding a slow fusion stage).
    SENSOR_FUSION = "sensor_fusion"


@dataclass(frozen=True, slots=True)
class WorkloadSpec:
    """Parameters of a synthetic workload."""

    #: Number of tasks.
    task_count: int = 40
    #: Number of identical processors.
    processor_count: int = 4
    #: Total utilisation as a fraction of the platform (0.3 means 30% of
    #: ``processor_count``); kept modest because non-preemptive strictly
    #: periodic scheduling fails quickly at high utilisation.
    utilization: float = 0.30
    #: Base period and number of harmonic levels of the period ladder.
    base_period: int = 20
    period_levels: int = 3
    period_ratio: int = 2
    #: Uniform range of the per-task required memory amount.
    memory_range: tuple[float, float] = (1.0, 10.0)
    #: Uniform range of the per-task produced data size.
    data_size_range: tuple[float, float] = (0.5, 2.0)
    #: Probability of an edge between a task and a candidate predecessor
    #: (layered shape only).
    edge_probability: float = 0.35
    #: Number of layers of the layered shape (``None`` = sqrt of task count).
    layer_count: int | None = None
    #: Graph shape family.
    shape: GraphShape = GraphShape.LAYERED
    #: Per-processor memory capacity (``inf`` = unconstrained).
    memory_capacity: float = math.inf
    #: Fixed communication latency of the architecture.
    comm_latency: float = 1.0
    #: Random seed.
    seed: int = 2008
    #: Free-form label used in experiment tables.
    label: str = ""

    def validate(self) -> None:
        """Raise :class:`WorkloadError` when the parameters are inconsistent."""
        if self.task_count < 1:
            raise WorkloadError("task_count must be >= 1")
        if self.processor_count < 1:
            raise WorkloadError("processor_count must be >= 1")
        if not 0.0 < self.utilization <= 1.0:
            raise WorkloadError("utilization must be in (0, 1] (fraction of the platform)")
        if self.base_period <= 0 or self.period_levels <= 0:
            raise WorkloadError("base_period and period_levels must be positive")
        if self.period_ratio < 2:
            raise WorkloadError("period_ratio must be >= 2")
        if self.memory_range[0] < 0 or self.memory_range[1] < self.memory_range[0]:
            raise WorkloadError("memory_range must be a non-negative, ordered pair")
        if self.data_size_range[0] < 0 or self.data_size_range[1] < self.data_size_range[0]:
            raise WorkloadError("data_size_range must be a non-negative, ordered pair")
        if not 0.0 <= self.edge_probability <= 1.0:
            raise WorkloadError("edge_probability must be in [0, 1]")
        if self.layer_count is not None and self.layer_count < 1:
            raise WorkloadError("layer_count must be >= 1 when given")
        if self.memory_capacity <= 0:
            raise WorkloadError("memory_capacity must be positive")
        if self.comm_latency < 0:
            raise WorkloadError("comm_latency must be non-negative")

    def with_updates(self, **changes: Any) -> "WorkloadSpec":
        """Copy of the spec with the given fields replaced."""
        return replace(self, **changes)

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe serialisation (round-trippable through :meth:`from_dict`).

        The unconstrained memory capacity (the ``inf`` default) serialises as
        ``null`` — strict JSON has no ``Infinity`` token — and round-trips
        back to ``inf``.
        """
        data = dataclasses.asdict(self)
        data["shape"] = self.shape.value
        data["memory_range"] = list(self.memory_range)
        data["data_size_range"] = list(self.data_size_range)
        if math.isinf(self.memory_capacity):
            data["memory_capacity"] = None
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "WorkloadSpec":
        """Rebuild a spec from its serialised form (unknown keys rejected)."""
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise WorkloadError(f"Unknown workload-spec key(s) {unknown}")
        kwargs = dict(data)
        if "shape" in kwargs:
            try:
                kwargs["shape"] = GraphShape(kwargs["shape"])
            except ValueError:
                raise WorkloadError(
                    f"Unknown graph shape {kwargs['shape']!r}; expected one of "
                    f"{[s.value for s in GraphShape]}"
                ) from None
        for key in ("memory_range", "data_size_range"):
            if key in kwargs:
                kwargs[key] = tuple(kwargs[key])
        if kwargs.get("memory_capacity", ...) is None:
            kwargs["memory_capacity"] = math.inf
        return cls(**kwargs)

    def rng(self) -> np.random.Generator:
        """Seeded random generator for this spec."""
        return np.random.default_rng(self.seed)

    def total_utilization(self) -> float:
        """Absolute total utilisation (``utilization × processor_count``)."""
        return self.utilization * self.processor_count

    def architecture(self) -> Architecture:
        """Build the homogeneous architecture described by the spec."""
        return Architecture.homogeneous(
            self.processor_count,
            memory_capacity=self.memory_capacity,
            comm=CommunicationModel(latency=self.comm_latency),
            name=self.label or "synthetic-architecture",
        )


@dataclass(slots=True)
class Workload:
    """A generated problem instance: application + architecture + provenance."""

    graph: TaskGraph
    architecture: Architecture
    spec: WorkloadSpec
    metadata: dict[str, Any] = field(default_factory=dict)

    @property
    def label(self) -> str:
        """Display label (spec label, falling back to a synthesised one)."""
        if self.spec.label:
            return self.spec.label
        return (
            f"{self.spec.shape.value}-N{self.spec.task_count}"
            f"-M{self.spec.processor_count}-s{self.spec.seed}"
        )

    def describe(self) -> str:
        """One-line description used in experiment tables."""
        return (
            f"{self.label}: {len(self.graph)} tasks, {len(self.graph.dependences)} edges, "
            f"{len(self.architecture)} processors, hyper-period {self.graph.hyper_period}, "
            f"utilisation {self.graph.total_utilization:.2f}"
        )
