"""Deterministic per-index seed derivation for workload grids.

A scenario grid (or a campaign fanned out over a process pool) needs one
independent random stream per cell, and the streams must not depend on *how*
the grid is executed — worker count, scheduling order, resume state.  Naive
schemes (``seed + index`` arithmetic, drawing child seeds from a shared
generator) either correlate neighbouring streams or silently change when the
iteration order does.

:func:`derive_seed` instead derives child ``index`` of ``root_seed`` through
``numpy``'s :class:`~numpy.random.SeedSequence` spawning mechanism — the
child is addressed *by key* (``spawn_key=(index,)``), so the mapping
``(root_seed, index) -> seed`` is a pure function: any worker can derive any
cell's seed at any time and every execution of the grid sees the same
workloads.  Child seeds are folded to 32 bits so they stay exactly
representable in JSON artifacts and config echoes.
"""

from __future__ import annotations

import numpy as np

__all__ = ["derive_seed", "spawn_seeds"]


def derive_seed(root_seed: int, index: int) -> int:
    """Seed of child ``index`` of ``root_seed`` (order- and worker-independent).

    Equivalent to ``SeedSequence(root_seed).spawn(index + 1)[index]`` but
    stateless: the child is constructed directly from its spawn key, so
    deriving seed 7 never requires (or disturbs) seeds 0–6.
    """
    sequence = np.random.SeedSequence(int(root_seed), spawn_key=(int(index),))
    return int(sequence.generate_state(1, dtype=np.uint32)[0])


def spawn_seeds(root_seed: int, count: int) -> list[int]:
    """The first ``count`` derived seeds of ``root_seed``."""
    return [derive_seed(root_seed, index) for index in range(count)]
