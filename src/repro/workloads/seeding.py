"""Deterministic per-index seed derivation for workload grids.

A scenario grid (or a campaign fanned out over a process pool) needs one
independent random stream per cell, and the streams must not depend on *how*
the grid is executed — worker count, scheduling order, resume state.  Naive
schemes (``seed + index`` arithmetic, drawing child seeds from a shared
generator) either correlate neighbouring streams or silently change when the
iteration order does.

:func:`derive_seed` instead derives child ``index`` of ``root_seed`` through
``numpy``'s :class:`~numpy.random.SeedSequence` spawning mechanism — the
child is addressed *by key* (``spawn_key=(index,)``), so the mapping
``(root_seed, index) -> seed`` is a pure function: any worker can derive any
cell's seed at any time and every execution of the grid sees the same
workloads.  Child seeds are folded to 32 bits so they stay exactly
representable in JSON artifacts and config echoes.

Consumers other than the scenario grids (the adversarial search driver's
seed chains, for example) must pass a ``stream`` namespace: their children
are addressed by ``spawn_key=(stream, index)``, a key that can never equal a
grid key (the keys differ in length), so a search chain rooted at the same
integer as a grid family still draws disjoint streams.  Malformed keys —
negative roots, indices or streams, which :class:`~numpy.random.SeedSequence`
would reject with an opaque ``ValueError`` deep inside numpy — are rejected
loudly here with a :class:`~repro.errors.WorkloadError` naming the offending
value.
"""

from __future__ import annotations

import numpy as np

from repro.errors import WorkloadError

__all__ = ["derive_seed", "spawn_seeds"]


def _check_key(name: str, value: int) -> int:
    """Validate one spawn-key component (non-negative integer)."""
    try:
        value = int(value)
    except (TypeError, ValueError):
        raise WorkloadError(f"{name} must be an integer, got {value!r}") from None
    if value < 0:
        raise WorkloadError(f"{name} must be non-negative, got {value}")
    return value


def derive_seed(root_seed: int, index: int, *, stream: int | None = None) -> int:
    """Seed of child ``index`` of ``root_seed`` (order- and worker-independent).

    Equivalent to ``SeedSequence(root_seed).spawn(index + 1)[index]`` but
    stateless: the child is constructed directly from its spawn key, so
    deriving seed 7 never requires (or disturbs) seeds 0–6.

    ``stream`` opens an independent namespace of chains: the child is
    addressed by ``spawn_key=(stream, index)`` instead of ``(index,)``, so a
    streamed chain never collides with the plain grid chain of the same root
    (nor with another stream).  The scenario grids use the plain chain; any
    other seed consumer must claim a stream.
    """
    root_seed = _check_key("root_seed", root_seed)
    index = _check_key("index", index)
    if stream is None:
        spawn_key: tuple[int, ...] = (index,)
    else:
        spawn_key = (_check_key("stream", stream), index)
    sequence = np.random.SeedSequence(root_seed, spawn_key=spawn_key)
    return int(sequence.generate_state(1, dtype=np.uint32)[0])


def spawn_seeds(root_seed: int, count: int, *, stream: int | None = None) -> list[int]:
    """The first ``count`` derived seeds of ``root_seed``."""
    if count < 0:
        raise WorkloadError(f"count must be non-negative, got {count}")
    return [derive_seed(root_seed, index, stream=stream) for index in range(count)]
