"""Period assignment for synthetic multi-periodic applications.

The paper's target applications (automatic control, signal processing) have a
*small* number of distinct periods imposed by a few sensors and actuators
(section 4 relies on this to argue the number of blocks is small), and
dependent tasks must have harmonically related periods.  The generators here
therefore draw periods from a small harmonic ladder ``base · ratio^k`` and
assign them either uniformly or per pipeline stage.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.errors import WorkloadError
from repro.model.periods import lcm_many

__all__ = ["harmonic_ladder", "assign_periods", "rate_monotonic_layers"]


def harmonic_ladder(base: int, levels: int, *, ratio: int = 2) -> list[int]:
    """Periods ``base, base·ratio, base·ratio², ...`` (a harmonic chain).

    Raises
    ------
    WorkloadError
        If the parameters are not positive integers or ``ratio < 2``.
    """
    if base <= 0 or levels <= 0:
        raise WorkloadError("base and levels must be positive")
    if ratio < 2:
        raise WorkloadError("ratio must be >= 2 to produce distinct harmonic periods")
    return [base * ratio**level for level in range(levels)]


def assign_periods(
    count: int,
    periods: Sequence[int],
    rng: np.random.Generator,
    *,
    weights: Sequence[float] | None = None,
) -> list[int]:
    """Draw one period per task from ``periods`` (optionally weighted).

    The default weighting favours the faster periods slightly, mimicking the
    sensor-heavy applications the paper targets.
    """
    if count <= 0:
        raise WorkloadError("count must be positive")
    if not periods:
        raise WorkloadError("periods must not be empty")
    if weights is None:
        raw = np.array([1.0 / (index + 1) for index in range(len(periods))])
    else:
        if len(weights) != len(periods):
            raise WorkloadError("weights must match periods in length")
        raw = np.array(weights, dtype=float)
    if raw.sum() <= 0:
        raise WorkloadError("weights must sum to a positive value")
    probabilities = raw / raw.sum()
    drawn = rng.choice(len(periods), size=count, p=probabilities)
    return [int(periods[index]) for index in drawn]


def rate_monotonic_layers(layer_count: int, base: int, *, ratio: int = 2) -> list[int]:
    """One period per pipeline layer, slower as data flows downstream.

    Typical of sensor → filter → fusion → actuator chains: the sensor layer
    runs at the base rate and each subsequent processing layer runs ``ratio``
    times slower (consuming ``ratio`` samples per execution, the situation of
    Figure 1).  The hyper-period of the result is the last layer's period.
    """
    ladder = harmonic_ladder(base, layer_count, ratio=ratio)
    # Sanity: a harmonic ladder's LCM is its largest element.
    if lcm_many(ladder) != ladder[-1]:  # pragma: no cover - defensive
        raise WorkloadError("harmonic ladder construction is inconsistent")
    return ladder
