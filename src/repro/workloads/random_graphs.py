"""Random layered DAG generator.

The general-purpose synthetic workload of the reproduction: tasks are spread
over layers, data flows from one layer to the next (with optional
layer-skipping edges), periods come from a small harmonic ladder, WCETs from
a UUniFast utilisation split and memory amounts from a uniform range.  The
result is representative of the "several thousands of tasks and tens of
processors" industrial applications the paper mentions, while remaining fully
parameterised and reproducible (seeded).
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import WorkloadError
from repro.model.graph import TaskGraph
from repro.workloads.periods import assign_periods, harmonic_ladder
from repro.workloads.spec import Workload, WorkloadSpec
from repro.workloads.utilization import uunifast_discard, wcet_from_utilization

__all__ = ["layered_dag"]


def _layer_sizes(task_count: int, layer_count: int, rng: np.random.Generator) -> list[int]:
    """Split ``task_count`` tasks over ``layer_count`` non-empty layers."""
    if layer_count > task_count:
        layer_count = task_count
    sizes = [1] * layer_count
    for _ in range(task_count - layer_count):
        sizes[int(rng.integers(0, layer_count))] += 1
    return sizes


def layered_dag(spec: WorkloadSpec) -> Workload:
    """Generate a layered random DAG workload from ``spec``."""
    spec.validate()
    rng = spec.rng()
    layer_count = spec.layer_count or max(2, round(math.sqrt(spec.task_count)))
    sizes = _layer_sizes(spec.task_count, layer_count, rng)

    periods_ladder = harmonic_ladder(spec.base_period, spec.period_levels, ratio=spec.period_ratio)
    periods = assign_periods(spec.task_count, periods_ladder, rng)
    try:
        utilizations = uunifast_discard(
            spec.task_count, spec.total_utilization(), rng, max_utilization=0.9
        )
    except WorkloadError as exc:
        raise WorkloadError(f"Cannot generate workload {spec.label!r}: {exc}") from exc

    graph = TaskGraph(name=spec.label or f"layered-{spec.task_count}t-{spec.seed}")
    low_mem, high_mem = spec.memory_range
    low_data, high_data = spec.data_size_range

    names: list[list[str]] = []
    task_index = 0
    for layer, size in enumerate(sizes):
        layer_names: list[str] = []
        for _ in range(size):
            name = f"t{task_index:04d}"
            period = periods[task_index]
            wcet = wcet_from_utilization(utilizations[task_index], period)
            memory = round(float(rng.uniform(low_mem, high_mem)), 1)
            data_size = round(float(rng.uniform(low_data, high_data)), 2)
            graph.create_task(
                name,
                period=period,
                wcet=wcet,
                memory=memory,
                data_size=data_size,
                layer=layer,
            )
            layer_names.append(name)
            task_index += 1
        names.append(layer_names)

    # Edges: every non-source task gets at least one predecessor from the
    # previous layer; extra edges are added with the configured probability,
    # including occasional layer-skipping edges (half the probability).
    for layer in range(1, len(names)):
        previous = names[layer - 1]
        for consumer in names[layer]:
            mandatory = previous[int(rng.integers(0, len(previous)))]
            graph.connect(mandatory, consumer)
            for producer in previous:
                if producer != mandatory and rng.random() < spec.edge_probability:
                    graph.connect(producer, consumer)
            if layer >= 2 and rng.random() < spec.edge_probability / 2:
                earlier_layer = names[int(rng.integers(0, layer - 1))]
                producer = earlier_layer[int(rng.integers(0, len(earlier_layer)))]
                if producer != consumer and not graph.has_dependence(producer, consumer):
                    graph.connect(producer, consumer)

    graph.validate()
    return Workload(
        graph=graph,
        architecture=spec.architecture(),
        spec=spec,
        metadata={"layers": sizes, "periods": periods_ladder},
    )
