"""The paper's worked example (Figures 2-4, section 3.3), encoded exactly.

The application has five tasks ``a..e`` with periods {3, 6, 6, 12, 12}, unit
WCETs, memory requirements {4, 1, 1, 2, 2} and a three-processor architecture
connected by a single medium with communication time ``C = 1``.

The dependence structure of Figure 2 is not fully legible in the archived
text, so it is reconstructed here as the unique simple chain/diamond that is
consistent with every number printed in the paper (the Figure-3 start times,
the total execution time of 15, the per-step gains and the per-step memory
sums of section 3.3, and the final result of Figure 4):

    a -> b,  b -> c,  b -> d,  c -> e,  d -> e

with ``a`` twice as fast as ``b``/``c`` and four times as fast as ``d``/``e``
(so ``b`` consumes two samples of ``a`` per execution and ``d`` consumes two
samples of ``b``, the multi-rate situation of Figure 1).

:func:`paper_initial_schedule` returns the *exact* schedule of Figure 3 (all
instances of ``a`` on ``P1``, ``b``/``c`` on ``P2``, ``d``/``e`` on ``P3``,
total execution time 15, memory [16, 4, 4]); it is hand-encoded rather than
produced by :mod:`repro.scheduling.heuristic` so that experiment E1 does not
depend on the initial-scheduler stand-in.
"""

from __future__ import annotations

from repro.model.architecture import Architecture, CommunicationModel, Medium, Processor
from repro.model.graph import TaskGraph
from repro.scheduling.communications import synthesize_communications
from repro.scheduling.schedule import Schedule, ScheduledInstance

__all__ = [
    "paper_task_graph",
    "paper_architecture",
    "paper_initial_schedule",
    "PAPER_EXPECTATIONS",
]


#: Every number the paper states about the worked example, used by tests and
#: by experiment E1 to compare "paper" vs "measured".
PAPER_EXPECTATIONS: dict[str, object] = {
    "makespan_before": 15.0,
    "makespan_after": 14.0,
    "memory_before": {"P1": 16.0, "P2": 4.0, "P3": 4.0},
    "memory_after": {"P1": 10.0, "P2": 6.0, "P3": 8.0},
    "block_count": 7,
    # (block label, chosen processor) in processing order — the 7 steps of
    # section 3.3.
    "decisions": [
        ("[a#0]", "P1"),
        ("[a#1]", "P2"),
        ("[b#0-c#0]", "P2"),
        ("[a#2]", "P3"),
        ("[a#3]", "P1"),
        ("[b#1-c#1]", "P1"),
        ("[d#0-e#0]", "P3"),
    ],
    # The start-time update of step 3: [b2-c2] decreases from 11 to 10.
    "updated_block_start": {"[b#1-c#1]": 10.0},
    "total_gain": 1.0,
}


def paper_task_graph() -> TaskGraph:
    """Figure-2 application: five tasks, multi-rate dependences."""
    graph = TaskGraph(name="kermia-sorel-2008-example")
    graph.create_task("a", period=3, wcet=1, memory=4, data_size=1.0)
    graph.create_task("b", period=6, wcet=1, memory=1, data_size=1.0)
    graph.create_task("c", period=6, wcet=1, memory=1, data_size=1.0)
    graph.create_task("d", period=12, wcet=1, memory=2, data_size=1.0)
    graph.create_task("e", period=12, wcet=1, memory=2, data_size=1.0)
    graph.connect("a", "b")
    graph.connect("b", "c")
    graph.connect("b", "d")
    graph.connect("c", "e")
    graph.connect("d", "e")
    graph.validate()
    return graph


def paper_architecture(memory_capacity: float = float("inf")) -> Architecture:
    """Figure-2 architecture: three identical processors on one medium, C = 1."""
    processors = [Processor(name, memory_capacity=memory_capacity) for name in ("P1", "P2", "P3")]
    media = [Medium("Med", ("P1", "P2", "P3"))]
    return Architecture(
        processors,
        media,
        comm=CommunicationModel(latency=1.0),
        name="kermia-sorel-2008-architecture",
    )


def paper_initial_schedule(
    graph: TaskGraph | None = None, architecture: Architecture | None = None
) -> Schedule:
    """The Figure-3 schedule produced by the authors' reference-[4] heuristic.

    ==========  =========  ==========================
    processor   tasks      start times
    ==========  =========  ==========================
    P1          a#0..a#3   0, 3, 6, 9
    P2          b#0, c#0   5, 6
    P2          b#1, c#1   11, 12
    P3          d#0, e#0   13, 14
    ==========  =========  ==========================

    Total execution time 15; memory [P1: 16, P2: 4, P3: 4].
    """
    graph = graph or paper_task_graph()
    architecture = architecture or paper_architecture()

    def si(task: str, index: int, processor: str, start: float) -> ScheduledInstance:
        spec = graph.task(task)
        return ScheduledInstance(
            task=task,
            index=index,
            processor=processor,
            start=start,
            wcet=spec.wcet,
            memory=spec.memory,
        )

    instances = [
        si("a", 0, "P1", 0.0),
        si("a", 1, "P1", 3.0),
        si("a", 2, "P1", 6.0),
        si("a", 3, "P1", 9.0),
        si("b", 0, "P2", 5.0),
        si("c", 0, "P2", 6.0),
        si("b", 1, "P2", 11.0),
        si("c", 1, "P2", 12.0),
        si("d", 0, "P3", 13.0),
        si("e", 0, "P3", 14.0),
    ]
    schedule = Schedule(graph, architecture, instances, ())
    return schedule.with_instances(schedule.instances, synthesize_communications(schedule))
