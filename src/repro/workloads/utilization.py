"""Utilisation generators (UUniFast and friends).

Synthetic real-time task sets are traditionally parameterised by their total
processor utilisation.  The UUniFast algorithm (Bini & Buttazzo) draws ``n``
per-task utilisations summing exactly to a target value with a uniform
distribution over the valid simplex; the discard variant keeps re-drawing
until every individual utilisation stays below a cap (needed here because a
non-preemptive strictly periodic task must have ``WCET <= period``, i.e.
utilisation below 1).
"""

from __future__ import annotations

import numpy as np

from repro.errors import WorkloadError

__all__ = ["uunifast", "uunifast_discard", "wcet_from_utilization"]


def uunifast(count: int, total: float, rng: np.random.Generator) -> list[float]:
    """Draw ``count`` utilisations summing to ``total`` (UUniFast).

    Raises
    ------
    WorkloadError
        If ``count`` is not positive or ``total`` is negative.
    """
    if count <= 0:
        raise WorkloadError(f"count must be positive, got {count}")
    if total < 0:
        raise WorkloadError(f"total utilisation must be non-negative, got {total}")
    utilizations: list[float] = []
    remaining = total
    for position in range(1, count):
        next_remaining = remaining * rng.random() ** (1.0 / (count - position))
        utilizations.append(remaining - next_remaining)
        remaining = next_remaining
    utilizations.append(remaining)
    return utilizations


def uunifast_discard(
    count: int,
    total: float,
    rng: np.random.Generator,
    *,
    max_utilization: float = 0.95,
    max_attempts: int = 1000,
) -> list[float]:
    """UUniFast with per-task cap: re-draw until no utilisation exceeds the cap.

    Raises
    ------
    WorkloadError
        If the cap is impossible (``total > count * max_utilization``) or the
        attempt limit is exceeded.
    """
    if total > count * max_utilization + 1e-12:
        raise WorkloadError(
            f"Cannot split utilisation {total} over {count} tasks with a per-task cap "
            f"of {max_utilization}"
        )
    for _attempt in range(max_attempts):
        drawn = uunifast(count, total, rng)
        if max(drawn) <= max_utilization:
            return drawn
    raise WorkloadError(
        f"uunifast_discard failed to satisfy the per-task cap {max_utilization} after "
        f"{max_attempts} attempts (total {total}, count {count})"
    )


def wcet_from_utilization(
    utilization: float, period: int, *, minimum: float = 0.05, decimals: int | None = 2
) -> float:
    """WCET implied by a utilisation and a period, clamped to ``[minimum, period]``.

    ``decimals=None`` keeps the full floating-point value; the default rounds
    to 2 decimals which keeps schedules readable without materially changing
    utilisations.
    """
    if period <= 0:
        raise WorkloadError(f"period must be positive, got {period}")
    wcet = max(minimum, utilization * period)
    wcet = min(wcet, float(period))
    if decimals is not None:
        wcet = round(wcet, decimals)
        wcet = min(max(wcet, minimum), float(period))
    return wcet
