"""Workload generators.

* :mod:`~repro.workloads.paper_example` — the exact worked example of the paper;
* :mod:`~repro.workloads.spec` — :class:`WorkloadSpec` / :class:`Workload`;
* :mod:`~repro.workloads.random_graphs` — layered random DAGs;
* :mod:`~repro.workloads.chains` — pipelines, fork-join, sensor fusion;
* :mod:`~repro.workloads.utilization` / :mod:`~repro.workloads.periods` —
  UUniFast utilisations and harmonic period ladders;
* :mod:`~repro.workloads.generator` — high-level entry points.
"""

from repro.workloads.chains import fork_join, pipeline, sensor_fusion
from repro.workloads.generator import (
    generate_many,
    generate_workload,
    scheduled_workload,
    scheduled_workloads,
)
from repro.workloads.paper_example import (
    PAPER_EXPECTATIONS,
    paper_architecture,
    paper_initial_schedule,
    paper_task_graph,
)
from repro.workloads.periods import assign_periods, harmonic_ladder, rate_monotonic_layers
from repro.workloads.random_graphs import layered_dag
from repro.workloads.seeding import derive_seed, spawn_seeds
from repro.workloads.spec import GraphShape, Workload, WorkloadSpec
from repro.workloads.utilization import uunifast, uunifast_discard, wcet_from_utilization

__all__ = [
    "GraphShape",
    "PAPER_EXPECTATIONS",
    "Workload",
    "WorkloadSpec",
    "assign_periods",
    "derive_seed",
    "fork_join",
    "generate_many",
    "spawn_seeds",
    "generate_workload",
    "harmonic_ladder",
    "layered_dag",
    "paper_architecture",
    "paper_initial_schedule",
    "paper_task_graph",
    "pipeline",
    "rate_monotonic_layers",
    "scheduled_workload",
    "scheduled_workloads",
    "sensor_fusion",
    "uunifast",
    "uunifast_discard",
    "wcet_from_utilization",
]
