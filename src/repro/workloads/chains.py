"""Structured workload generators: pipelines, fork-join and sensor fusion.

These shapes mirror the applications the paper's introduction motivates
(avionics, automotive, robotics signal-processing and control loops): chains
of processing stages driven by a few sensors, with slower stages consuming
several samples of their faster producers (Figure 1's multi-rate pattern).
"""

from __future__ import annotations

import numpy as np

from repro.errors import WorkloadError
from repro.model.graph import TaskGraph
from repro.workloads.periods import rate_monotonic_layers
from repro.workloads.spec import GraphShape, Workload, WorkloadSpec
from repro.workloads.utilization import uunifast_discard, wcet_from_utilization

__all__ = ["pipeline", "fork_join", "sensor_fusion"]


def _memory(rng: np.random.Generator, spec: WorkloadSpec) -> float:
    low, high = spec.memory_range
    return round(float(rng.uniform(low, high)), 1)


def _data_size(rng: np.random.Generator, spec: WorkloadSpec) -> float:
    low, high = spec.data_size_range
    return round(float(rng.uniform(low, high)), 2)


def _utilizations(spec: WorkloadSpec, count: int, rng: np.random.Generator) -> list[float]:
    return uunifast_discard(count, spec.total_utilization(), rng, max_utilization=0.9)


def pipeline(spec: WorkloadSpec, *, chains: int | None = None) -> Workload:
    """Parallel signal-processing pipelines.

    ``chains`` independent linear chains (default: one per processor) share
    the task budget; the stages of a chain slow down along the data path
    following the spec's harmonic ladder, so downstream stages consume several
    samples of their upstream producers.
    """
    spec.validate()
    rng = spec.rng()
    chain_count = chains if chains is not None else max(1, spec.processor_count)
    if chain_count > spec.task_count:
        raise WorkloadError("More chains than tasks requested")
    periods = rate_monotonic_layers(spec.period_levels, spec.base_period, ratio=spec.period_ratio)
    utilizations = _utilizations(spec, spec.task_count, rng)

    graph = TaskGraph(name=spec.label or f"pipeline-{spec.task_count}t-{spec.seed}")
    lengths = [spec.task_count // chain_count] * chain_count
    for index in range(spec.task_count % chain_count):
        lengths[index] += 1

    task_index = 0
    for chain, length in enumerate(lengths):
        previous: str | None = None
        for stage in range(length):
            name = f"c{chain:02d}s{stage:03d}"
            level = min(stage * spec.period_levels // max(length, 1), spec.period_levels - 1)
            period = periods[level]
            wcet = wcet_from_utilization(utilizations[task_index], period)
            graph.create_task(
                name,
                period=period,
                wcet=wcet,
                memory=_memory(rng, spec),
                data_size=_data_size(rng, spec),
                chain=chain,
                stage=stage,
            )
            if previous is not None:
                graph.connect(previous, name)
            previous = name
            task_index += 1

    graph.validate()
    return Workload(graph=graph, architecture=spec.architecture(), spec=spec,
                    metadata={"chains": chain_count, "periods": periods})


def fork_join(spec: WorkloadSpec, *, branches: int | None = None) -> Workload:
    """Fork-join (scatter/gather) application.

    A fast source scatters work to ``branches`` parallel branch tasks running
    at the same rate; a join stage running slower gathers their results (so it
    buffers several samples per branch), followed by a final actuator stage.
    """
    spec.validate()
    rng = spec.rng()
    branch_count = branches if branches is not None else max(2, spec.processor_count)
    if spec.task_count < branch_count + 3:
        raise WorkloadError(
            f"fork_join needs at least {branch_count + 3} tasks (source, join, sink, branches)"
        )
    periods = rate_monotonic_layers(max(2, spec.period_levels), spec.base_period,
                                    ratio=spec.period_ratio)
    fast, slow = periods[0], periods[min(1, len(periods) - 1)]
    utilizations = _utilizations(spec, spec.task_count, rng)

    graph = TaskGraph(name=spec.label or f"forkjoin-{spec.task_count}t-{spec.seed}")
    graph.create_task("source", period=fast, wcet=wcet_from_utilization(utilizations[0], fast),
                      memory=_memory(rng, spec), data_size=_data_size(rng, spec))
    graph.create_task("join", period=slow, wcet=wcet_from_utilization(utilizations[1], slow),
                      memory=_memory(rng, spec), data_size=_data_size(rng, spec))
    graph.create_task("sink", period=slow, wcet=wcet_from_utilization(utilizations[2], slow),
                      memory=_memory(rng, spec), data_size=_data_size(rng, spec))
    graph.connect("join", "sink")

    # Branch tasks: distribute the remaining budget in branch-length chains.
    remaining = spec.task_count - 3
    per_branch = [remaining // branch_count] * branch_count
    for index in range(remaining % branch_count):
        per_branch[index] += 1
    task_index = 3
    for branch, length in enumerate(per_branch):
        previous = "source"
        for stage in range(max(1, length)):
            if task_index >= spec.task_count:
                break
            name = f"b{branch:02d}s{stage:02d}"
            wcet = wcet_from_utilization(utilizations[task_index], fast)
            graph.create_task(name, period=fast, wcet=wcet, memory=_memory(rng, spec),
                              data_size=_data_size(rng, spec), branch=branch)
            graph.connect(previous, name)
            previous = name
            task_index += 1
        graph.connect(previous, "join")

    graph.validate()
    return Workload(graph=graph, architecture=spec.architecture(), spec=spec,
                    metadata={"branches": branch_count, "fast": fast, "slow": slow})


def sensor_fusion(spec: WorkloadSpec, *, sensors: int | None = None) -> Workload:
    """Multi-rate sensor fusion application (the paper's motivating pattern).

    ``sensors`` fast sensor tasks each feed a filter at the same rate; every
    filter feeds a fusion stage running several times slower (which therefore
    buffers several samples per filter, as in Figure 1); the fusion stage
    drives one or more actuators at the slowest rate.
    """
    spec.validate()
    rng = spec.rng()
    sensor_count = sensors if sensors is not None else max(2, spec.task_count // 4)
    minimum = 2 * sensor_count + 2
    if spec.task_count < minimum:
        raise WorkloadError(f"sensor_fusion needs at least {minimum} tasks for {sensor_count} sensors")
    periods = rate_monotonic_layers(max(3, spec.period_levels), spec.base_period,
                                    ratio=spec.period_ratio)
    fast, mid, slow = periods[0], periods[1], periods[2]
    utilizations = _utilizations(spec, spec.task_count, rng)

    graph = TaskGraph(name=spec.label or f"fusion-{spec.task_count}t-{spec.seed}")
    task_index = 0

    def new_task(name: str, period: int, **metadata: object) -> str:
        nonlocal task_index
        wcet = wcet_from_utilization(utilizations[task_index], period)
        graph.create_task(name, period=period, wcet=wcet, memory=_memory(rng, spec),
                          data_size=_data_size(rng, spec), **metadata)
        task_index += 1
        return name

    fusion = None
    filters = []
    for sensor in range(sensor_count):
        sensor_name = new_task(f"sensor{sensor:02d}", fast, role="sensor")
        filter_name = new_task(f"filter{sensor:02d}", fast, role="filter")
        graph.connect(sensor_name, filter_name)
        filters.append(filter_name)
    fusion = new_task("fusion", mid, role="fusion")
    for filter_name in filters:
        graph.connect(filter_name, fusion)

    actuator_budget = spec.task_count - task_index
    previous = fusion
    for actuator in range(max(1, actuator_budget)):
        if task_index >= spec.task_count:
            break
        name = new_task(f"actuator{actuator:02d}", slow, role="actuator")
        graph.connect(previous, name)
        previous = name

    graph.validate()
    return Workload(graph=graph, architecture=spec.architecture(), spec=spec,
                    metadata={"sensors": sensor_count, "rates": (fast, mid, slow)})


def by_shape(spec: WorkloadSpec) -> Workload:
    """Dispatch on ``spec.shape`` (used by :func:`repro.workloads.generator.generate_workload`)."""
    from repro.workloads.random_graphs import layered_dag

    if spec.shape is GraphShape.LAYERED:
        return layered_dag(spec)
    if spec.shape is GraphShape.PIPELINE:
        return pipeline(spec)
    if spec.shape is GraphShape.FORK_JOIN:
        return fork_join(spec)
    if spec.shape is GraphShape.SENSOR_FUSION:
        return sensor_fusion(spec)
    raise WorkloadError(f"Unknown graph shape {spec.shape!r}")  # pragma: no cover
