"""High-level workload generation entry points.

:func:`generate_workload` dispatches a :class:`~repro.workloads.spec.WorkloadSpec`
to the right shape generator; :func:`generate_many` produces seed sweeps for
statistical experiments; :func:`scheduled_workload` additionally runs the
initial scheduling heuristic so experiments can start straight from a
schedule (skipping unschedulable draws when requested).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.errors import InfeasibleError, WorkloadError
from repro.scheduling.heuristic import SchedulerOptions, schedule_application
from repro.scheduling.schedule import Schedule
from repro.workloads.chains import by_shape
from repro.workloads.seeding import spawn_seeds
from repro.workloads.spec import Workload, WorkloadSpec

__all__ = ["generate_workload", "generate_many", "scheduled_workload", "scheduled_workloads"]


def generate_workload(spec: WorkloadSpec) -> Workload:
    """Generate one workload according to ``spec``."""
    return by_shape(spec)


def generate_many(
    spec: WorkloadSpec,
    seeds: Iterable[int] | None = None,
    *,
    count: int | None = None,
) -> list[Workload]:
    """Generate a grid of workloads sharing every parameter but the seed.

    With explicit ``seeds`` each workload uses that seed verbatim (the
    historical E-experiment convention).  With ``count`` the per-workload
    seeds are instead derived from ``(spec.seed, index)`` through
    :func:`~repro.workloads.seeding.derive_seed`, giving every grid cell an
    independent random stream that is reproducible regardless of worker
    count or execution order.

    Duplicate explicit seeds are rejected loudly: two grid cells silently
    sharing a random stream would masquerade as independent samples (and a
    search-driven seed chain accidentally replaying a grid seed would be
    indistinguishable from the grid cell it shadows).
    """
    if (seeds is None) == (count is None):
        raise WorkloadError("generate_many takes exactly one of 'seeds' or 'count'")
    if count is not None:
        if count < 0:
            raise WorkloadError("count must be non-negative")
        seeds = spawn_seeds(spec.seed, count)
    else:
        seeds = [int(seed) for seed in seeds]
        duplicates = sorted({seed for seed in seeds if seeds.count(seed) > 1})
        if duplicates:
            raise WorkloadError(
                f"generate_many received duplicate seed(s) {duplicates}: each grid "
                "cell needs its own random stream (derive distinct seeds with "
                "repro.workloads.seeding.derive_seed)"
            )
    return [generate_workload(spec.with_updates(seed=int(seed))) for seed in seeds]


def scheduled_workload(
    spec: WorkloadSpec, options: SchedulerOptions | None = None
) -> tuple[Workload, Schedule]:
    """Generate a workload and its initial schedule.

    Raises
    ------
    InfeasibleError
        When the initial scheduling heuristic cannot place the tasks (high
        utilisation draws can be unschedulable non-preemptively).
    """
    workload = generate_workload(spec)
    schedule = schedule_application(workload.graph, workload.architecture, options)
    return workload, schedule


def scheduled_workloads(
    spec: WorkloadSpec,
    seeds: Iterable[int],
    options: SchedulerOptions | None = None,
    *,
    skip_infeasible: bool = True,
) -> Iterator[tuple[Workload, Schedule]]:
    """Yield ``(workload, initial schedule)`` pairs for a seed sweep.

    Unschedulable draws are skipped (with the default ``skip_infeasible``) so
    experiment campaigns keep their sample size predictable; pass ``False`` to
    surface the :class:`~repro.errors.InfeasibleError` instead.
    """
    for seed in seeds:
        candidate = spec.with_updates(seed=int(seed))
        try:
            yield scheduled_workload(candidate, options)
        except InfeasibleError:
            if not skip_infeasible:
                raise
