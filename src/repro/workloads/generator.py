"""High-level workload generation entry points.

:func:`generate_workload` dispatches a :class:`~repro.workloads.spec.WorkloadSpec`
to the right shape generator; :func:`generate_many` produces seed sweeps for
statistical experiments; :func:`scheduled_workload` additionally runs the
initial scheduling heuristic so experiments can start straight from a
schedule (skipping unschedulable draws when requested).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.errors import InfeasibleError
from repro.scheduling.heuristic import SchedulerOptions, schedule_application
from repro.scheduling.schedule import Schedule
from repro.workloads.chains import by_shape
from repro.workloads.spec import Workload, WorkloadSpec

__all__ = ["generate_workload", "generate_many", "scheduled_workload", "scheduled_workloads"]


def generate_workload(spec: WorkloadSpec) -> Workload:
    """Generate one workload according to ``spec``."""
    return by_shape(spec)


def generate_many(spec: WorkloadSpec, seeds: Iterable[int]) -> list[Workload]:
    """Generate one workload per seed, sharing every other parameter."""
    return [generate_workload(spec.with_updates(seed=int(seed))) for seed in seeds]


def scheduled_workload(
    spec: WorkloadSpec, options: SchedulerOptions | None = None
) -> tuple[Workload, Schedule]:
    """Generate a workload and its initial schedule.

    Raises
    ------
    InfeasibleError
        When the initial scheduling heuristic cannot place the tasks (high
        utilisation draws can be unschedulable non-preemptively).
    """
    workload = generate_workload(spec)
    schedule = schedule_application(workload.graph, workload.architecture, options)
    return workload, schedule


def scheduled_workloads(
    spec: WorkloadSpec,
    seeds: Iterable[int],
    options: SchedulerOptions | None = None,
    *,
    skip_infeasible: bool = True,
) -> Iterator[tuple[Workload, Schedule]]:
    """Yield ``(workload, initial schedule)`` pairs for a seed sweep.

    Unschedulable draws are skipped (with the default ``skip_infeasible``) so
    experiment campaigns keep their sample size predictable; pass ``False`` to
    surface the :class:`~repro.errors.InfeasibleError` instead.
    """
    for seed in seeds:
        candidate = spec.with_updates(seed=int(seed))
        try:
            yield scheduled_workload(candidate, options)
        except InfeasibleError:
            if not skip_infeasible:
                raise
