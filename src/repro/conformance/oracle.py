"""The simulation-conformance oracle.

:func:`check_conformance` replays a :class:`~repro.scheduling.schedule.Schedule`
through the discrete-event engine under the paper's analytic assumptions
(:func:`repro.simulation.engine.replay`: fixed communication times, no medium
contention) and structurally diffs the simulated trace against what the
analytical model promises:

``verdict_agreement``
    The feasibility checker and the replay must tell the same story: a
    feasible schedule replays with no violation, and an infeasible one (for
    the violation classes a replay can observe — overlaps, precedence,
    repeatability over ≥ 2 hyper-periods) must *not* replay cleanly.
``clean_replay``
    Every timing violation the replay recorded, with its simulated time —
    the per-event refinement of ``verdict_agreement``.
``instance_coverage``
    Every ``(task, index, repetition)`` executes exactly once.
``start_times``
    Each instance starts at its strictly periodic time
    (``start + repetition × H``) and runs for exactly its WCET.
``busy_intervals``
    Per-processor executed intervals equal the unrolled schedule
    (:meth:`~repro.scheduling.schedule.Schedule.busy_intervals`).
``steady_occupancy``
    The circular busy pieces of the first simulated hyper-period, pushed
    through an :class:`~repro.core.occupancy.OccupancyTimeline`, equal the
    pieces of the schedule's steady patterns — the conflict engine's own
    normalisation is the comparator, so the oracle shares its interval
    semantics with the balancer it audits.
``communications``
    Simulated transfers match the schedule's
    :class:`~repro.scheduling.schedule.CommOperation` records one-for-one
    (missing, unmodelled, or time-shifted transfers all diverge).
``dependence_order``
    The simulated trace itself never contradicts the instance dependence
    graph: producers complete (and cross-processor data arrives) before
    their consumers start.
``memory``
    The simulated peak (static + buffers) stays within the analytic
    worst-case bound (:func:`repro.metrics.memory.buffered_memory_bound`,
    scaled by the number of concurrently live hyper-periods) and no buffered
    sample leaks; only checked on clean replays, where the analytic bound's
    premises hold.

Two verdicts come out of the diff (both serialised in the report):

* ``conforms`` — the replay matched the schedule's own promises exactly.  A
  corrupted schedule never conforms; ``repro-lb conform --config`` gates on
  this.
* ``consistent`` — the simulator and the analytical model agree: either the
  schedule is feasible and conforms, or it is infeasible and the replay
  diverged exactly as predicted.  The sweep's deep tier and the grid-mode
  ``repro-lb conform`` gate on this (a timing-blind baseline producing an
  infeasible schedule is a datum; the simulator *disagreeing* with the
  checker about it would be a bug).

Every mismatch carries the simulated time at which it bites; the earliest
one is pinned as the report's ``first_divergence``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.conformance.report import CheckResult, ConformanceReport
from repro.core.occupancy import OccupancyTimeline
from repro.epsilon import EPSILON
from repro.errors import ConfigurationError
from repro.metrics.memory import buffered_memory_bound
from repro.scheduling.communications import synthesize_communications
from repro.scheduling.feasibility import FeasibilityReport, check_schedule
from repro.scheduling.schedule import Schedule
from repro.scheduling.unrolling import instance_edges, unrolled_instances
from repro.simulation.engine import SimulationResult, replay
from repro.simulation.events import ViolationKind

__all__ = ["ConformanceOptions", "check_conformance"]


@dataclass(frozen=True, slots=True)
class ConformanceOptions:
    """Options of :func:`check_conformance`."""

    #: Hyper-periods to replay (≥ 2 exercises the repeatability condition).
    hyper_periods: int = 2
    #: Numeric tolerance of every time/size comparison (the scheduling
    #: substrate's own resolution).
    tolerance: float = EPSILON
    #: Mismatches kept per check in the serialised report (the full count is
    #: always recorded in ``mismatch_count``).
    max_mismatches: int = 20


#: Analytic violation classes a replay can actually observe.  Strict
#: periodicity is a model-level property of the start-time table — the replay
#: dispatches whatever table it is given and cannot see it.
_REPLAY_VISIBLE = ("overlap", "precedence", "repeatability")


class _Collector:
    """Accumulates one check's mismatches (full count, bounded detail).

    The earliest mismatch is tracked separately from the bounded list so the
    report's first-divergence pinpointing survives truncation.
    """

    def __init__(self, name: str, options: ConformanceOptions) -> None:
        self.name = name
        self.compared = 0
        self.first: dict[str, object] | None = None
        self.skip_reason: str | None = None
        self.detail = ""
        self._mismatches: list[dict[str, object]] = []
        self._limit = options.max_mismatches
        self._count = 0

    def mismatch(self, time: float, where: str, detail: str) -> None:
        self._count += 1
        entry = {"time": time, "where": where, "detail": detail}
        if self.first is None or time < float(self.first["time"]):
            self.first = entry
        if len(self._mismatches) < self._limit:
            self._mismatches.append(entry)

    def result(self) -> CheckResult:
        if self.skip_reason is not None:
            return CheckResult(name=self.name, status="skipped", detail=self.skip_reason)
        return CheckResult(
            name=self.name,
            status="fail" if self._count else "pass",
            compared=self.compared,
            mismatch_count=self._count,
            mismatches=self._mismatches,
            detail=self.detail,
        )


def _timing_violations(result: SimulationResult) -> list:
    """Replay violations that concern timing (memory overflow is a capacity
    concern the analytic model accounts for separately)."""
    return [
        violation
        for violation in result.violations
        if violation.kind is not ViolationKind.MEMORY_OVERFLOW
    ]


def _check_verdict_agreement(
    options: ConformanceOptions,
    feasibility: FeasibilityReport,
    result: SimulationResult,
    clean: bool,
) -> _Collector:
    check = _Collector("verdict_agreement", options)
    check.compared = 1
    if feasibility.is_feasible:
        if not clean:
            first = _timing_violations(result)[0]
            check.mismatch(
                first.time,
                f"{first.task}#{first.index} on {first.processor}",
                "the analytical model claims feasibility but the replay recorded "
                f"{len(_timing_violations(result))} timing violation(s); first: {first}",
            )
        check.detail = "analytically feasible"
        return check
    visible = [
        kind
        for kind, messages in (
            ("overlap", feasibility.overlap_violations),
            ("precedence", feasibility.precedence_violations),
            ("repeatability", feasibility.repeatability_violations),
        )
        if messages and (kind != "repeatability" or options.hyper_periods >= 2)
    ]
    if visible and clean:
        check.mismatch(
            0.0,
            "verdict",
            "the analytical model reports "
            + ", ".join(f"{kind} violations" for kind in visible)
            + " but the replay executed cleanly",
        )
        check.detail = "analytically infeasible"
        return check
    check.detail = (
        "analytically infeasible; replay diverged as predicted"
        if visible
        else "analytically infeasible for model-level constraints only "
        "(invisible to a replay)"
    )
    return check


def _check_clean_replay(
    options: ConformanceOptions, result: SimulationResult
) -> _Collector:
    check = _Collector("clean_replay", options)
    violations = _timing_violations(result)
    check.compared = len(result.trace.records)
    for violation in violations:
        check.mismatch(
            violation.time,
            f"{violation.task}#{violation.index} on {violation.processor} "
            f"(rep {violation.repetition})",
            f"{violation.kind.value}: {violation.detail}",
        )
    return check


def _check_instance_coverage(
    options: ConformanceOptions, schedule: Schedule, result: SimulationResult
) -> _Collector:
    check = _Collector("instance_coverage", options)
    hyper_period = schedule.graph.hyper_period
    grouped = result.trace.records_by_key()
    expected = {
        (task, index, repetition)
        for task, index in unrolled_instances(schedule.graph)
        for repetition in range(result.options.hyper_periods)
    }
    check.compared = len(expected)
    for task, index, repetition in sorted(expected):
        planned = schedule.instance(task, index).start + repetition * hyper_period
        records = grouped.get((task, index, repetition), [])
        if len(records) != 1:
            check.mismatch(
                planned,
                f"{task}#{index} (rep {repetition})",
                f"executed {len(records)} time(s), expected exactly once",
            )
    for key in sorted(set(grouped) - expected):
        records = grouped[key]
        check.mismatch(
            records[0].actual_start,
            f"{key[0]}#{key[1]} (rep {key[2]})",
            "executed but not part of the unrolled schedule",
        )
    return check


def _check_start_times(
    options: ConformanceOptions, schedule: Schedule, result: SimulationResult
) -> _Collector:
    check = _Collector("start_times", options)
    tol = options.tolerance
    hyper_period = schedule.graph.hyper_period
    for record in result.trace.records:
        check.compared += 1
        instance = schedule.instance(record.task, record.index)
        planned = instance.start + record.repetition * hyper_period
        if abs(record.actual_start - planned) > tol:
            check.mismatch(
                planned,
                record.label,
                f"started at {record.actual_start:g}, scheduled at {planned:g} "
                f"(drift {record.actual_start - planned:+g})",
            )
        duration = record.end - record.actual_start
        if abs(duration - instance.wcet) > tol:
            check.mismatch(
                record.actual_start,
                record.label,
                f"ran for {duration:g}, WCET is {instance.wcet:g}",
            )
        if record.processor != instance.processor:
            check.mismatch(
                planned,
                record.label,
                f"executed on {record.processor!r}, placed on {instance.processor!r}",
            )
    return check


def _check_busy_intervals(
    options: ConformanceOptions, schedule: Schedule, result: SimulationResult
) -> _Collector:
    check = _Collector("busy_intervals", options)
    tol = options.tolerance
    planned = schedule.busy_intervals(result.options.hyper_periods)
    simulated = result.trace.busy_intervals()
    for name in sorted(set(planned) | set(simulated)):
        want = planned.get(name, [])
        got = simulated.get(name, [])
        check.compared += max(len(want), len(got))
        for index in range(max(len(want), len(got))):
            if index >= len(want):
                start, end, label = got[index]
                check.mismatch(
                    start, f"{name}: {label}", f"extra busy interval [{start:g},{end:g})"
                )
            elif index >= len(got):
                start, end, label = want[index]
                check.mismatch(
                    start, f"{name}: {label}", f"missing busy interval [{start:g},{end:g})"
                )
            else:
                want_start, want_end, label = want[index]
                got_start, got_end, _ = got[index]
                if abs(want_start - got_start) > tol or abs(want_end - got_end) > tol:
                    check.mismatch(
                        want_start,
                        f"{name}: {label}",
                        f"planned [{want_start:g},{want_end:g}), "
                        f"simulated [{got_start:g},{got_end:g})",
                    )
    return check


def _check_steady_occupancy(
    options: ConformanceOptions, schedule: Schedule, result: SimulationResult
) -> _Collector:
    check = _Collector("steady_occupancy", options)
    tol = options.tolerance
    hyper_period = schedule.graph.hyper_period
    patterns = schedule.steady_patterns()
    for name in sorted(schedule.architecture.processor_names):
        analytic = OccupancyTimeline(hyper_period)
        for offset, length in patterns.get(name, []):
            analytic.add(offset, length)
        simulated = OccupancyTimeline(hyper_period)
        for record in result.trace.records_for(name):
            if record.repetition:
                continue
            simulated.add(record.actual_start % hyper_period, record.end - record.actual_start)
        want = analytic.intervals()
        got = simulated.intervals()
        check.compared += max(len(want), len(got))
        for index in range(max(len(want), len(got))):
            if index >= len(want):
                begin, end, _ = got[index]
                check.mismatch(
                    begin, name, f"extra steady piece [{begin:g},{end:g}) mod {hyper_period:g}"
                )
            elif index >= len(got):
                begin, end, _ = want[index]
                check.mismatch(
                    begin, name, f"missing steady piece [{begin:g},{end:g}) mod {hyper_period:g}"
                )
            else:
                want_begin, want_end, _ = want[index]
                got_begin, got_end, _ = got[index]
                if abs(want_begin - got_begin) > tol or abs(want_end - got_end) > tol:
                    check.mismatch(
                        want_begin,
                        name,
                        f"steady piece planned [{want_begin:g},{want_end:g}), "
                        f"simulated [{got_begin:g},{got_end:g}) mod {hyper_period:g}",
                    )
    return check


def _model_communications(schedule: Schedule):
    """The analytic transfer set: the schedule's own records, or a fresh
    synthesis when none are attached (``Schedule.moved`` drops them)."""
    if schedule.communications:
        return schedule.communications, False
    operations = synthesize_communications(schedule)
    return operations, bool(operations)


def _check_communications(
    options: ConformanceOptions, schedule: Schedule, result: SimulationResult
) -> _Collector:
    check = _Collector("communications", options)
    tol = options.tolerance
    hyper_period = schedule.graph.hyper_period
    operations, synthesised = _model_communications(schedule)
    model: dict[tuple, list] = {}
    for op in operations:
        for repetition in range(result.options.hyper_periods):
            model.setdefault(
                (op.producer, op.producer_index, op.consumer, op.consumer_index, repetition),
                [],
            ).append(op)
    simulated: dict[tuple, list] = {}
    for transfer in result.trace.transfers:
        simulated.setdefault(
            (
                transfer.producer,
                transfer.producer_index,
                transfer.consumer,
                transfer.consumer_index,
                transfer.repetition,
            ),
            [],
        ).append(transfer)
    for key in sorted(set(model) | set(simulated)):
        ops = sorted(model.get(key, []), key=lambda op: op.start)
        transfers = sorted(simulated.get(key, []), key=lambda tr: tr.start)
        repetition = key[4]
        shift = repetition * hyper_period
        check.compared += max(len(ops), len(transfers))
        label = f"{key[0]}#{key[1]} -> {key[2]}#{key[3]} (rep {repetition})"
        for index in range(max(len(ops), len(transfers))):
            if index >= len(ops):
                transfer = transfers[index]
                check.mismatch(
                    transfer.start,
                    label,
                    f"transfer simulated on {transfer.medium!r} "
                    f"[{transfer.start:g},{transfer.arrival:g}) but absent from the model",
                )
            elif index >= len(transfers):
                op = ops[index]
                check.mismatch(
                    op.start + shift,
                    label,
                    f"modelled transfer on {op.medium!r} "
                    f"[{op.start + shift:g},{op.arrival + shift:g}) was never simulated",
                )
            else:
                op, transfer = ops[index], transfers[index]
                want_start, want_arrival = op.start + shift, op.arrival + shift
                if (
                    abs(transfer.start - want_start) > tol
                    or abs(transfer.arrival - want_arrival) > tol
                ):
                    check.mismatch(
                        want_start,
                        label,
                        f"modelled [{want_start:g},{want_arrival:g}), "
                        f"simulated [{transfer.start:g},{transfer.arrival:g})",
                    )
                elif transfer.medium != op.medium:
                    check.mismatch(
                        want_start,
                        label,
                        f"modelled on {op.medium!r}, simulated on {transfer.medium!r}",
                    )
                elif abs(transfer.data_size - op.data_size) > tol:
                    check.mismatch(
                        want_start,
                        label,
                        f"modelled size {op.data_size:g}, simulated {transfer.data_size:g}",
                    )
    if synthesised:
        check.detail = "model transfers re-synthesised (schedule carried none)"
    return check


def _check_dependence_order(
    options: ConformanceOptions, schedule: Schedule, result: SimulationResult
) -> _Collector:
    check = _Collector("dependence_order", options)
    tol = options.tolerance
    grouped = result.trace.records_by_key()
    arrivals: dict[tuple, float] = {}
    for transfer in result.trace.transfers:
        arrivals[
            (transfer.producer_key, transfer.consumer_key, transfer.repetition)
        ] = transfer.arrival
    for edge in instance_edges(schedule.graph):
        for repetition in range(result.options.hyper_periods):
            producer = grouped.get((*edge.producer, repetition), [])
            consumer = grouped.get((*edge.consumer, repetition), [])
            if len(producer) != 1 or len(consumer) != 1:
                continue  # instance_coverage already reports this
            check.compared += 1
            ready = producer[0].end
            arrival = arrivals.get((edge.producer, edge.consumer, repetition))
            if arrival is not None:
                if arrival < ready - tol:
                    check.mismatch(
                        arrival,
                        f"{edge.label} (rep {repetition})",
                        f"data arrived at {arrival:g} before its producer "
                        f"completed at {ready:g}",
                    )
                ready = max(ready, arrival)
            if consumer[0].actual_start < ready - tol:
                check.mismatch(
                    consumer[0].actual_start,
                    f"{edge.label} (rep {repetition})",
                    f"consumer started at {consumer[0].actual_start:g} before its "
                    f"input was ready at {ready:g}",
                )
    return check


def _check_memory(
    options: ConformanceOptions,
    schedule: Schedule,
    result: SimulationResult,
    clean: bool,
) -> _Collector:
    check = _Collector("memory", options)
    if not clean:
        check.skip_reason = (
            "replay diverged from the schedule; the analytic bound's "
            "premises do not hold"
        )
        return check
    tol = options.tolerance
    hyper_period = schedule.graph.hyper_period
    static = schedule.memory_by_processor()
    single_rep = buffered_memory_bound(schedule)
    # Samples of repetition r live within [rH, makespan + rH): at most
    # ceil(makespan / H) repetitions ever buffer concurrently.
    live = max(1, math.ceil((schedule.makespan - tol) / hyper_period))
    live = min(live, result.options.hyper_periods)
    for name in sorted(schedule.architecture.processor_names):
        check.compared += 1
        peak = result.memory.peak_totals().get(name, 0.0)
        floor = static.get(name, 0.0)
        bound = floor + live * (single_rep.get(name, 0.0) - floor)
        timeline = result.memory.timelines[name]
        if peak > bound + tol:
            over = next(
                (
                    time
                    for time, occupancy in timeline.samples
                    if occupancy + timeline.static > bound + tol
                ),
                result.horizon,
            )
            check.mismatch(
                over,
                name,
                f"simulated peak {peak:g} exceeds the analytic bound {bound:g} "
                f"(static {floor:g} + {live} live repetition(s) of buffers)",
            )
        if peak < floor - tol:
            check.mismatch(
                0.0,
                name,
                f"simulated peak {peak:g} below the static memory {floor:g}",
            )
    outstanding = result.memory.outstanding()
    check.compared += 1
    if outstanding:
        check.mismatch(
            result.horizon,
            "buffers",
            f"{outstanding} buffered sample(s) never consumed",
        )
    return check


def check_conformance(
    schedule: Schedule,
    options: ConformanceOptions | None = None,
    *,
    label: str = "",
    feasibility: FeasibilityReport | None = None,
) -> ConformanceReport:
    """Replay ``schedule`` and diff the trace against the analytical model.

    ``feasibility`` may carry a precomputed ``check_memory=False`` report of
    ``schedule`` (every balancer produces one — ``BalanceOutcome.
    feasibility_report``) so the checker is not re-run; when omitted, the
    oracle computes its own.
    """
    options = options or ConformanceOptions()
    if options.hyper_periods < 1:
        raise ConfigurationError("hyper_periods must be >= 1")
    if options.tolerance < 0:
        raise ConfigurationError("tolerance must be >= 0")
    if options.max_mismatches < 1:
        raise ConfigurationError("max_mismatches must be >= 1")

    if feasibility is None:
        feasibility = check_schedule(schedule, check_memory=False)
    result = replay(schedule, hyper_periods=options.hyper_periods)
    clean = not _timing_violations(result)

    collectors = [
        _check_verdict_agreement(options, feasibility, result, clean),
        _check_clean_replay(options, result),
        _check_instance_coverage(options, schedule, result),
        _check_start_times(options, schedule, result),
        _check_busy_intervals(options, schedule, result),
        _check_steady_occupancy(options, schedule, result),
        _check_communications(options, schedule, result),
        _check_dependence_order(options, schedule, result),
        _check_memory(options, schedule, result, clean),
    ]

    first: dict[str, object] | None = None
    for collector in collectors:
        if collector.first is None:
            continue
        if first is None or float(collector.first["time"]) < float(first["time"]):
            first = {
                "time": collector.first["time"],
                "check": collector.name,
                "where": collector.first["where"],
                "detail": collector.first["detail"],
            }

    return ConformanceReport(
        label=label,
        hyper_periods=options.hyper_periods,
        tolerance=options.tolerance,
        analytical_feasible=feasibility.is_feasible,
        simulation_clean=clean,
        checks=[collector.result() for collector in collectors],
        first_divergence=first,
    )
