"""The ``repro-conformance/1`` report artifact.

A :class:`ConformanceReport` is the structured outcome of one
simulation-conformance check (:func:`repro.conformance.oracle.check_conformance`):
per-check verdicts with bounded mismatch lists, the analytical/simulated
verdict pair, and the *first divergence* — the earliest simulated instant at
which the discrete-event replay and the analytical model disagree.  Reports
are pure data: no wall-clock, no environment fingerprint, so the report of a
given schedule is deterministic and can be pinned as a golden value.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.errors import ConfigurationError
from repro.schemas import CONFORMANCE_SCHEMA

__all__ = ["CONFORMANCE_SCHEMA", "CheckResult", "ConformanceReport"]

#: Allowed per-check statuses.
_STATUSES = ("pass", "fail", "skipped")


@dataclass(slots=True)
class CheckResult:
    """Verdict of one conformance check.

    ``compared`` counts the individual comparisons the check performed (0 for
    a skipped check); ``mismatches`` carries up to
    :attr:`~repro.conformance.oracle.ConformanceOptions.max_mismatches`
    structured divergences (``time``/``where``/``detail``), with
    ``mismatch_count`` recording the true total so truncation is explicit.
    """

    name: str
    status: str
    compared: int = 0
    mismatch_count: int = 0
    mismatches: list[dict[str, Any]] = field(default_factory=list)
    detail: str = ""

    def __post_init__(self) -> None:
        if self.status not in _STATUSES:
            raise ConfigurationError(
                f"Unknown check status {self.status!r}; expected one of {_STATUSES}"
            )

    @property
    def failed(self) -> bool:
        """``True`` when the check found at least one divergence."""
        return self.status == "fail"

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "status": self.status,
            "compared": self.compared,
            "mismatch_count": self.mismatch_count,
            "mismatches": [dict(entry) for entry in self.mismatches],
            "detail": self.detail,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CheckResult":
        return cls(
            name=str(data.get("name", "")),
            status=str(data.get("status", "skipped")),
            compared=int(data.get("compared", 0)),
            mismatch_count=int(data.get("mismatch_count", 0)),
            mismatches=[dict(entry) for entry in data.get("mismatches") or []],
            detail=str(data.get("detail", "")),
        )


@dataclass(slots=True)
class ConformanceReport:
    """Outcome of cross-checking one schedule's replay against the model."""

    label: str
    hyper_periods: int
    tolerance: float
    #: Verdict of the analytical feasibility checker (timing constraints).
    analytical_feasible: bool
    #: ``True`` when the replay ran with no timing violation.
    simulation_clean: bool
    checks: list[CheckResult] = field(default_factory=list)
    #: Earliest divergence (``time``/``check``/``where``/``detail``), or
    #: ``None`` when the replay conforms.
    first_divergence: dict[str, Any] | None = None
    schema: str = CONFORMANCE_SCHEMA

    @property
    def conforms(self) -> bool:
        """``True`` when no check failed — the replay matched every promise of
        the schedule exactly."""
        return not any(check.failed for check in self.checks)

    @property
    def consistent(self) -> bool:
        """``True`` when the simulator and the analytical model agree.

        A feasible schedule must conform outright.  An *infeasible* one is
        expected to diverge (the replay repairs what the model already calls
        broken), so only the ``verdict_agreement`` check is binding — an
        infeasible baseline schedule is a datum, not a simulator bug.  The
        sweep deep tier and the grid-mode ``repro-lb conform`` gate on this.
        """
        if self.analytical_feasible:
            return self.conforms
        for check in self.checks:
            if check.name == "verdict_agreement":
                return not check.failed
        return self.conforms

    @property
    def divergences(self) -> int:
        """Total number of mismatches across all checks (pre-truncation)."""
        return sum(check.mismatch_count for check in self.checks)

    def check(self, name: str) -> CheckResult:
        """The named check result.

        Raises
        ------
        ConfigurationError
            When the report holds no check of that name.
        """
        for entry in self.checks:
            if entry.name == name:
                return entry
        raise ConfigurationError(
            f"Report has no check {name!r}; available: {[c.name for c in self.checks]}"
        )

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe serialisation (round-trippable through :meth:`from_dict`)."""
        return {
            "schema": self.schema,
            "label": self.label,
            "hyper_periods": self.hyper_periods,
            "tolerance": self.tolerance,
            "analytical_feasible": self.analytical_feasible,
            "simulation_clean": self.simulation_clean,
            "conforms": self.conforms,
            "consistent": self.consistent,
            "divergences": self.divergences,
            "checks": [check.to_dict() for check in self.checks],
            "first_divergence": (
                dict(self.first_divergence) if self.first_divergence is not None else None
            ),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ConformanceReport":
        """Rebuild a report from its serialised form (strict: version-checked)."""
        schema = data.get("schema", CONFORMANCE_SCHEMA)
        if schema != CONFORMANCE_SCHEMA:
            raise ConfigurationError(
                f"Unsupported conformance schema {schema!r}; this build reads "
                f"{CONFORMANCE_SCHEMA!r}"
            )
        first = data.get("first_divergence")
        return cls(
            label=str(data.get("label", "")),
            hyper_periods=int(data.get("hyper_periods", 1)),
            tolerance=float(data.get("tolerance", 0.0)),
            analytical_feasible=bool(data.get("analytical_feasible", False)),
            simulation_clean=bool(data.get("simulation_clean", False)),
            checks=[CheckResult.from_dict(entry) for entry in data.get("checks") or []],
            first_divergence=dict(first) if first is not None else None,
            schema=schema,
        )

    def render(self) -> str:
        """Readable multi-line report (what the CLI prints)."""
        label = f" of {self.label!r}" if self.label else ""
        lines = [
            f"conformance{label}: "
            f"{'CONFORMS' if self.conforms else f'{self.divergences} divergence(s)'} "
            f"(analytical feasible={self.analytical_feasible}, "
            f"replay clean={self.simulation_clean}, "
            f"{self.hyper_periods} hyper-period(s))"
        ]
        for check in self.checks:
            verdict = check.status.upper()
            suffix = f" — {check.detail}" if check.detail else ""
            lines.append(f"  {check.name:<20} {verdict:<7} ({check.compared} compared){suffix}")
            for entry in check.mismatches:
                lines.append(
                    f"    t={entry.get('time', 0.0):g} {entry.get('where', '')}: "
                    f"{entry.get('detail', '')}"
                )
            if check.mismatch_count > len(check.mismatches):
                lines.append(
                    f"    ... {check.mismatch_count - len(check.mismatches)} further "
                    f"mismatch(es) truncated"
                )
        if self.first_divergence is not None:
            lines.append(
                f"first divergence: t={self.first_divergence.get('time', 0.0):g} "
                f"[{self.first_divergence.get('check', '')}] "
                f"{self.first_divergence.get('where', '')}: "
                f"{self.first_divergence.get('detail', '')}"
            )
        return "\n".join(lines)
