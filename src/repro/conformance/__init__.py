"""Simulation-conformance oracle.

The discrete-event simulator is an *independent* executable semantics for the
very same schedules the analytical model reasons about.  This package promotes
it to a first-class oracle: :func:`check_conformance` replays a schedule under
the paper's analytic assumptions and structurally diffs the simulated trace
against the model — start times, busy intervals, steady occupancy (through the
conflict engine's own :class:`~repro.core.occupancy.OccupancyTimeline`),
communications, dependence order and peak memory — producing a versioned
``repro-conformance/1`` :class:`ConformanceReport` with per-check verdicts and
first-divergence pinpointing.

Entry points into the rest of the system:

* ``PipelineConfig.verify.conformance`` surfaces the report inside every
  :class:`~repro.api.pipeline.RunResult`;
* the differential sweep's ``conformance_stride`` runs the oracle as a deep
  tier over sampled grid cells;
* the ``repro-lb conform`` CLI verb gates single runs on ``conforms`` and the
  scenario grid on ``consistent`` (non-zero exit on divergence).
"""

from repro.conformance.oracle import ConformanceOptions, check_conformance
from repro.conformance.report import CONFORMANCE_SCHEMA, CheckResult, ConformanceReport

__all__ = [
    "CONFORMANCE_SCHEMA",
    "CheckResult",
    "ConformanceOptions",
    "ConformanceReport",
    "check_conformance",
]
