"""Shared wall-clock instrumentation.

Both the :mod:`repro.api` pipeline (per-stage timings of a run) and the
:mod:`repro.bench` harness (per-benchmark wall times) need the same
``time.perf_counter()`` bracketing.  :class:`StageTimer` centralises it: one
mutable mapping of stage name to elapsed seconds, filled by ``with
timer.stage("balance"): ...`` blocks, so call sites carry no start/stop
bookkeeping of their own.
"""

from __future__ import annotations

import time
from collections.abc import Callable
from contextlib import contextmanager
from typing import Iterator, TypeVar

__all__ = ["StageTimer", "measure"]

T = TypeVar("T")


class StageTimer:
    """Accumulates wall-clock durations of named stages.

    >>> timer = StageTimer()
    >>> with timer.stage("work"):
    ...     pass
    >>> sorted(timer.timings)
    ['work']

    Re-entering a stage name *accumulates* (the bench harness times repeated
    calls under one name); read the mapping through :attr:`timings`.
    """

    __slots__ = ("_timings",)

    def __init__(self) -> None:
        self._timings: dict[str, float] = {}

    @property
    def timings(self) -> dict[str, float]:
        """Stage name to elapsed seconds (a live reference, not a copy)."""
        return self._timings

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        """Time the enclosed block and add it to ``timings[name]``."""
        started = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - started
            self._timings[name] = self._timings.get(name, 0.0) + elapsed

    def elapsed(self, name: str) -> float:
        """Seconds accumulated under ``name`` (0.0 when the stage never ran)."""
        return self._timings.get(name, 0.0)


def measure(fn: Callable[[], T]) -> tuple[float, T]:
    """Run ``fn()`` and return ``(elapsed_seconds, result)``.

    The bench harness's repeat loop uses this directly; it is the smallest
    useful unit of the timing boilerplate the stage timer replaces.
    """
    started = time.perf_counter()
    result = fn()
    return time.perf_counter() - started, result
