"""Memory-blind load balancing baselines.

Two flavours are provided:

* :func:`greedy_load_balance` — the paper's own framework (block moves under
  dependence and strict-periodicity constraints) driven by the ``LOAD_ONLY``
  cost policy: it maximises the start-time gain and spreads the *execution
  time*, ignoring memory entirely.  This is the fair "classic load balancing"
  comparison point: same constraints, no memory term.
* :func:`lpt_assignment` — the classic Longest-Processing-Time list rule on
  block execution times, ignoring both memory and timing constraints
  (an assignment-level baseline in the spirit of the load-balancing
  literature the paper cites).
"""

from __future__ import annotations

from repro.baselines.base import AssignmentResult, materialize_assignment
from repro.core.blocks import BlockBuildOptions, build_blocks
from repro.core.cost import CostPolicy
from repro.core.load_balancer import LoadBalancer, LoadBalancerOptions
from repro.core.result import LoadBalanceResult
from repro.scheduling.schedule import Schedule

__all__ = ["greedy_load_balance", "lpt_assignment"]


def greedy_load_balance(schedule: Schedule) -> LoadBalanceResult:
    """Run the block-move heuristic with the memory-blind ``LOAD_ONLY`` policy."""
    options = LoadBalancerOptions(policy=CostPolicy.LOAD_ONLY)
    return LoadBalancer(schedule, options).run()


def lpt_assignment(schedule: Schedule) -> AssignmentResult:
    """Longest-Processing-Time block assignment (Graham's list rule).

    Blocks are sorted by decreasing execution time and greedily assigned to
    the processor with the smallest execution load so far.  Memory and timing
    constraints are ignored — the resulting schedule keeps the original start
    times and may therefore violate dependences, which experiment E6 reports.
    """
    blocks = build_blocks(schedule, BlockBuildOptions())
    processors = schedule.architecture.processor_names
    load = {name: 0.0 for name in processors}
    assignment: dict[int, str] = {}
    for block in sorted(blocks, key=lambda b: (-b.execution_time, b.id)):
        target = min(processors, key=lambda name: (load[name], name))
        assignment[block.id] = target
        load[target] += block.execution_time
    return AssignmentResult.build(
        "lpt-load-only",
        blocks,
        assignment,
        materialize_assignment(schedule, blocks, assignment),
    )
