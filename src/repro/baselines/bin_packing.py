"""Bin-packing style baselines.

The paper notes (section 2, citing Korf [8] and Ekelin & Jonsson [7]) that
load balancing is closely related to bin packing.  Two classic families are
provided, both operating on raw item weights (block memory or execution
amounts):

* **makespan-style packing into a fixed number of bins** — first-fit /
  best-fit decreasing onto ``M`` processors, minimising the maximum bin
  weight.  This is what gets compared with the paper's heuristic and the
  exact optimum in experiments E5/E6;
* **capacity-style packing into as few bins as possible** — classic first-fit
  decreasing with a bin capacity, used to estimate how many processors a
  memory-constrained application minimally needs.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.baselines.base import AssignmentResult, materialize_assignment
from repro.core.blocks import BlockBuildOptions, build_blocks
from repro.errors import ConfigurationError
from repro.scheduling.schedule import Schedule

__all__ = [
    "first_fit_decreasing_bins",
    "pack_min_max",
    "ffd_memory_assignment",
]


def first_fit_decreasing_bins(weights: Sequence[float], capacity: float) -> list[list[int]]:
    """Classic first-fit decreasing bin packing.

    Returns the bins as lists of item indices; the number of bins is an upper
    bound (within 11/9 OPT + 1) on the minimum number of processors of
    capacity ``capacity`` needed to hold the items.
    """
    if capacity <= 0:
        raise ConfigurationError("Bin capacity must be positive")
    for weight in weights:
        if weight > capacity:
            raise ConfigurationError(
                f"Item of weight {weight} cannot fit in any bin of capacity {capacity}"
            )
    order = sorted(range(len(weights)), key=lambda i: -weights[i])
    bins: list[list[int]] = []
    remaining: list[float] = []
    for index in order:
        weight = weights[index]
        for bin_index, free in enumerate(remaining):
            if weight <= free + 1e-12:
                bins[bin_index].append(index)
                remaining[bin_index] -= weight
                break
        else:
            bins.append([index])
            remaining.append(capacity - weight)
    return bins


def pack_min_max(
    weights: Sequence[float], bin_count: int, *, best_fit: bool = True
) -> tuple[dict[int, int], float]:
    """Pack items into exactly ``bin_count`` bins, minimising the maximum bin weight.

    Greedy decreasing rule: items are sorted by decreasing weight and each
    item goes to the currently lightest bin (``best_fit=True``) or to the
    first bin that keeps the running maximum unchanged (``best_fit=False``,
    a first-fit flavour).  Returns ``(item -> bin index, max bin weight)``.
    """
    if bin_count < 1:
        raise ConfigurationError("bin_count must be >= 1")
    loads = [0.0] * bin_count
    assignment: dict[int, int] = {}
    for index in sorted(range(len(weights)), key=lambda i: -weights[i]):
        if best_fit:
            target = min(range(bin_count), key=lambda b: (loads[b], b))
        else:
            current_max = max(loads)
            target = next(
                (b for b in range(bin_count) if loads[b] + weights[index] <= current_max + 1e-12),
                min(range(bin_count), key=lambda b: (loads[b], b)),
            )
        assignment[index] = target
        loads[target] += weights[index]
    return assignment, max(loads) if loads else 0.0


def ffd_memory_assignment(schedule: Schedule) -> AssignmentResult:
    """Best-fit-decreasing block assignment by memory onto the processors.

    Ignores timing constraints entirely (the schedule keeps its original
    start times); used as the "pure bin-packing" point of experiment E6.
    """
    blocks = build_blocks(schedule, BlockBuildOptions())
    processors = schedule.architecture.processor_names
    ordered = sorted(blocks, key=lambda b: b.id)
    raw, _max_weight = pack_min_max([b.memory for b in ordered], len(processors))
    assignment = {block.id: processors[raw[i]] for i, block in enumerate(ordered)}
    return AssignmentResult.build(
        "ffd-memory",
        blocks,
        assignment,
        materialize_assignment(schedule, blocks, assignment),
    )
