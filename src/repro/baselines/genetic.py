"""Genetic-algorithm load balancer (Greene-style baseline, reference [9]).

The related-work section of the paper cites genetic algorithms as a popular
family of sub-optimal load balancers for general-purpose distributed
applications.  This module implements a compact, deterministic-seeded GA over
block → processor assignment vectors:

* chromosome: one gene per block holding the processor index;
* fitness: weighted combination of the maximum per-processor execution time
  and the maximum per-processor memory (both normalised by the ideal even
  split), to be *minimised*;
* operators: tournament selection, uniform crossover, per-gene reset
  mutation, elitism.

Like the other assignment-level baselines it ignores dependence and strict
periodicity constraints — which is exactly the gap the paper's heuristic
fills — so the materialised schedule may be infeasible; experiment E6 reports
this alongside the memory/load figures.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.baselines.base import AssignmentResult, materialize_assignment
from repro.core.blocks import Block, BlockBuildOptions, build_blocks
from repro.errors import ConfigurationError
from repro.scheduling.schedule import Schedule

__all__ = ["GeneticOptions", "genetic_assignment"]


@dataclass(frozen=True, slots=True)
class GeneticOptions:
    """Hyper-parameters of the GA baseline."""

    population_size: int = 60
    generations: int = 120
    crossover_rate: float = 0.9
    mutation_rate: float = 0.05
    tournament_size: int = 3
    elite_count: int = 2
    #: Relative weight of the memory term in the fitness (0 = load only,
    #: 1 = memory only).
    memory_weight: float = 0.5
    seed: int = 2008

    def validate(self) -> None:
        """Sanity-check the hyper-parameters."""
        if self.population_size < 2:
            raise ConfigurationError("population_size must be >= 2")
        if self.generations < 1:
            raise ConfigurationError("generations must be >= 1")
        if not 0.0 <= self.crossover_rate <= 1.0:
            raise ConfigurationError("crossover_rate must be in [0, 1]")
        if not 0.0 <= self.mutation_rate <= 1.0:
            raise ConfigurationError("mutation_rate must be in [0, 1]")
        if not 0.0 <= self.memory_weight <= 1.0:
            raise ConfigurationError("memory_weight must be in [0, 1]")
        if self.tournament_size < 1:
            raise ConfigurationError("tournament_size must be >= 1")
        if self.elite_count < 0 or self.elite_count >= self.population_size:
            raise ConfigurationError("elite_count must be in [0, population_size)")


def _fitness(
    population: np.ndarray,
    memories: np.ndarray,
    executions: np.ndarray,
    processor_count: int,
    memory_weight: float,
) -> np.ndarray:
    """Vectorised fitness (to minimise) of a population of assignments."""
    pop_size = population.shape[0]
    memory_loads = np.zeros((pop_size, processor_count))
    execution_loads = np.zeros((pop_size, processor_count))
    rows = np.arange(pop_size)[:, None]
    np.add.at(memory_loads, (rows, population), memories[None, :])
    np.add.at(execution_loads, (rows, population), executions[None, :])
    ideal_memory = memories.sum() / processor_count or 1.0
    ideal_execution = executions.sum() / processor_count or 1.0
    memory_term = memory_loads.max(axis=1) / max(ideal_memory, 1e-12)
    execution_term = execution_loads.max(axis=1) / max(ideal_execution, 1e-12)
    return memory_weight * memory_term + (1.0 - memory_weight) * execution_term


def genetic_assignment(
    schedule: Schedule,
    options: GeneticOptions | None = None,
    blocks: Sequence[Block] | None = None,
) -> AssignmentResult:
    """Evolve a block → processor assignment with a genetic algorithm."""
    options = options or GeneticOptions()
    options.validate()
    blocks = list(blocks) if blocks is not None else list(build_blocks(schedule, BlockBuildOptions()))
    processors = schedule.architecture.processor_names
    processor_count = len(processors)
    block_count = len(blocks)
    rng = np.random.default_rng(options.seed)

    memories = np.array([b.memory for b in blocks], dtype=float)
    executions = np.array([b.execution_time for b in blocks], dtype=float)

    population = rng.integers(0, processor_count, size=(options.population_size, block_count))
    # Seed one individual with the identity assignment so the GA never does
    # worse than "no balancing".
    identity = np.array(
        [processors.index(b.processor) for b in blocks], dtype=population.dtype
    )
    population[0] = identity

    best_genome = identity.copy()
    best_fitness = float("inf")
    evaluations = 0

    for _generation in range(options.generations):
        fitness = _fitness(population, memories, executions, processor_count, options.memory_weight)
        evaluations += len(fitness)
        order = np.argsort(fitness)
        if fitness[order[0]] < best_fitness:
            best_fitness = float(fitness[order[0]])
            best_genome = population[order[0]].copy()

        next_population = [population[i].copy() for i in order[: options.elite_count]]
        while len(next_population) < options.population_size:
            parents = []
            for _ in range(2):
                contenders = rng.integers(0, options.population_size, size=options.tournament_size)
                winner = contenders[np.argmin(fitness[contenders])]
                parents.append(population[winner])
            if rng.random() < options.crossover_rate and block_count > 1:
                mask = rng.random(block_count) < 0.5
                child = np.where(mask, parents[0], parents[1])
            else:
                child = parents[0].copy()
            mutate = rng.random(block_count) < options.mutation_rate
            if mutate.any():
                child = child.copy()
                child[mutate] = rng.integers(0, processor_count, size=int(mutate.sum()))
            next_population.append(child)
        population = np.vstack(next_population)

    assignment = {block.id: processors[int(best_genome[i])] for i, block in enumerate(blocks)}
    return AssignmentResult.build(
        "genetic",
        blocks,
        assignment,
        materialize_assignment(schedule, blocks, assignment),
        info={"fitness": best_fitness, "evaluations": float(evaluations)},
    )
