"""Common infrastructure shared by the baseline algorithms.

Most baselines are *assignment-level* algorithms: they decide which processor
each block goes to, without reasoning about start times (that is precisely
what distinguishes them from the paper's heuristic, which preserves
dependence and strict-periodicity feasibility while balancing).  This module
provides:

* :func:`block_weights` — the per-block memory and execution weights the
  baselines operate on;
* :func:`materialize_assignment` — rebuild a :class:`Schedule` from a block →
  processor assignment, keeping the original start times (the feasibility
  checker and the simulator then reveal whether the assignment broke timing
  constraints, which is part of what experiment E6 measures);
* :class:`AssignmentResult` — the uniform result object returned by the
  assignment-level baselines.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field

from repro.core.blocks import Block
from repro.errors import ConfigurationError
from repro.scheduling.communications import synthesize_communications
from repro.scheduling.feasibility import FeasibilityReport, check_schedule
from repro.scheduling.schedule import Schedule

__all__ = ["BlockWeights", "block_weights", "materialize_assignment", "AssignmentResult"]


@dataclass(frozen=True, slots=True)
class BlockWeights:
    """Memory and execution weight of one block."""

    block_id: int
    label: str
    memory: float
    execution: float


def block_weights(blocks: Sequence[Block]) -> list[BlockWeights]:
    """Weights of every block, in block-id order."""
    return [
        BlockWeights(
            block_id=block.id,
            label=block.label,
            memory=block.memory,
            execution=block.execution_time,
        )
        for block in sorted(blocks, key=lambda b: b.id)
    ]


def materialize_assignment(
    schedule: Schedule,
    blocks: Sequence[Block],
    assignment: Mapping[int, str],
    *,
    attach_communications: bool = True,
) -> Schedule:
    """Rebuild a schedule from a block → processor assignment.

    Start times are kept unchanged: assignment-level baselines do not reason
    about time, so the honest way to compare them with the paper's heuristic
    is to keep their timing as-is and let the feasibility checker and the
    simulator report the dependence/periodicity violations they introduce.
    """
    placement: dict[tuple[str, int], str] = {}
    for block in blocks:
        try:
            target = assignment[block.id]
        except KeyError:
            raise ConfigurationError(f"Assignment misses block {block.id} ({block.label})") from None
        if target not in schedule.architecture:
            raise ConfigurationError(
                f"Assignment of block {block.label} targets unknown processor {target!r}"
            )
        for key in block.member_keys:
            placement[key] = target

    instances = []
    for instance in schedule.instances:
        target = placement.get(instance.key, instance.processor)
        instances.append(instance.moved(processor=target))
    new_schedule = Schedule(schedule.graph, schedule.architecture, instances, ())
    if attach_communications:
        new_schedule = new_schedule.with_instances(
            new_schedule.instances, synthesize_communications(new_schedule)
        )
    return new_schedule


@dataclass(slots=True)
class AssignmentResult:
    """Uniform result object of the assignment-level baselines."""

    name: str
    assignment: dict[int, str]
    schedule: Schedule
    #: Maximum per-processor memory of the assignment (the baselines' objective).
    max_memory: float
    #: Maximum per-processor execution time of the assignment.
    max_execution: float
    #: Feasibility verdict of the materialised schedule — the same field the
    #: paper heuristic reports through, so consumers (E6, the ``repro.api``
    #: registry) never have to re-run :func:`check_schedule` themselves.
    #: Required: a verdict must be computed (use :meth:`build`), never assumed.
    feasible: bool
    #: Constraint violations behind a negative verdict.
    violations: list[str] = field(default_factory=list)
    #: Algorithm-specific extra information (iterations, nodes explored, ...).
    info: dict[str, float] = field(default_factory=dict)
    #: Block id -> (label, original processor), recorded at build time so
    #: consumers can describe the assignment without re-building the blocks.
    block_origins: dict[int, tuple[str, str]] = field(default_factory=dict)
    #: Full report behind the verdict (kept so downstream consumers — e.g.
    #: the conformance oracle — never re-run the checker).
    feasibility_report: FeasibilityReport | None = None

    @classmethod
    def build(
        cls,
        name: str,
        blocks: Sequence[Block],
        assignment: Mapping[int, str],
        schedule: Schedule,
        info: dict[str, float] | None = None,
    ) -> "AssignmentResult":
        """Assemble the result of a baseline: loads, schedule and verdict.

        The feasibility verdict is computed once here (dependences, strict
        periodicity, overlaps — memory capacities are reported separately by
        the metrics layer), exactly as the paper heuristic's
        ``verify_result`` step does.
        """
        memory, execution = assignment_loads(
            blocks, assignment, schedule.architecture.processor_names
        )
        report = check_schedule(schedule, check_memory=False)
        return cls(
            name=name,
            assignment=dict(assignment),
            schedule=schedule,
            max_memory=max(memory.values(), default=0.0),
            max_execution=max(execution.values(), default=0.0),
            feasible=report.is_feasible,
            violations=report.all_violations,
            info=dict(info) if info else {},
            block_origins={
                block.id: (block.label, block.processor) for block in blocks
            },
            feasibility_report=report,
        )

    def summary(self) -> str:
        """One-line description."""
        return (
            f"{self.name}: max memory {self.max_memory:g}, "
            f"max execution {self.max_execution:g}, "
            f"{len(set(self.assignment.values()))} processors used"
            f"{'' if self.feasible else f', {len(self.violations)} constraint violation(s)'}"
        )


def assignment_loads(
    blocks: Sequence[Block], assignment: Mapping[int, str], processors: Sequence[str]
) -> tuple[dict[str, float], dict[str, float]]:
    """Per-processor memory and execution sums of an assignment."""
    memory = {name: 0.0 for name in processors}
    execution = {name: 0.0 for name in processors}
    for block in blocks:
        target = assignment[block.id]
        memory[target] += block.memory
        execution[target] += block.execution_time
    return memory, execution
