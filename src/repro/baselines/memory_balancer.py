"""Memory-only balancing (the variant analysed by Theorem 2).

Section 5.2 of the paper analyses the heuristic when the cost function keeps
only its memory term (``λ = Cst / Σ m``): each block goes to the processor
that has received the least memory so far.  Theorem 2 proves this greedy rule
is a ``(2 − 1/M)``-approximation of the optimal maximum per-processor memory.

Two entry points are provided:

* :func:`memory_only_balance` — the paper's framework with the
  ``MEMORY_ONLY`` cost policy (still honouring dependence / periodicity
  feasibility, eligibility and the LCM condition);
* :func:`greedy_memory_assignment` — the bare greedy rule of the proof
  (assignment-level, no timing), which is the object Theorem 2 actually
  bounds and what experiment E5 compares against the exact optimum.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.baselines.base import AssignmentResult, materialize_assignment
from repro.core.blocks import Block, BlockBuildOptions, build_blocks
from repro.core.cost import CostPolicy
from repro.core.load_balancer import LoadBalancer, LoadBalancerOptions
from repro.core.result import LoadBalanceResult
from repro.scheduling.schedule import Schedule

__all__ = ["memory_only_balance", "greedy_memory_assignment", "greedy_min_memory"]


def memory_only_balance(schedule: Schedule) -> LoadBalanceResult:
    """Run the block-move heuristic with the ``MEMORY_ONLY`` policy."""
    options = LoadBalancerOptions(policy=CostPolicy.MEMORY_ONLY)
    return LoadBalancer(schedule, options).run()


def greedy_min_memory(weights: Sequence[float], processors: Sequence[str]) -> dict[int, str]:
    """The bare greedy rule of Theorem 2 on raw memory weights.

    Items are processed *in the given order* (the heuristic processes blocks
    in start-time order, not sorted by size) and each item goes to the
    processor with the smallest memory total so far.
    """
    load = {name: 0.0 for name in processors}
    assignment: dict[int, str] = {}
    for index, weight in enumerate(weights):
        target = min(processors, key=lambda name: (load[name], name))
        assignment[index] = target
        load[target] += weight
    return assignment


def greedy_memory_assignment(
    schedule: Schedule, blocks: Sequence[Block] | None = None
) -> AssignmentResult:
    """Greedy memory-only block assignment (no timing constraints)."""
    blocks = list(blocks) if blocks is not None else list(build_blocks(schedule, BlockBuildOptions()))
    blocks_sorted = sorted(blocks, key=lambda b: (b.start, b.id))
    processors = schedule.architecture.processor_names
    raw = greedy_min_memory([b.memory for b in blocks_sorted], processors)
    assignment = {block.id: raw[i] for i, block in enumerate(blocks_sorted)}
    return AssignmentResult.build(
        "greedy-memory-only",
        blocks,
        assignment,
        materialize_assignment(schedule, blocks, assignment),
    )
