"""The "do nothing" baseline: keep the initial schedule as produced.

This is the reference point of every comparison in the paper: the initial
distributed schedule satisfies dependence and strict periodicity constraints
but typically concentrates dependent tasks on few processors (the worked
example puts 16 of the 24 memory units on ``P1``), wasting both time and
memory headroom.
"""

from __future__ import annotations

from repro.baselines.base import AssignmentResult
from repro.core.blocks import BlockBuildOptions, build_blocks
from repro.scheduling.schedule import Schedule

__all__ = ["no_balancing"]


def no_balancing(schedule: Schedule) -> AssignmentResult:
    """Return the identity assignment (every block stays where it is)."""
    blocks = build_blocks(schedule, BlockBuildOptions())
    assignment = {block.id: block.processor for block in blocks}
    return AssignmentResult.build("no-balancing", blocks, assignment, schedule)
