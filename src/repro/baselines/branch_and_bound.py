"""Exact branch-and-bound partitioning (the optimum of Theorem 2).

Theorem 2 compares the memory-only heuristic with ``ω_opt``, "the optimal
solution": the smallest achievable maximum per-processor memory over all ways
of distributing the blocks onto the ``M`` processors.  Computing it is
NP-hard (multiprocessor-scheduling / number partitioning), but small
instances — a dozen blocks, a handful of processors — are solved exactly by
the depth-first branch-and-bound implemented here, which is all experiment E5
needs to measure the empirical approximation ratio.

The same routine doubles as an exact minimiser of the maximum per-processor
*execution time* (pass the blocks' execution weights instead of their memory
weights), giving the load-balancing optimum on small instances.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.errors import AnalysisError

__all__ = [
    "PartitionResult",
    "optimal_min_max_partition",
    "optimal_max_memory",
    "optimal_memory_assignment",
]


@dataclass(frozen=True, slots=True)
class PartitionResult:
    """Outcome of the exact min-max partition search."""

    #: item index -> bin index of one optimal assignment.
    assignment: dict[int, int]
    #: Optimal (minimal) maximum bin weight.
    optimum: float
    #: Number of search nodes explored (for complexity reporting).
    nodes: int
    #: ``True`` when the search completed (always, unless ``node_limit`` hit).
    exact: bool


def optimal_min_max_partition(
    weights: Sequence[float],
    bin_count: int,
    *,
    node_limit: int = 2_000_000,
) -> PartitionResult:
    """Exact minimal maximum bin weight of partitioning ``weights`` into ``bin_count`` bins.

    Depth-first branch and bound with:

    * items sorted by decreasing weight (classic dominance),
    * symmetry breaking (an item may open at most one new empty bin),
    * lower bound ``max(largest item, total/bins)``,
    * pruning on the incumbent.

    Raises
    ------
    AnalysisError
        If ``bin_count < 1`` or a weight is negative.
    """
    if bin_count < 1:
        raise AnalysisError("bin_count must be >= 1")
    if any(weight < 0 for weight in weights):
        raise AnalysisError("weights must be non-negative")
    count = len(weights)
    if count == 0:
        return PartitionResult(assignment={}, optimum=0.0, nodes=0, exact=True)

    order = sorted(range(count), key=lambda i: -weights[i])
    sorted_weights = [weights[i] for i in order]
    total = sum(sorted_weights)
    lower_bound = max(sorted_weights[0], total / bin_count)

    # Greedy incumbent (best-fit decreasing) to start with a good upper bound.
    loads = [0.0] * bin_count
    greedy_assignment = [0] * count
    for position, weight in enumerate(sorted_weights):
        target = min(range(bin_count), key=lambda b: (loads[b], b))
        greedy_assignment[position] = target
        loads[target] += weight
    best_value = max(loads)
    best_assignment = list(greedy_assignment)

    suffix_total = [0.0] * (count + 1)
    for position in range(count - 1, -1, -1):
        suffix_total[position] = suffix_total[position + 1] + sorted_weights[position]

    nodes = 0
    exact = True
    current = [0.0] * bin_count
    assignment = [0] * count

    def search(position: int) -> None:
        nonlocal nodes, best_value, best_assignment, exact
        if nodes >= node_limit:
            exact = False
            return
        nodes += 1
        if best_value <= lower_bound + 1e-12:
            return
        if position == count:
            value = max(current)
            if value < best_value - 1e-12:
                best_value = value
                best_assignment = assignment.copy()
            return
        weight = sorted_weights[position]
        # Remaining-work bound: even a perfect spread of the remaining items
        # cannot push the final maximum below this value.
        remaining_bound = max(
            max(current),
            (sum(current) + suffix_total[position]) / bin_count,
        )
        if remaining_bound >= best_value - 1e-12:
            return
        tried_empty = False
        seen_loads: set[float] = set()
        for bin_index in range(bin_count):
            load = current[bin_index]
            if load == 0.0:
                if tried_empty:
                    continue  # symmetry: all empty bins are equivalent
                tried_empty = True
            if load in seen_loads:
                continue  # bins with identical loads are equivalent
            seen_loads.add(load)
            if load + weight >= best_value - 1e-12:
                continue
            current[bin_index] = load + weight
            assignment[position] = bin_index
            search(position + 1)
            current[bin_index] = load
            if nodes >= node_limit:
                return

    search(0)

    final = {order[position]: best_assignment[position] for position in range(count)}
    return PartitionResult(assignment=final, optimum=best_value, nodes=nodes, exact=exact)


def optimal_max_memory(
    memories: Sequence[float], processor_count: int, *, node_limit: int = 2_000_000
) -> float:
    """``ω_opt``: the optimal maximum per-processor memory for the given block memories."""
    return optimal_min_max_partition(
        memories, processor_count, node_limit=node_limit
    ).optimum


def optimal_memory_assignment(schedule, *, node_limit: int = 2_000_000):
    """Exact min-max-memory block assignment as an assignment-level baseline.

    Runs the branch-and-bound partitioner on the block memory weights and
    materialises the optimal assignment onto the schedule's processors,
    returning the same :class:`~repro.baselines.base.AssignmentResult` the
    other assignment-level baselines produce (timing constraints are ignored,
    the feasibility verdict reports the damage).  Only meant for small
    instances — the search is exponential; ``info["exact"]`` is 0.0 when the
    ``node_limit`` truncated it.
    """
    from repro.baselines.base import AssignmentResult, materialize_assignment
    from repro.core.blocks import BlockBuildOptions, build_blocks

    blocks = build_blocks(schedule, BlockBuildOptions())
    ordered = sorted(blocks, key=lambda b: b.id)
    processors = schedule.architecture.processor_names
    partition = optimal_min_max_partition(
        [b.memory for b in ordered], len(processors), node_limit=node_limit
    )
    assignment = {
        block.id: processors[partition.assignment[i]] for i, block in enumerate(ordered)
    }
    return AssignmentResult.build(
        "branch-and-bound",
        blocks,
        assignment,
        materialize_assignment(schedule, blocks, assignment),
        info={
            "optimum": partition.optimum,
            "nodes": float(partition.nodes),
            "exact": 1.0 if partition.exact else 0.0,
        },
    )
