"""Baseline algorithms the paper's heuristic is compared against.

* :func:`~repro.baselines.no_balancing.no_balancing` — keep the initial schedule;
* :func:`~repro.baselines.greedy_load.greedy_load_balance` /
  :func:`~repro.baselines.greedy_load.lpt_assignment` — memory-blind load
  balancing (within the paper's framework and as a raw LPT list rule);
* :func:`~repro.baselines.memory_balancer.memory_only_balance` /
  :func:`~repro.baselines.memory_balancer.greedy_memory_assignment` — the
  memory-only variant analysed by Theorem 2;
* :mod:`~repro.baselines.bin_packing` — FFD / best-fit-decreasing packing;
* :mod:`~repro.baselines.branch_and_bound` — exact min-max partitioning
  (``ω_opt`` of Theorem 2) for small instances;
* :mod:`~repro.baselines.genetic` — a Greene-style GA assignment baseline.
"""

from repro.baselines.base import (
    AssignmentResult,
    BlockWeights,
    assignment_loads,
    block_weights,
    materialize_assignment,
)
from repro.baselines.bin_packing import (
    ffd_memory_assignment,
    first_fit_decreasing_bins,
    pack_min_max,
)
from repro.baselines.branch_and_bound import (
    PartitionResult,
    optimal_max_memory,
    optimal_memory_assignment,
    optimal_min_max_partition,
)
from repro.baselines.genetic import GeneticOptions, genetic_assignment
from repro.baselines.greedy_load import greedy_load_balance, lpt_assignment
from repro.baselines.memory_balancer import (
    greedy_memory_assignment,
    greedy_min_memory,
    memory_only_balance,
)
from repro.baselines.no_balancing import no_balancing

__all__ = [
    "AssignmentResult",
    "BlockWeights",
    "GeneticOptions",
    "PartitionResult",
    "assignment_loads",
    "block_weights",
    "ffd_memory_assignment",
    "first_fit_decreasing_bins",
    "genetic_assignment",
    "greedy_load_balance",
    "greedy_memory_assignment",
    "greedy_min_memory",
    "lpt_assignment",
    "materialize_assignment",
    "memory_only_balance",
    "no_balancing",
    "optimal_max_memory",
    "optimal_memory_assignment",
    "optimal_min_max_partition",
    "pack_min_max",
]
