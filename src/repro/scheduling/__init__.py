"""Distributed scheduling substrate.

This subpackage turns an application model into, and verifies, concrete
schedules:

* :mod:`~repro.scheduling.schedule` — the :class:`Schedule` data structure
  (instances, processor timelines, communication operations);
* :mod:`~repro.scheduling.unrolling` — hyper-period instance expansion and
  instance-level dependence edges;
* :mod:`~repro.scheduling.communications` — synthesis of inter-processor
  transfer operations and data-arrival queries;
* :mod:`~repro.scheduling.heuristic` — the initial distributed scheduling
  heuristic (stand-in for the paper's reference [4]);
* :mod:`~repro.scheduling.feasibility` — constraint verification.
"""

from repro.scheduling.communications import (
    attach_communications,
    edge_arrival_time,
    synthesize_communications,
)
from repro.scheduling.feasibility import FeasibilityReport, assert_feasible, check_schedule
from repro.scheduling.heuristic import (
    InitialScheduler,
    PlacementPolicy,
    SchedulerOptions,
    schedule_application,
)
from repro.scheduling.schedule import CommOperation, ProcessorTimeline, Schedule, ScheduledInstance
from repro.scheduling.unrolling import (
    InstanceEdge,
    instance_count,
    instance_edges,
    predecessors_of_instance,
    successors_of_instance,
    unrolled_instances,
)

__all__ = [
    "CommOperation",
    "FeasibilityReport",
    "InitialScheduler",
    "InstanceEdge",
    "PlacementPolicy",
    "ProcessorTimeline",
    "Schedule",
    "ScheduledInstance",
    "SchedulerOptions",
    "assert_feasible",
    "attach_communications",
    "check_schedule",
    "edge_arrival_time",
    "instance_count",
    "instance_edges",
    "predecessors_of_instance",
    "schedule_application",
    "successors_of_instance",
    "synthesize_communications",
    "unrolled_instances",
]
