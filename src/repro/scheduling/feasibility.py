"""Feasibility checking of schedules.

A schedule is *feasible* for the paper's model when:

1. **completeness** — every instance of every task of the hyper-period is
   scheduled exactly once;
2. **strict periodicity** — for every task, the instance starts form an
   arithmetic progression of step equal to the task's period
   (``S_k = S_0 + k*T``);
3. **non-preemptive exclusivity** — instances placed on the same processor
   never overlap in time;
4. **precedence** — a consumer instance never starts before the data of each
   of its producer instances has arrived (producer completion plus one
   communication time when the producers are on another processor);
5. **repeatability** — the schedule must be able to repeat every hyper-period
   forever: on every processor, the steady-state busy patterns of the placed
   instances (their occupancy *modulo* the hyper-period) must not overlap.
   This is the exact form of the condition; the paper's Block/LCM condition
   (eq. (4)) is a sufficient, per-processor approximation of it used inside
   the heuristic;
6. **memory capacity** (optional) — on every processor the static memory of
   the instances placed there (plus, optionally, the worst-case buffer demand
   of incoming inter-processor edges) fits within the processor's capacity.

:func:`check_schedule` runs all of these and returns a
:class:`FeasibilityReport` listing every violation; :func:`assert_feasible`
raises :class:`~repro.errors.ValidationError` when the report is not clean.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ValidationError
from repro.scheduling.communications import edge_arrival_time
from repro.scheduling.periodic_intervals import EPSILON as _EPS
from repro.scheduling.periodic_intervals import split_wrapping
from repro.scheduling.schedule import Schedule
from repro.scheduling.unrolling import instance_count, instance_edges, unrolled_instances

__all__ = ["FeasibilityReport", "check_schedule", "assert_feasible"]


@dataclass(slots=True)
class FeasibilityReport:
    """Violations found by :func:`check_schedule`, grouped by constraint kind."""

    missing_instances: list[str] = field(default_factory=list)
    periodicity_violations: list[str] = field(default_factory=list)
    overlap_violations: list[str] = field(default_factory=list)
    precedence_violations: list[str] = field(default_factory=list)
    repeatability_violations: list[str] = field(default_factory=list)
    memory_violations: list[str] = field(default_factory=list)

    @property
    def all_violations(self) -> list[str]:
        """Every violation message, in check order."""
        return (
            self.missing_instances
            + self.periodicity_violations
            + self.overlap_violations
            + self.precedence_violations
            + self.repeatability_violations
            + self.memory_violations
        )

    @property
    def is_feasible(self) -> bool:
        """``True`` when no violation was recorded."""
        return not self.all_violations

    def summary(self) -> str:
        """Readable multi-line description of the report."""
        if self.is_feasible:
            return "Schedule is feasible (all constraints satisfied)."
        lines = [f"Schedule violates {len(self.all_violations)} constraint(s):"]
        lines.extend(f"  - {message}" for message in self.all_violations)
        return "\n".join(lines)


def check_schedule(
    schedule: Schedule,
    *,
    check_memory: bool = True,
    include_buffers: bool = False,
    check_repeatability: bool = True,
) -> FeasibilityReport:
    """Verify every constraint of the paper's model on ``schedule``.

    Parameters
    ----------
    schedule:
        The schedule to verify.
    check_memory:
        When ``True`` (default) and the architecture declares finite memory
        capacities, verify that the per-processor static memory fits.
    include_buffers:
        When ``True``, add the worst-case consumer-side buffer demand of
        incoming inter-processor edges to the static memory before comparing
        with the capacity.
    check_repeatability:
        When ``True`` (default) verify the hyper-period repeatability
        condition (generalised Block condition).
    """
    graph = schedule.graph
    architecture = schedule.architecture
    report = FeasibilityReport()
    hyper_period = graph.hyper_period

    # 1. completeness -------------------------------------------------------
    for key in unrolled_instances(graph):
        if key not in schedule:
            report.missing_instances.append(
                f"instance {key[0]}#{key[1]} is not scheduled"
            )
    if report.missing_instances:
        # The remaining checks assume a complete schedule; stop here.
        return report

    # 2. strict periodicity --------------------------------------------------
    for task in graph:
        count = instance_count(graph, task.name)
        first = schedule.instance(task.name, 0).start
        for index in range(count):
            expected = first + index * task.period
            actual = schedule.instance(task.name, index).start
            if abs(actual - expected) > _EPS:
                report.periodicity_violations.append(
                    f"task {task.name!r}: instance {index} starts at {actual:g}, "
                    f"expected {expected:g} (strict period {task.period})"
                )

    # 3. non-preemptive exclusivity ------------------------------------------
    for name, timeline in schedule.timelines().items():
        for left, right in timeline.overlapping_pairs():
            report.overlap_violations.append(
                f"processor {name!r}: {left.label} [{left.start:g},{left.end:g}) overlaps "
                f"{right.label} [{right.start:g},{right.end:g})"
            )

    # 4. precedence with communication delays ---------------------------------
    for edge in instance_edges(graph):
        producer = schedule.instance(*edge.producer)
        consumer = schedule.instance(*edge.consumer)
        arrival = edge_arrival_time(
            producer.end, producer.processor, consumer.processor, architecture, edge.data_size
        )
        if consumer.start < arrival - _EPS:
            report.precedence_violations.append(
                f"{edge.label}: consumer starts at {consumer.start:g} before the data "
                f"arrives at {arrival:g} "
                f"({producer.processor}->{consumer.processor})"
            )

    # 5. hyper-period repeatability (steady-state circular non-overlap) --------
    if check_repeatability:
        for name, timeline in schedule.timelines().items():
            if len(timeline) == 0:
                continue
            pieces: list[tuple[float, float, str]] = []
            for instance in timeline.instances:
                for begin, end in split_wrapping(instance.start, instance.wcet, hyper_period):
                    pieces.append((begin, end, instance.label))
            pieces.sort()
            for (left_begin, left_end, left_label), (right_begin, right_end, right_label) in zip(
                pieces, pieces[1:], strict=False
            ):
                if right_begin < left_end - _EPS:
                    report.repeatability_violations.append(
                        f"processor {name!r}: the hyper-period repetitions of {left_label} "
                        f"[{left_begin:g},{left_end:g}) and {right_label} "
                        f"[{right_begin:g},{right_end:g}) (offsets modulo the hyper-period "
                        f"{hyper_period}) overlap; the schedule cannot repeat forever"
                    )

    # 6. memory capacity -------------------------------------------------------
    if check_memory and architecture.has_memory_limits():
        capacity = architecture.memory_capacity
        static = schedule.memory_by_processor()
        buffers: dict[str, float] = {name: 0.0 for name in architecture.processor_names}
        if include_buffers:
            for op in schedule.communications:
                buffers[op.target] = buffers.get(op.target, 0.0) + op.data_size
        for name in architecture.processor_names:
            total = static.get(name, 0.0) + buffers.get(name, 0.0)
            if total > capacity + _EPS:
                report.memory_violations.append(
                    f"processor {name!r}: memory demand {total:g} exceeds capacity {capacity:g}"
                )

    return report


def assert_feasible(schedule: Schedule, **kwargs: bool) -> None:
    """Raise :class:`ValidationError` when ``schedule`` violates any constraint."""
    report = check_schedule(schedule, **kwargs)
    if not report.is_feasible:
        raise ValidationError(report.summary(), violations=report.all_violations)
