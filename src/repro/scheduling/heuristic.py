"""Initial distributed scheduling heuristic (stand-in for reference [4]).

The 2008 load-balancing paper assumes that "a separate distributed scheduling
heuristic [4, 6] which seeks only to satisfy the dependence and strict
periodicity constraints" has already produced an initial schedule.  Reference
[4] (Kermia & Sorel, PDCS'07, *A rapid heuristic for scheduling
non-preemptive dependent periodic tasks onto multiprocessor*) is not part of
the reproduced paper's text, so this module provides a faithful stand-in: a
greedy constructive list scheduler with the properties the 2008 paper relies
on:

* it produces a **feasible** schedule — strict periodicity, non-preemption,
  precedence with communication delays (verified by
  :func:`repro.scheduling.feasibility.check_schedule`);
* dependent tasks whose periods are equal or multiples of one another are
  **preferentially placed on the same processor** ("the dependent tasks which
  are at the same or multiple periods are scheduled onto the same processor
  [4]", section 4 of the paper) — this is what makes blocks large and the
  number of blocks small;
* it makes **no attempt to balance load or memory**, which is exactly the
  situation the load-balancing heuristic is designed to improve.

The algorithm processes tasks in topological order (ties broken by ascending
period, then name).  For every task it computes, on each candidate processor,
the earliest first-instance start time such that *all* instances of the task
(placed at ``S + k·T``) respect data arrival times and never overlap already
placed instances; it then selects a processor according to the configured
placement policy.

The worked-example experiment (E1) does **not** depend on this stand-in: the
exact Figure-3 schedule is encoded in :mod:`repro.workloads.paper_example`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.core.kernels import clearing_shift_batch
from repro.epsilon import EPSILON
from repro.errors import InfeasibleError, SchedulingError
from repro.model.architecture import Architecture
from repro.model.graph import TaskGraph
from repro.scheduling.communications import synthesize_communications
from repro.scheduling.periodic_intervals import circular_overlap, clearing_shift
from repro.scheduling.schedule import Schedule, ScheduledInstance
from repro.scheduling.unrolling import instance_count, predecessors_of_instance

__all__ = ["PlacementPolicy", "SchedulerOptions", "InitialScheduler", "schedule_application"]

_EPS = EPSILON


class PlacementPolicy(enum.Enum):
    """Processor-selection policy of the initial scheduler."""

    #: Prefer the processor(s) already hosting the task's producers (the
    #: behaviour reference [4] is credited with); fall back to earliest start.
    GROUP_WITH_PREDECESSORS = "group_with_predecessors"
    #: Pick the processor offering the earliest feasible start time.
    EARLIEST_START = "earliest_start"
    #: Pick the least busy processor among those offering a feasible start
    #: (a naive load-spreading initial schedule, useful as a contrast).
    LEAST_LOADED = "least_loaded"


@dataclass(frozen=True, slots=True)
class SchedulerOptions:
    """Options of :class:`InitialScheduler`."""

    policy: PlacementPolicy = PlacementPolicy.GROUP_WITH_PREDECESSORS
    #: When ``True`` the produced schedule carries synthesised communication
    #: operations (recommended; disable only for micro-benchmarks).
    attach_communications: bool = True


@dataclass(slots=True)
class _Placement:
    """Internal record of a placed task."""

    processor: str
    first_start: float


class InitialScheduler:
    """Greedy constructive scheduler for strictly periodic dependent tasks."""

    def __init__(
        self,
        graph: TaskGraph,
        architecture: Architecture,
        options: SchedulerOptions | None = None,
    ) -> None:
        graph.validate()
        self.graph = graph
        self.architecture = architecture
        self.options = options or SchedulerOptions()
        self._hyper_period = graph.hyper_period
        empty = np.empty(0, dtype=np.float64)
        #: Per-processor ``(starts, lengths)`` arrays mirroring the busy lists.
        self._busy_arrays: dict[str, tuple[np.ndarray, np.ndarray]] = {
            name: (empty, empty) for name in architecture.processor_names
        }
        #: Per-processor total busy time (the selection policy's load key).
        self._loads: dict[str, float] = {
            name: 0.0 for name in architecture.processor_names
        }
        #: Per-processor maximum busy-piece length, bounding the conflict
        #: window of :func:`repro.core.kernels.clearing_shift_batch`.
        self._busy_max: dict[str, float] = {
            name: 0.0 for name in architecture.processor_names
        }

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run(self) -> Schedule:
        """Produce an initial schedule.

        Raises
        ------
        InfeasibleError
            When some task cannot be placed on any processor within the
            configured start-time bound.
        """
        order = self._task_order()
        # Per-processor steady-state busy patterns: circular (offset, length)
        # pairs modulo the hyper-period, one per placed instance.
        busy: dict[str, list[tuple[float, float]]] = {
            name: [] for name in self.architecture.processor_names
        }
        placements: dict[str, _Placement] = {}
        # Flat-array mirror of ``busy`` feeding the vectorised pattern-probe
        # kernel, plus cached per-processor loads for the selection policy
        # (recomputed with the same summation order the live closure used,
        # so tie-breaks are bit-identical).
        empty = np.empty(0, dtype=np.float64)
        self._busy_arrays = {
            name: (empty, empty) for name in self.architecture.processor_names
        }
        self._loads = {name: 0.0 for name in self.architecture.processor_names}

        for task_name in order:
            placement = self._place_task(task_name, busy, placements)
            placements[task_name] = placement
            task = self.graph.task(task_name)
            count = instance_count(self.graph, task_name)
            for index in range(count):
                offset = (placement.first_start + index * task.period) % self._hyper_period
                busy[placement.processor].append((offset, task.wcet))
            busy[placement.processor].sort()
            pairs = np.asarray(busy[placement.processor], dtype=np.float64).reshape(-1, 2)
            self._busy_arrays[placement.processor] = (
                np.ascontiguousarray(pairs[:, 0]),
                np.ascontiguousarray(pairs[:, 1]),
            )
            self._loads[placement.processor] = sum(
                length for _offset, length in busy[placement.processor]
            )
            self._busy_max[placement.processor] = float(pairs[:, 1].max())

        instances = self._build_instances(placements)
        schedule = Schedule(self.graph, self.architecture, instances, ())
        if self.options.attach_communications:
            schedule = schedule.with_instances(
                schedule.instances, synthesize_communications(schedule)
            )
        return schedule

    # ------------------------------------------------------------------
    # Ordering
    # ------------------------------------------------------------------
    def _task_order(self) -> list[str]:
        """Topological order refined by ascending period then name.

        High-rate (small period) tasks are the sensors that impose their
        periods on the rest of the application; placing them first mirrors
        the constructive strategy of reference [4].
        """
        topo = self.graph.topological_order()
        rank = {name: position for position, name in enumerate(topo)}
        depths: dict[str, int] = {}
        for name in topo:
            preds = self.graph.predecessors(name)
            depths[name] = 0 if not preds else 1 + max(depths[p] for p in preds)
        return sorted(
            topo, key=lambda n: (depths[n], self.graph.task(n).period, rank[n], n)
        )

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------
    def _place_task(
        self,
        task_name: str,
        busy: dict[str, list[tuple[float, float]]],
        placements: dict[str, _Placement],
    ) -> _Placement:
        candidates: dict[str, float] = {}
        bounds = self._arrival_bounds(task_name, placements)
        for processor in self.architecture.processor_names:
            start = self._earliest_start(task_name, processor, bounds)
            if start is not None:
                candidates[processor] = start
        if not candidates:
            raise InfeasibleError(
                f"Task {task_name!r} cannot be placed on any processor with strict "
                "periodicity and non-preemption",
                detail=task_name,
            )
        return _Placement(*self._select(task_name, candidates, busy, placements))

    def _select(
        self,
        task_name: str,
        candidates: dict[str, float],
        busy: dict[str, list[tuple[float, float]]],
        placements: dict[str, _Placement],
    ) -> tuple[str, float]:
        policy = self.options.policy
        names = self.architecture.processor_names
        order_index = {name: i for i, name in enumerate(names)}
        loads = self._loads

        def load(processor: str) -> float:
            return loads[processor]

        if policy is PlacementPolicy.GROUP_WITH_PREDECESSORS:
            predecessor_processors = {
                placements[p].processor
                for p in self.graph.predecessors(task_name)
                if p in placements
            }
            grouped = {
                proc: start for proc, start in candidates.items() if proc in predecessor_processors
            }
            pool = grouped if grouped else candidates
            chosen = min(pool, key=lambda p: (pool[p], load(p), order_index[p]))
            return chosen, pool[chosen]

        if policy is PlacementPolicy.EARLIEST_START:
            chosen = min(candidates, key=lambda p: (candidates[p], load(p), order_index[p]))
            return chosen, candidates[chosen]

        if policy is PlacementPolicy.LEAST_LOADED:
            chosen = min(candidates, key=lambda p: (load(p), candidates[p], order_index[p]))
            return chosen, candidates[chosen]

        raise AssertionError(f"Unhandled placement policy {policy!r}")  # pragma: no cover

    def _arrival_bounds(
        self, task_name: str, placements: dict[str, _Placement]
    ) -> dict[str, list[float]]:
        """Per-producer-processor data-arrival bounds on the first start.

        The inter-processor communication time depends only on whether the
        producer shares the candidate processor (``Architecture.comm_time``
        delegates to ``comm.time(size, same_processor=...)``), so the whole
        arrival computation collapses to **two** values per producer
        processor: the folded maximum of ``arrival - index·T`` assuming a
        local producer and assuming a remote one.  Computing them once per
        task — instead of re-walking every instance edge per candidate
        processor — removes an M× factor from the scheduler's hottest loop
        while producing bit-identical bounds (same float expressions, and
        ``max`` is order-insensitive).
        """
        task = self.graph.task(task_name)
        count = instance_count(self.graph, task_name)
        comm = self.architecture.comm
        bounds: dict[str, list[float]] = {}
        for index in range(count):
            for edge in predecessors_of_instance(self.graph, task_name, index):
                producer_name, producer_index = edge.producer
                placement = placements[producer_name]
                producer_task = self.graph.task(producer_name)
                producer_end = (
                    placement.first_start
                    + producer_index * producer_task.period
                    + producer_task.wcet
                )
                local_value = (
                    producer_end + comm.time(edge.data_size, same_processor=True)
                ) - index * task.period
                remote_value = (
                    producer_end + comm.time(edge.data_size, same_processor=False)
                ) - index * task.period
                entry = bounds.get(placement.processor)
                if entry is None:
                    bounds[placement.processor] = [local_value, remote_value]
                else:
                    if local_value > entry[0]:
                        entry[0] = local_value
                    if remote_value > entry[1]:
                        entry[1] = remote_value
        return bounds

    def _earliest_start(
        self,
        task_name: str,
        processor: str,
        bounds: dict[str, list[float]],
    ) -> float | None:
        """Earliest feasible first start of ``task_name`` on ``processor``.

        The start must respect (a) the data-arrival lower bound of every
        instance (pre-folded by :meth:`_arrival_bounds`) and (b) the
        steady-state exclusivity of the processor: the candidate task's busy
        pattern, taken modulo the hyper-period, must not intersect the
        patterns of the tasks already placed there.  Because the pattern is
        invariant when the start shifts by one task period, sweeping more
        than one period without success proves there is no feasible start at
        all (``None`` is returned).  The per-probe conflict scan runs on the
        flat-array kernel (:func:`repro.core.kernels.clearing_shift_batch`),
        which mirrors :meth:`_pattern_clearing_shift` exactly.
        """
        task = self.graph.task(task_name)
        count = instance_count(self.graph, task_name)

        lower_bound = 0.0
        for producer_processor, (local_value, remote_value) in bounds.items():
            value = local_value if producer_processor == processor else remote_value
            if value > lower_bound:
                lower_bound = value

        if task.wcet <= 0:
            return lower_bound

        busy_starts, busy_lengths = self._busy_arrays[processor]
        busy_max = self._busy_max[processor]
        index_periods = (np.arange(count) * task.period).astype(np.float64)
        hyper_period = self._hyper_period
        start = lower_bound
        shifted = 0.0
        max_iterations = 4 * (busy_starts.size + 1) * (count + 1) + 16
        for _iteration in range(max_iterations):
            try:
                delta = clearing_shift_batch(
                    np.mod(start + index_periods, hyper_period),
                    task.wcet,
                    busy_starts,
                    busy_lengths,
                    hyper_period,
                    max_busy_length=busy_max,
                )
            except SchedulingError:
                return None
            if delta <= _EPS:
                return start
            start += delta
            shifted += delta
            if shifted > task.period + _EPS:
                return None
        return None

    def _pattern_clearing_shift(
        self,
        start: float,
        period: int,
        wcet: float,
        count: int,
        intervals: list[tuple[float, float]],
    ) -> float:
        """Shift needed to clear the first circular conflict of the candidate pattern (0 if none).

        Pure-Python reference of :func:`repro.core.kernels.clearing_shift_batch`
        (which the hot path calls); kept for the differential property test
        that pins the kernel to this scan order.
        """
        hyper_period = self._hyper_period
        for index in range(count):
            offset = (start + index * period) % hyper_period
            for busy_offset, busy_length in intervals:
                if circular_overlap(offset, wcet, busy_offset, busy_length, hyper_period):
                    return clearing_shift(offset, wcet, busy_offset, busy_length, hyper_period)
        return 0.0

    # ------------------------------------------------------------------
    # Materialisation
    # ------------------------------------------------------------------
    def _build_instances(
        self, placements: dict[str, _Placement]
    ) -> list[ScheduledInstance]:
        instances: list[ScheduledInstance] = []
        for task_name, placement in placements.items():
            task = self.graph.task(task_name)
            for index in range(instance_count(self.graph, task_name)):
                instances.append(
                    ScheduledInstance(
                        task=task_name,
                        index=index,
                        processor=placement.processor,
                        start=placement.first_start + index * task.period,
                        wcet=task.wcet,
                        memory=task.memory,
                    )
                )
        return instances


def schedule_application(
    graph: TaskGraph,
    architecture: Architecture,
    options: SchedulerOptions | None = None,
) -> Schedule:
    """Convenience function: run :class:`InitialScheduler` on the problem."""
    return InitialScheduler(graph, architecture, options).run()
