"""Schedule representation.

A :class:`Schedule` is the common currency of the library: the distributed
scheduling heuristic produces one, the load-balancing heuristic consumes one
and produces a new one, the feasibility checker verifies one and the
discrete-event simulator executes one.

A schedule assigns every *task instance* of the hyper-period a processor and
a start time (non-preemptive execution: the instance then occupies its
processor for its WCET).  Inter-processor dependences additionally carry
:class:`CommOperation` records describing the data transfers (the paper's
"send"/"receive" tasks); they are synthesised from the instance placement by
:mod:`repro.scheduling.communications`.

Strict periodicity means that for every task the instance starts are an
arithmetic progression of step ``period``; :meth:`Schedule.first_start`
exposes the base of that progression and the feasibility checker verifies the
progression property.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping
from dataclasses import dataclass, replace

from repro.errors import SchedulingError
from repro.model.architecture import Architecture
from repro.model.graph import TaskGraph
from repro.model.task import instance_label

__all__ = ["ScheduledInstance", "CommOperation", "ProcessorTimeline", "Schedule"]


@dataclass(frozen=True, slots=True)
class ScheduledInstance:
    """One task instance placed on a processor at a given start time."""

    task: str
    index: int
    processor: str
    start: float
    wcet: float
    memory: float = 0.0

    def __post_init__(self) -> None:
        if self.index < 0:
            raise SchedulingError(f"Instance index must be >= 0, got {self.index}")
        if self.start < 0:
            raise SchedulingError(
                f"Instance {self.label} has a negative start time {self.start}"
            )
        if self.wcet < 0:
            raise SchedulingError(f"Instance {self.label} has a negative WCET {self.wcet}")

    @property
    def end(self) -> float:
        """Completion time (start + WCET, non-preemptive execution)."""
        return self.start + self.wcet

    @property
    def key(self) -> tuple[str, int]:
        """``(task, index)`` identifier."""
        return (self.task, self.index)

    @property
    def label(self) -> str:
        """Readable identifier such as ``a#0``."""
        return instance_label(self.task, self.index)

    @property
    def is_first(self) -> bool:
        """``True`` for the first instance of its task."""
        return self.index == 0

    def moved(self, *, processor: str | None = None, start: float | None = None) -> "ScheduledInstance":
        """Copy of the instance with a new processor and/or start time."""
        return replace(
            self,
            processor=self.processor if processor is None else processor,
            start=self.start if start is None else start,
        )

    def overlaps(self, other: "ScheduledInstance") -> bool:
        """``True`` when the two instances overlap in time (open intervals)."""
        return self.start < other.end - 1e-12 and other.start < self.end - 1e-12


@dataclass(frozen=True, slots=True)
class CommOperation:
    """A data transfer between two processors for one dependence instance.

    The paper models the transfer as a send task on the producer's processor
    and a receive task on the consumer's processor; the communication time
    ``C`` spans from the start of the send to the completion of the receive.
    This record collapses the pair into one object carrying both ends.
    """

    producer: str
    producer_index: int
    consumer: str
    consumer_index: int
    source: str
    target: str
    medium: str
    start: float
    duration: float
    data_size: float = 1.0

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise SchedulingError("Communication duration must be non-negative")
        if self.start < 0:
            raise SchedulingError("Communication start must be non-negative")
        if self.source == self.target:
            raise SchedulingError(
                "CommOperation describes an inter-processor transfer; "
                f"source and target are both {self.source!r}"
            )

    @property
    def arrival(self) -> float:
        """Time at which the data is available on the target processor."""
        return self.start + self.duration

    @property
    def producer_key(self) -> tuple[str, int]:
        """``(task, index)`` of the producing instance."""
        return (self.producer, self.producer_index)

    @property
    def consumer_key(self) -> tuple[str, int]:
        """``(task, index)`` of the consuming instance."""
        return (self.consumer, self.consumer_index)

    @property
    def label(self) -> str:
        """Readable identifier such as ``a#1 -> b#0``."""
        return (
            f"{instance_label(self.producer, self.producer_index)} -> "
            f"{instance_label(self.consumer, self.consumer_index)}"
        )


class ProcessorTimeline:
    """Sorted view of the instances placed on one processor."""

    def __init__(self, processor: str, instances: Iterable[ScheduledInstance] = ()) -> None:
        self.processor = processor
        self._instances: list[ScheduledInstance] = sorted(
            instances, key=lambda si: (si.start, si.end, si.task, si.index)
        )
        for instance in self._instances:
            if instance.processor != processor:
                raise SchedulingError(
                    f"Instance {instance.label} belongs to {instance.processor!r}, "
                    f"not to timeline {processor!r}"
                )

    def __iter__(self) -> Iterator[ScheduledInstance]:
        return iter(self._instances)

    def __len__(self) -> int:
        return len(self._instances)

    @property
    def instances(self) -> tuple[ScheduledInstance, ...]:
        """Instances sorted by start time."""
        return tuple(self._instances)

    @property
    def busy_time(self) -> float:
        """Sum of the WCETs executed on this processor."""
        return sum(si.wcet for si in self._instances)

    @property
    def static_memory(self) -> float:
        """Sum of the per-instance memory requirements placed here."""
        return sum(si.memory for si in self._instances)

    @property
    def start(self) -> float:
        """Start time of the first instance (0.0 for an empty timeline)."""
        return self._instances[0].start if self._instances else 0.0

    @property
    def end(self) -> float:
        """Completion time of the last instance (0.0 for an empty timeline)."""
        return max((si.end for si in self._instances), default=0.0)

    def overlapping_pairs(self) -> list[tuple[ScheduledInstance, ScheduledInstance]]:
        """All pairs of instances that overlap in time (should be empty)."""
        pairs: list[tuple[ScheduledInstance, ScheduledInstance]] = []
        for left, right in zip(self._instances, self._instances[1:], strict=False):
            if left.overlaps(right):
                pairs.append((left, right))
        return pairs

    def idle_time(self, horizon: float | None = None) -> float:
        """Idle time in ``[0, horizon]`` (default: up to the last completion)."""
        horizon = self.end if horizon is None else horizon
        if horizon <= 0:
            return 0.0
        busy = sum(
            max(0.0, min(si.end, horizon) - min(si.start, horizon)) for si in self._instances
        )
        return max(0.0, horizon - busy)

    def is_free(self, start: float, end: float) -> bool:
        """``True`` when no scheduled instance intersects ``[start, end)``."""
        for instance in self._instances:
            if instance.start < end - 1e-12 and start < instance.end - 1e-12:
                return False
        return True


class Schedule:
    """A complete placement of every task instance of the hyper-period."""

    def __init__(
        self,
        graph: TaskGraph,
        architecture: Architecture,
        instances: Iterable[ScheduledInstance],
        communications: Iterable[CommOperation] = (),
    ) -> None:
        self.graph = graph
        self.architecture = architecture
        self._instances: dict[tuple[str, int], ScheduledInstance] = {}
        for instance in instances:
            if instance.key in self._instances:
                raise SchedulingError(f"Instance {instance.label} scheduled twice")
            if instance.processor not in architecture:
                raise SchedulingError(
                    f"Instance {instance.label} placed on unknown processor "
                    f"{instance.processor!r}"
                )
            if instance.task not in graph:
                raise SchedulingError(
                    f"Instance {instance.label} refers to unknown task {instance.task!r}"
                )
            self._instances[instance.key] = instance
        self._communications: tuple[CommOperation, ...] = tuple(communications)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._instances)

    def __contains__(self, key: tuple[str, int]) -> bool:
        return key in self._instances

    def __iter__(self) -> Iterator[ScheduledInstance]:
        return iter(self.instances)

    @property
    def instances(self) -> tuple[ScheduledInstance, ...]:
        """Every scheduled instance, ordered by (start, processor, task, index)."""
        return tuple(
            sorted(
                self._instances.values(),
                key=lambda si: (si.start, si.processor, si.task, si.index),
            )
        )

    @property
    def communications(self) -> tuple[CommOperation, ...]:
        """Every inter-processor transfer of the schedule."""
        return self._communications

    def instance(self, task: str, index: int) -> ScheduledInstance:
        """The scheduled instance of ``(task, index)``.

        Raises
        ------
        SchedulingError
            When the instance is not part of the schedule.
        """
        try:
            return self._instances[(task, index)]
        except KeyError:
            raise SchedulingError(f"Instance {instance_label(task, index)} is not scheduled") from None

    def instances_of(self, task: str) -> tuple[ScheduledInstance, ...]:
        """All scheduled instances of a task, ordered by index."""
        found = [si for si in self._instances.values() if si.task == task]
        return tuple(sorted(found, key=lambda si: si.index))

    def first_start(self, task: str) -> float:
        """Start time of the first instance of ``task``."""
        return self.instance(task, 0).start

    def timeline(self, processor: str) -> ProcessorTimeline:
        """Timeline of one processor."""
        self.architecture.processor(processor)
        return ProcessorTimeline(
            processor, (si for si in self._instances.values() if si.processor == processor)
        )

    def timelines(self) -> dict[str, ProcessorTimeline]:
        """Timelines of every processor of the architecture (possibly empty)."""
        return {name: self.timeline(name) for name in self.architecture.processor_names}

    # ------------------------------------------------------------------
    # Aggregate metrics (thin wrappers; richer ones live in repro.metrics)
    # ------------------------------------------------------------------
    @property
    def makespan(self) -> float:
        """Total execution time: completion time of the last instance.

        This is the quantity the paper calls *total execution time* (the
        worked example reports 15 before balancing and 14 after).
        """
        return max((si.end for si in self._instances.values()), default=0.0)

    @property
    def total_execution_time(self) -> float:
        """Alias of :attr:`makespan`, matching the paper's vocabulary."""
        return self.makespan

    def memory_by_processor(self, *, include_empty: bool = True) -> dict[str, float]:
        """Static per-instance memory summed per processor (paper accounting)."""
        usage = {
            name: 0.0 for name in (self.architecture.processor_names if include_empty else ())
        }
        for instance in self._instances.values():
            usage[instance.processor] = usage.get(instance.processor, 0.0) + instance.memory
        return usage

    def busy_time_by_processor(self) -> dict[str, float]:
        """Executed WCET per processor."""
        usage = {name: 0.0 for name in self.architecture.processor_names}
        for instance in self._instances.values():
            usage[instance.processor] += instance.wcet
        return usage

    def busy_intervals(self, repetitions: int = 1) -> dict[str, list[tuple[float, float, str]]]:
        """Per-processor planned ``(start, end, label)`` intervals over ``repetitions`` hyper-periods.

        Repetition ``r`` shifts every instance by ``r × H`` (strict
        periodicity).  This is the analytic counterpart of the simulated
        :meth:`~repro.simulation.trace.SimulationTrace.busy_intervals`; the
        conformance oracle diffs the two.
        """
        if repetitions < 1:
            raise SchedulingError(f"repetitions must be >= 1, got {repetitions}")
        hyper_period = self.graph.hyper_period
        intervals: dict[str, list[tuple[float, float, str]]] = {}
        for instance in self._instances.values():
            for repetition in range(repetitions):
                shift = repetition * hyper_period
                suffix = f" (rep {repetition})" if repetition else ""
                intervals.setdefault(instance.processor, []).append(
                    (instance.start + shift, instance.end + shift, f"{instance.label}{suffix}")
                )
        for pieces in intervals.values():
            pieces.sort()
        return intervals

    def steady_patterns(self) -> dict[str, list[tuple[float, float]]]:
        """Per-processor circular busy patterns modulo the hyper-period.

        Each instance contributes one ``(start % H, wcet)`` pair; a schedule
        repeats forever exactly when, per processor, no two pairs overlap on
        the circle of circumference ``H``.  This is the raw material of the
        conflict engine and of the non-overlap property tests.
        """
        hyper_period = self.graph.hyper_period
        patterns: dict[str, list[tuple[float, float]]] = {
            name: [] for name in self.architecture.processor_names
        }
        for instance in self._instances.values():
            patterns[instance.processor].append(
                (float(instance.start % hyper_period), instance.wcet)
            )
        return patterns

    def instance_assignment(self) -> dict[tuple[str, int], str]:
        """Mapping ``(task, index) -> processor``."""
        return {key: si.processor for key, si in self._instances.items()}

    def task_assignment(self) -> dict[str, str] | None:
        """Mapping ``task -> processor`` when every instance of each task shares one processor.

        After load balancing, instances of a task may be spread over several
        processors (the worked example spreads the four instances of ``a``
        over all three processors); in that case ``None`` is returned and
        callers must fall back to :meth:`instance_assignment`.
        """
        mapping: dict[str, str] = {}
        for instance in self._instances.values():
            previous = mapping.get(instance.task)
            if previous is None:
                mapping[instance.task] = instance.processor
            elif previous != instance.processor:
                return None
        return mapping

    def communications_count(self) -> int:
        """Number of inter-processor transfers."""
        return len(self._communications)

    def communication_volume(self) -> float:
        """Total amount of data moved between processors."""
        return sum(op.data_size for op in self._communications)

    def idle_fraction(self, horizon: float | None = None) -> float:
        """Average fraction of idle time over all processors in ``[0, horizon]``.

        The introduction of the paper quotes a study [3] observing that "over
        65% of processors are idle at any given time"; this helper measures
        the same quantity on a schedule (experiment E8).
        """
        horizon = self.makespan if horizon is None else horizon
        if horizon <= 0 or len(self.architecture) == 0:
            return 0.0
        idle = sum(tl.idle_time(horizon) for tl in self.timelines().values())
        return idle / (horizon * len(self.architecture))

    # ------------------------------------------------------------------
    # Derivation
    # ------------------------------------------------------------------
    def with_instances(
        self,
        instances: Iterable[ScheduledInstance],
        communications: Iterable[CommOperation] | None = None,
    ) -> "Schedule":
        """New schedule over the same problem with different placements."""
        return Schedule(
            self.graph,
            self.architecture,
            instances,
            self._communications if communications is None else communications,
        )

    def moved(
        self, moves: Mapping[tuple[str, int], tuple[str, float]]
    ) -> "Schedule":
        """New schedule applying ``(task, index) -> (processor, start)`` moves.

        Communications are dropped (they must be re-synthesised for the new
        placement by :func:`repro.scheduling.communications.synthesize_communications`).
        """
        new_instances = []
        for key, instance in self._instances.items():
            if key in moves:
                processor, start = moves[key]
                new_instances.append(instance.moved(processor=processor, start=start))
            else:
                new_instances.append(instance)
        return Schedule(self.graph, self.architecture, new_instances, ())

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def describe(self) -> str:
        """Multi-line textual Gantt-like description (for logs and examples)."""
        lines = [
            f"Schedule of {self.graph.name!r} on {len(self.architecture)} processors "
            f"(makespan={self.makespan:g})"
        ]
        for name, timeline in self.timelines().items():
            entries = ", ".join(
                f"{si.label}@[{si.start:g},{si.end:g})" for si in timeline.instances
            )
            lines.append(
                f"  {name}: mem={timeline.static_memory:g} busy={timeline.busy_time:g} "
                f"| {entries if entries else '(idle)'}"
            )
        if self._communications:
            lines.append(f"  communications ({len(self._communications)}):")
            for op in sorted(self._communications, key=lambda o: (o.start, o.label)):
                lines.append(
                    f"    {op.label}: {op.source}->{op.target} via {op.medium} "
                    f"[{op.start:g},{op.arrival:g})"
                )
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Schedule(instances={len(self._instances)}, "
            f"communications={len(self._communications)}, makespan={self.makespan:g})"
        )
