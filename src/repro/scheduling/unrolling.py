"""Hyper-period unrolling: from tasks to instances and instance-level edges.

Analysing a strictly periodic application is done over one hyper-period: each
task ``a`` of period ``Ta`` appears ``LCM / Ta`` times, and every multi-rate
dependence ``a -> b`` expands into instance-level precedence edges following
the mapping of :class:`repro.model.dependence.Dependence`
(:meth:`producer_instances_for`).  The scheduling heuristic, the block
builder and the simulator all work on this unrolled view.
"""

from __future__ import annotations

import weakref
from collections.abc import Iterator
from dataclasses import dataclass

from repro.model.graph import TaskGraph
from repro.model.task import instance_label

__all__ = [
    "InstanceEdge",
    "unrolled_instances",
    "instance_count",
    "instance_edges",
    "predecessors_of_instance",
    "successors_of_instance",
]


@dataclass(frozen=True, slots=True)
class InstanceEdge:
    """A precedence edge between two task instances.

    Attributes
    ----------
    producer:
        ``(task, index)`` of the producing instance.
    consumer:
        ``(task, index)`` of the consuming instance.
    data_size:
        Size of the transferred data item (already resolved against the
        producer task's default).
    """

    producer: tuple[str, int]
    consumer: tuple[str, int]
    data_size: float

    @property
    def label(self) -> str:
        """Readable identifier such as ``a#1 -> b#0``."""
        return f"{instance_label(*self.producer)} -> {instance_label(*self.consumer)}"


def instance_count(graph: TaskGraph, task: str) -> int:
    """Number of instances of ``task`` in one hyper-period."""
    return graph.hyper_period // graph.task(task).period


def unrolled_instances(graph: TaskGraph) -> tuple[tuple[str, int], ...]:
    """Every ``(task, index)`` pair of the hyper-period, grouped by task.

    Tasks appear in insertion order, instances in index order; the result is
    deterministic for a given graph.
    """
    keys: list[tuple[str, int]] = []
    for name in graph.task_names:
        for index in range(instance_count(graph, name)):
            keys.append((name, index))
    return tuple(keys)


# Expansion cache keyed by graph identity; entries hold the graph version at
# expansion time so mutations invalidate lazily and dead graphs are collected.
_EDGE_CACHE: "weakref.WeakKeyDictionary[TaskGraph, tuple[int, tuple[InstanceEdge, ...]]]" = (
    weakref.WeakKeyDictionary()
)


def instance_edges(graph: TaskGraph) -> tuple[InstanceEdge, ...]:
    """Expand every dependence of the graph into instance-level edges.

    For a consumer ``n`` times slower than its producer, each consumer
    instance receives ``n`` edges (one per required producer sample); for a
    consumer ``n`` times faster, ``n`` consumer instances each receive one
    edge from the shared producer instance.

    The expansion is cached per ``(graph, graph.version)``: the block
    builder, the load balancer, the communication synthesiser and the
    feasibility checker all need it for the same graph within one run.
    """
    cached = _EDGE_CACHE.get(graph)
    if cached is not None and cached[0] == graph.version:
        return cached[1]
    edges: list[InstanceEdge] = []
    for dep in graph.dependences:
        producer_task = graph.task(dep.producer)
        consumer_task = graph.task(dep.consumer)
        data_size = dep.effective_data_size(producer_task)
        for consumer_index in range(instance_count(graph, dep.consumer)):
            for producer_index in dep.producer_instances_for(
                producer_task, consumer_task, consumer_index
            ):
                edges.append(
                    InstanceEdge(
                        producer=(dep.producer, producer_index),
                        consumer=(dep.consumer, consumer_index),
                        data_size=data_size,
                    )
                )
    expanded = tuple(edges)
    _EDGE_CACHE[graph] = (graph.version, expanded)
    return expanded


def predecessors_of_instance(
    graph: TaskGraph, task: str, index: int
) -> tuple[InstanceEdge, ...]:
    """Instance-level edges feeding ``(task, index)``."""
    consumer_task = graph.task(task)
    edges: list[InstanceEdge] = []
    for dep in graph.in_dependences(task):
        producer_task = graph.task(dep.producer)
        data_size = dep.effective_data_size(producer_task)
        for producer_index in dep.producer_instances_for(producer_task, consumer_task, index):
            edges.append(
                InstanceEdge(
                    producer=(dep.producer, producer_index),
                    consumer=(task, index),
                    data_size=data_size,
                )
            )
    return tuple(edges)


def successors_of_instance(graph: TaskGraph, task: str, index: int) -> Iterator[InstanceEdge]:
    """Instance-level edges leaving ``(task, index)`` (lazy)."""
    producer_task = graph.task(task)
    for dep in graph.out_dependences(task):
        consumer_task = graph.task(dep.consumer)
        data_size = dep.effective_data_size(producer_task)
        for consumer_index in dep.consumer_instances_for(producer_task, consumer_task, index):
            yield InstanceEdge(
                producer=(task, index),
                consumer=(dep.consumer, consumer_index),
                data_size=data_size,
            )
