"""Circular (modulo hyper-period) interval arithmetic for strict periodicity.

A strictly periodic task whose first instance starts at ``S`` occupies the
processor during ``[S + k·T, S + k·T + E)`` for every ``k ∈ ℕ``.  Over the
infinite horizon this busy pattern is periodic with the hyper-period ``H``
(the LCM of all periods): the steady-state occupancy of a processor is a set
of intervals **on a circle of circumference H**.  Two tasks can share a
processor without ever colliding — in any hyper-period, present or future —
exactly when their circular patterns do not overlap.

This module provides the small amount of circular-interval arithmetic needed
by the initial scheduler (finding a start time whose pattern avoids the
already-placed patterns) and by the feasibility checker (verifying that a
complete schedule can repeat every hyper-period forever):

* :func:`circular_overlap` — do two circular intervals intersect?
* :func:`clearing_shift` — smallest forward shift of an interval that clears
  another one;
* :func:`pattern_offsets` — the circular offsets occupied by a strictly
  periodic task;
* :func:`split_wrapping` — normalise a circular interval into linear pieces.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.epsilon import EPSILON
from repro.errors import SchedulingError

__all__ = [
    "EPSILON",
    "circular_overlap",
    "clearing_shift",
    "normalize_pieces",
    "pattern_offsets",
    "split_wrapping",
    "patterns_conflict",
]

#: Resolution of the circular arithmetic: intervals shorter than this are
#: treated as empty *everywhere* — :func:`circular_overlap` never reports a
#: sub-epsilon intersection and :func:`split_wrapping` never emits a
#: sub-epsilon piece.  The canonical value lives in :mod:`repro.epsilon`
#: (re-exported here for the historical import path); the conflict engine
#: and the feasibility checker see this same constant, so the clamp/wrap
#: decision at the period boundary and the overlap tests always apply one
#: rule.
_EPS = EPSILON


def _check(period: float) -> None:
    if period <= 0:
        raise SchedulingError(f"Circular period must be positive, got {period}")


def circular_overlap(
    a_start: float, a_length: float, b_start: float, b_length: float, period: float
) -> bool:
    """``True`` when the circular intervals ``[a, a+la)`` and ``[b, b+lb)`` intersect.

    Zero-length intervals never overlap anything.  Intervals longer than the
    period trivially overlap everything non-empty.
    """
    _check(period)
    if a_length <= _EPS or b_length <= _EPS:
        return False
    if a_length >= period - _EPS or b_length >= period - _EPS:
        return True
    x = (a_start - b_start) % period
    if x < b_length - _EPS:
        return True
    y = (b_start - a_start) % period
    return y < a_length - _EPS


def clearing_shift(
    a_start: float, a_length: float, b_start: float, b_length: float, period: float
) -> float:
    """Smallest ``δ >= 0`` such that ``[a+δ, a+δ+la)`` no longer intersects ``[b, b+lb)``.

    Returns ``0.0`` when the intervals already do not overlap.  Raises when no
    shift can separate them (an interval at least as long as the period).
    """
    _check(period)
    if not circular_overlap(a_start, a_length, b_start, b_length, period):
        return 0.0
    if a_length + b_length >= period - _EPS:
        raise SchedulingError(
            "Cannot separate two circular intervals whose total length reaches the period"
        )
    x = (a_start - b_start) % period
    return (b_length - x) % period


def pattern_offsets(
    first_start: float, task_period: int, count: int, hyper_period: int
) -> list[float]:
    """Circular start offsets of the ``count`` instances of a strictly periodic task."""
    _check(hyper_period)
    if task_period <= 0:
        raise SchedulingError(f"Task period must be positive, got {task_period}")
    if count < 0:
        raise SchedulingError(f"Instance count must be non-negative, got {count}")
    return [float((first_start + k * task_period) % hyper_period) for k in range(count)]


def normalize_pieces(
    start: float, length: float, period: float
) -> tuple[tuple[float, float], ...]:
    """Canonical linear pieces of a circular interval, as a tuple.

    The single normalisation rule shared by :func:`split_wrapping`, the
    occupancy-timeline fast path and the flat-array kernels: an interval
    crossing the period boundary always wraps, and any resulting piece
    shorter than :data:`EPSILON` is dropped.  Returning a tuple keeps the
    hot paths allocation-light (no intermediate list plus filter pass).
    """
    _check(period)
    if length <= _EPS:
        return ()
    if length >= period - _EPS:
        return ((0.0, float(period)),)
    begin = start % period
    end = begin + length
    if end > period:
        keep_first = period - begin > _EPS
        keep_second = end - period > _EPS
        if keep_first and keep_second:
            return ((begin, float(period)), (0.0, end - period))
        if keep_first:
            return ((begin, float(period)),)
        if keep_second:
            return ((0.0, end - period),)
        return ()
    if end - begin > _EPS:
        return ((begin, end),)
    return ()


def split_wrapping(start: float, length: float, period: float) -> list[tuple[float, float]]:
    """Normalise a circular interval into 1 or 2 linear ``[start, end)`` pieces in ``[0, period)``.

    Boundary rule (shared with :func:`circular_overlap` through
    :data:`EPSILON`): an interval crossing the period boundary always wraps,
    and any resulting piece shorter than :data:`EPSILON` is dropped — the
    overlap tests are blind to sub-epsilon intervals, so emitting them would
    only create clamp-versus-wrap asymmetry at the boundary.  Previously an
    interval ending within ``EPSILON`` *past* the period was clamped while
    one ending just beyond wrapped, so the two sides of that knife edge were
    normalised by different rules.  Delegates to :func:`normalize_pieces`.
    """
    return list(normalize_pieces(start, length, period))


def patterns_conflict(
    pattern_a: Iterable[tuple[float, float]],
    pattern_b: Iterable[tuple[float, float]],
    period: float,
) -> bool:
    """``True`` when any interval of pattern A intersects any interval of pattern B.

    Patterns are iterables of ``(start, length)`` circular intervals.  Useful
    for small patterns; the feasibility checker uses a sweep instead for whole
    processors.
    """
    list_b = list(pattern_b)
    for a_start, a_length in pattern_a:
        for b_start, b_length in list_b:
            if circular_overlap(a_start, a_length, b_start, b_length, period):
                return True
    return False
