"""Synthesis of inter-processor communication operations.

When a producer instance and a consumer instance are placed on different
processors, the data transfer becomes an explicit operation: the paper models
it as a send task on the producer's processor followed by a receive task on
the consumer's processor, with the *communication time* ``C`` spanning from
the start of the send to the completion of the receive.  This module derives
those operations from an instance placement, and provides the data-arrival
queries used by the scheduling heuristic, the gain computation of the load
balancer and the feasibility checker.
"""

from __future__ import annotations

from repro.model.architecture import Architecture
from repro.model.graph import TaskGraph
from repro.scheduling.schedule import CommOperation, Schedule
from repro.scheduling.unrolling import InstanceEdge, instance_edges

__all__ = [
    "synthesize_communications",
    "attach_communications",
    "edge_arrival_time",
]


def edge_arrival_time(
    producer_end: float,
    producer_processor: str,
    consumer_processor: str,
    architecture: Architecture,
    data_size: float,
) -> float:
    """Time at which the data of one instance edge is available to its consumer.

    Same processor: the data is available as soon as the producer completes.
    Different processors: the producer's completion is followed by one
    communication time (latency + size/bandwidth of the architecture's
    communication model).
    """
    return producer_end + architecture.comm_time(
        producer_processor, consumer_processor, data_size
    )


def synthesize_communications(schedule: Schedule) -> tuple[CommOperation, ...]:
    """Create the :class:`CommOperation` records implied by a placement.

    One operation is created per instance-level edge whose endpoints are on
    different processors; the transfer starts when the producer instance
    completes and lasts one communication time.  (Medium contention is not
    modelled here — the analytic model of the paper assumes the communication
    time is a constant; the discrete-event simulator refines this.)
    """
    graph: TaskGraph = schedule.graph
    architecture = schedule.architecture
    operations: list[CommOperation] = []
    for edge in instance_edges(graph):
        producer = schedule.instance(*edge.producer)
        consumer = schedule.instance(*edge.consumer)
        if producer.processor == consumer.processor:
            continue
        medium = architecture.medium_between(producer.processor, consumer.processor)
        duration = architecture.comm_time(
            producer.processor, consumer.processor, edge.data_size
        )
        operations.append(
            CommOperation(
                producer=edge.producer[0],
                producer_index=edge.producer[1],
                consumer=edge.consumer[0],
                consumer_index=edge.consumer[1],
                source=producer.processor,
                target=consumer.processor,
                medium=medium.name,
                start=producer.end,
                duration=duration,
                data_size=edge.data_size,
            )
        )
    return tuple(
        sorted(operations, key=lambda op: (op.start, op.source, op.target, op.label))
    )


def attach_communications(schedule: Schedule) -> Schedule:
    """Return a copy of ``schedule`` with freshly synthesised communications."""
    return schedule.with_instances(schedule.instances, synthesize_communications(schedule))


def arrival_times_for_instance(
    schedule: Schedule, task: str, index: int
) -> dict[InstanceEdge, float]:
    """Arrival time of every input edge of ``(task, index)`` under ``schedule``.

    Used by the feasibility checker: the consumer instance must not start
    before the latest of these arrival times.
    """
    from repro.scheduling.unrolling import predecessors_of_instance

    consumer = schedule.instance(task, index)
    arrivals: dict[InstanceEdge, float] = {}
    for edge in predecessors_of_instance(schedule.graph, task, index):
        producer = schedule.instance(*edge.producer)
        arrivals[edge] = edge_arrival_time(
            producer.end,
            producer.processor,
            consumer.processor,
            schedule.architecture,
            edge.data_size,
        )
    return arrivals
