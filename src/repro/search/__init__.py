"""Adversarial scenario search: hunt, minimise and freeze counterexamples.

The subsystem mines the workload parameter space for instances that make
the implementation look worst — infeasible paper-heuristic outcomes,
near-bound Theorem-2 ratios, simulation/model divergences, wall-time
blowups — then shrinks each find with a delta-debugging minimiser and
freezes the keepers as permanent ``regression/*`` scenarios the sweep and
conformance gates replay forever.

* :mod:`~repro.search.objectives` — the pluggable badness objectives;
* :mod:`~repro.search.mutate` — the bounded spec parameter space and its
  mutation/crossover operators;
* :mod:`~repro.search.driver` — the budgeted SA + GA hunt loop
  (CLI front-end: ``repro-lb hunt``);
* :mod:`~repro.search.minimize` — spec-level delta debugging;
* :mod:`~repro.search.artifact` — the ``repro-search/1`` artifact;
* :mod:`~repro.search.freeze` — merging survivors into the
  ``repro-regression/1`` registry of :mod:`repro.scenarios`.
"""

from repro.search.artifact import SEARCH_SCHEMA, SearchArtifact
from repro.search.driver import BUDGETS, SEARCH_SEED_STREAM, SearchOptions, run_hunt
from repro.search.freeze import freeze_counterexamples
from repro.search.minimize import MinimizeResult, minimize_spec, spec_size
from repro.search.mutate import ParamSpace, crossover_specs, initial_spec, mutate_spec
from repro.search.objectives import (
    ObjectiveResult,
    ObjectiveSpec,
    available_objectives,
    evaluate_objective,
    objective_info,
    register_objective,
)

__all__ = [
    "BUDGETS",
    "SEARCH_SCHEMA",
    "SEARCH_SEED_STREAM",
    "MinimizeResult",
    "ObjectiveResult",
    "ObjectiveSpec",
    "ParamSpace",
    "SearchArtifact",
    "SearchOptions",
    "available_objectives",
    "crossover_specs",
    "evaluate_objective",
    "freeze_counterexamples",
    "initial_spec",
    "minimize_spec",
    "mutate_spec",
    "objective_info",
    "register_objective",
    "run_hunt",
    "spec_size",
]
