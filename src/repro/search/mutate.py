"""Mutation and crossover operators over the ``WorkloadSpec`` parameter space.

The search treats a :class:`~repro.workloads.spec.WorkloadSpec` as a point
in a bounded parameter space (:class:`ParamSpace`): integers walk in small
steps, floats take truncated-gaussian steps, the graph shape flips uniformly
and the workload *seed itself* is a searchable parameter (a ``reseed``
mutation redraws it from the search's own seed chain, so the hunt explores
both parameter space and sampling noise).  Every operator clamps back into
the space, so any mutated spec validates.

The bounds are deliberately small-instance: ``approx_ratio`` needs branch
and bound to solve the optimum exactly, and minimised counterexamples should
be small enough to eyeball.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.workloads.spec import GraphShape, WorkloadSpec

__all__ = ["ParamSpace", "initial_spec", "mutate_spec", "crossover_specs"]


@dataclass(frozen=True, slots=True)
class ParamSpace:
    """Bounds of the searchable region (inclusive)."""

    task_count: tuple[int, int] = (3, 24)
    processor_count: tuple[int, int] = (2, 4)
    utilization: tuple[float, float] = (0.05, 0.85)
    base_period: tuple[int, int] = (10, 60)
    period_levels: tuple[int, int] = (1, 4)
    period_ratio: tuple[int, int] = (2, 4)
    edge_probability: tuple[float, float] = (0.0, 1.0)
    memory_low: tuple[float, float] = (0.5, 8.0)
    memory_high: tuple[float, float] = (1.0, 20.0)
    shapes: tuple[GraphShape, ...] = tuple(GraphShape)

    def clamp_int(self, name: str, value: int) -> int:
        low, high = getattr(self, name)
        return int(min(max(value, low), high))

    def clamp_float(self, name: str, value: float) -> float:
        low, high = getattr(self, name)
        return float(min(max(value, low), high))


def initial_spec(space: ParamSpace, rng: np.random.Generator, seed: int) -> WorkloadSpec:
    """Search starting point: mid-space defaults with a drawn workload seed."""
    return WorkloadSpec(
        task_count=space.clamp_int("task_count", 10),
        processor_count=space.clamp_int("processor_count", 2),
        utilization=space.clamp_float("utilization", 0.30),
        base_period=space.clamp_int("base_period", 20),
        period_levels=space.clamp_int("period_levels", 2),
        period_ratio=space.clamp_int("period_ratio", 2),
        edge_probability=space.clamp_float("edge_probability", 0.35),
        shape=GraphShape.LAYERED,
        seed=int(seed),
    )


#: Mutable field names, by kind (memory_range and shape/seed are special-cased).
_INT_FIELDS = ("task_count", "processor_count", "base_period", "period_levels", "period_ratio")
_FLOAT_FIELDS = ("utilization", "edge_probability")
#: Relative float step (fraction of the bound width) and integer step sizes.
_FLOAT_SIGMA = 0.15
_INT_STEPS = {"task_count": 3, "processor_count": 1, "base_period": 10, "period_levels": 1, "period_ratio": 1}

#: Every mutation op the proposer can draw.
MUTATION_OPS: tuple[str, ...] = _INT_FIELDS + _FLOAT_FIELDS + ("memory_range", "shape", "reseed")


def _apply_op(
    spec: WorkloadSpec, op: str, space: ParamSpace, rng: np.random.Generator
) -> WorkloadSpec:
    if op in _INT_FIELDS:
        step = int(rng.integers(1, _INT_STEPS[op] + 1)) * (1 if rng.random() < 0.5 else -1)
        return spec.with_updates(**{op: space.clamp_int(op, getattr(spec, op) + step)})
    if op in _FLOAT_FIELDS:
        low, high = getattr(space, op)
        # Heavy-tailed proposal: mostly local gaussian steps, with an
        # occasional uniform redraw so the chain can cross the whole range
        # within a tiny budget.
        if rng.random() < 0.2:
            return spec.with_updates(**{op: float(rng.uniform(low, high))})
        step = float(rng.normal(0.0, _FLOAT_SIGMA * (high - low)))
        return spec.with_updates(**{op: space.clamp_float(op, getattr(spec, op) + step)})
    if op == "memory_range":
        low = space.clamp_float("memory_low", spec.memory_range[0] + float(rng.normal(0.0, 1.0)))
        high = space.clamp_float("memory_high", spec.memory_range[1] + float(rng.normal(0.0, 2.0)))
        return spec.with_updates(memory_range=(min(low, high), max(low, high)))
    if op == "shape":
        return spec.with_updates(shape=space.shapes[int(rng.integers(len(space.shapes)))])
    if op == "reseed":
        return spec.with_updates(seed=int(rng.integers(0, 2**32)))
    raise ValueError(f"unknown mutation op {op!r}")


def mutate_spec(
    spec: WorkloadSpec, space: ParamSpace, rng: np.random.Generator
) -> tuple[WorkloadSpec, list[dict[str, Any]]]:
    """One mutation proposal: 1–2 random ops, returned with their trace.

    The trace records each applied op and the field values it produced, so
    survivor provenance can replay the lineage.
    """
    ops: list[dict[str, Any]] = []
    for _ in range(int(rng.integers(1, 3))):
        op = MUTATION_OPS[int(rng.integers(len(MUTATION_OPS)))]
        mutated = _apply_op(spec, op, space, rng)
        changed = {
            f: getattr(mutated, f)
            for f in ("task_count", "processor_count", "utilization", "base_period",
                      "period_levels", "period_ratio", "edge_probability",
                      "memory_range", "shape", "seed")
            if getattr(mutated, f) != getattr(spec, f)
        }
        ops.append(
            {
                "op": op,
                "changed": {
                    k: (v.value if isinstance(v, GraphShape) else
                        list(v) if isinstance(v, tuple) else v)
                    for k, v in changed.items()
                },
            }
        )
        spec = mutated
    spec.validate()
    return spec, ops


#: Fields the uniform crossover mixes gene-by-gene.
_CROSSOVER_FIELDS = (
    "task_count", "processor_count", "utilization", "base_period",
    "period_levels", "period_ratio", "edge_probability", "memory_range",
    "shape", "seed",
)


def crossover_specs(
    a: WorkloadSpec, b: WorkloadSpec, rng: np.random.Generator
) -> WorkloadSpec:
    """Uniform crossover (the GA operator of :mod:`repro.baselines.genetic`,
    lifted from assignment genes to spec fields)."""
    child = a
    picks = rng.random(len(_CROSSOVER_FIELDS)) < 0.5
    updates = {
        field: getattr(b, field)
        for field, take_b in zip(_CROSSOVER_FIELDS, picks, strict=True)
        if take_b and getattr(a, field) != getattr(b, field)
    }
    if updates:
        child = a.with_updates(**updates)
    child.validate()
    return child
