"""The hunt driver: simulated annealing + a small genetic refinement loop.

:func:`run_hunt` maximises one registered badness objective over the bounded
:class:`~repro.search.mutate.ParamSpace`:

1. **Simulated annealing** (the bulk of the budget): a single chain of
   1–2-op mutations with geometric cooling — uphill moves always accepted,
   downhill moves with probability ``exp(Δ/T)``.  SA is the explorer; its
   reseed mutations also walk the sampling-noise axis.
2. **Genetic refinement** (the remainder): a small population seeded from
   the best specs SA visited, evolved with the exact operator set of the
   GA baseline — tournament selection, uniform crossover, mutation,
   elitism — whose hyper-parameters ride in the same
   :class:`~repro.baselines.genetic.GeneticOptions` dataclass the baseline
   validates.  The GA is the exploiter: it recombines independently
   discovered bad regions.

Every candidate whose score reaches the firing threshold is a survivor;
survivors are shrunk by the delta-debugging minimiser
(:mod:`repro.search.minimize`), re-confirmed, deduplicated by structural
workload fingerprint and ranked by score into the ``repro-search/1``
artifact.  All randomness flows from one root seed through the dedicated
``hunt`` seed stream of :func:`~repro.workloads.seeding.derive_seed`, so a
hunt is one pure function of ``(objective, budget, seed)`` — the CI smoke
job diffs two runs' canonical artifacts byte for byte.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.baselines.genetic import GeneticOptions
from repro.errors import ConfigurationError, WorkloadError
from repro.scenarios.registry import workload_digest
from repro.search.artifact import SearchArtifact
from repro.search.minimize import minimize_spec, spec_size
from repro.search.mutate import ParamSpace, crossover_specs, initial_spec, mutate_spec
from repro.search.objectives import evaluate_objective, objective_info
from repro.workloads.generator import generate_workload
from repro.workloads.seeding import derive_seed
from repro.workloads.spec import WorkloadSpec

__all__ = ["BUDGETS", "SEARCH_SEED_STREAM", "SearchOptions", "run_hunt"]

#: Seed-stream namespace of the hunt (spawn key ``(stream, index)``), disjoint
#: by construction from the plain ``(index,)`` keys of the scenario grids.
SEARCH_SEED_STREAM = 0x48554E54  # "HUNT"

#: Named evaluation budgets (objective evaluations spent searching; the
#: minimiser and the final confirmation re-runs budget separately).
BUDGETS: dict[str, int] = {"tiny": 40, "quick": 120, "full": 500}

#: Cap on the lineage depth recorded per counterexample (provenance, not data).
_MAX_LINEAGE = 50


@dataclass(frozen=True, slots=True)
class SearchOptions:
    """One hunt invocation."""

    objective: str
    #: Named budget (``tiny``/``quick``/``full``).
    budget: str = "tiny"
    #: Explicit evaluation budget (overrides ``budget`` when given).
    evaluations: int | None = None
    #: Root seed of the hunt's seed chain.
    seed: int = 0
    #: Firing threshold (``None`` = the objective's registered default).
    threshold: float | None = None
    #: Counterexamples kept after minimisation + dedup.
    max_survivors: int = 5
    minimize: bool = True
    #: Minimiser evaluation budget, per survivor.
    minimize_evaluations: int = 60
    #: Fraction of the search budget the SA phase burns (the GA gets the rest).
    sa_fraction: float = 0.6
    space: ParamSpace = ParamSpace()

    def resolved_evaluations(self) -> int:
        if self.evaluations is not None:
            if self.evaluations < 1:
                raise ConfigurationError(
                    f"evaluations must be >= 1, got {self.evaluations}"
                )
            return self.evaluations
        try:
            return BUDGETS[self.budget]
        except KeyError:
            raise ConfigurationError(
                f"Unknown hunt budget {self.budget!r}; expected one of "
                f"{sorted(BUDGETS)} (or an explicit evaluation count)"
            ) from None

    def validate(self) -> None:
        objective_info(self.objective)
        self.resolved_evaluations()
        if not 0.0 <= self.sa_fraction <= 1.0:
            raise ConfigurationError(
                f"sa_fraction must be in [0, 1], got {self.sa_fraction}"
            )
        if self.max_survivors < 1:
            raise ConfigurationError(
                f"max_survivors must be >= 1, got {self.max_survivors}"
            )
        if self.minimize_evaluations < 0:
            raise ConfigurationError(
                f"minimize_evaluations must be >= 0, got {self.minimize_evaluations}"
            )


class _Hunt:
    """Mutable state of one hunt (specs, history, lineage)."""

    def __init__(self, options: SearchOptions, threshold: float) -> None:
        self.options = options
        self.threshold = threshold
        self.history: list[dict[str, Any]] = []
        #: Evaluation index -> the spec it evaluated (lineage + survivors).
        self.specs: dict[int, WorkloadSpec] = {}
        #: Evaluation indices whose score reached the threshold.
        self.fired: list[int] = []

    def evaluate(
        self,
        spec: WorkloadSpec,
        *,
        phase: str,
        parent: int | None,
        ops: list[dict[str, Any]],
    ) -> tuple[int, float]:
        """Run the objective on ``spec``, appending one history record."""
        result = evaluate_objective(self.options.objective, spec)
        evaluation = len(self.history)
        fired = result.status == "ok" and result.score >= self.threshold
        self.history.append(
            {
                "evaluation": evaluation,
                "phase": phase,
                "parent": parent,
                "ops": ops,
                "score": float(result.score),
                "status": result.status,
                "fired": fired,
            }
        )
        self.specs[evaluation] = spec
        if fired:
            self.fired.append(evaluation)
        return evaluation, float(result.score)

    def lineage(self, evaluation: int) -> list[dict[str, Any]]:
        """Ancestor chain of one evaluation (root first, depth-capped)."""
        chain: list[dict[str, Any]] = []
        cursor: int | None = evaluation
        while cursor is not None and len(chain) < _MAX_LINEAGE:
            entry = self.history[cursor]
            chain.append(
                {
                    "evaluation": entry["evaluation"],
                    "phase": entry["phase"],
                    "ops": entry["ops"],
                    "score": entry["score"],
                }
            )
            cursor = entry["parent"]
        chain.reverse()
        return chain


def _anneal(hunt: _Hunt, rng: np.random.Generator, evaluations: int) -> None:
    """The SA phase: one chain, geometric cooling."""
    options = hunt.options
    start = initial_spec(options.space, rng, seed=int(rng.integers(0, 2**32)))
    current_eval, current_score = hunt.evaluate(
        start, phase="init", parent=None, ops=[]
    )
    budget = evaluations - 1  # the initial evaluation came out of the budget
    if budget <= 0:
        return
    t_start = max(0.2 * max(hunt.threshold, 1e-6), 1e-3)
    t_end = t_start * 0.01
    for step in range(budget):
        temperature = t_start * (t_end / t_start) ** (step / max(budget - 1, 1))
        candidate, ops = mutate_spec(hunt.specs[current_eval], options.space, rng)
        evaluation, score = hunt.evaluate(
            candidate, phase="sa", parent=current_eval, ops=ops
        )
        delta = score - current_score
        accepted = delta > 0 or rng.random() < math.exp(
            min(delta / temperature, 0.0)
        )
        hunt.history[evaluation]["accepted"] = bool(accepted)
        if accepted:
            current_eval, current_score = evaluation, score


def _refine(hunt: _Hunt, rng: np.random.Generator, evaluations: int) -> None:
    """The GA phase: evolve a small population seeded from SA's best specs."""
    options = hunt.options
    population_size = min(6, max(2, evaluations // 2))
    ga = GeneticOptions(
        population_size=population_size,
        generations=max(1, math.ceil(evaluations / population_size)),
        crossover_rate=0.9,
        mutation_rate=0.5,
        tournament_size=3,
        elite_count=min(2, population_size - 1),
        seed=0,  # unused: the hunt owns the generator
    )
    ga.validate()

    def tournament(population: list[tuple[int, float]]) -> tuple[int, float]:
        contenders = rng.integers(0, len(population), size=ga.tournament_size)
        return max(
            (population[int(i)] for i in contenders),
            key=lambda item: (item[1], -item[0]),
        )

    # Seed the population with the best evaluations so far (score-sorted,
    # evaluation order as the deterministic tie-break).
    ranked = sorted(
        hunt.history, key=lambda entry: (-entry["score"], entry["evaluation"])
    )
    population: list[tuple[int, float]] = [
        (entry["evaluation"], entry["score"]) for entry in ranked[:population_size]
    ]
    spent = 0
    for _generation in range(ga.generations):
        if spent >= evaluations:
            break
        children: list[tuple[int, float]] = []
        while len(children) < ga.population_size and spent < evaluations:
            mother = tournament(population)
            father = tournament(population)
            ops: list[dict[str, Any]] = []
            if rng.random() < ga.crossover_rate and mother[0] != father[0]:
                child = crossover_specs(
                    hunt.specs[mother[0]], hunt.specs[father[0]], rng
                )
                ops.append({"op": "crossover", "with": father[0]})
            else:
                child = hunt.specs[mother[0]]
            if rng.random() < ga.mutation_rate or not ops:
                child, mutation_ops = mutate_spec(child, options.space, rng)
                ops.extend(mutation_ops)
            evaluation, score = hunt.evaluate(
                child, phase="ga", parent=mother[0], ops=ops
            )
            children.append((evaluation, score))
            spent += 1
        merged = sorted(
            population + children, key=lambda item: (-item[1], item[0])
        )
        elites = merged[: ga.elite_count]
        population = (elites + children)[: ga.population_size] or population


def _collect(hunt: _Hunt) -> tuple[list[dict[str, Any]], dict[str, int]]:
    """Minimise, confirm, deduplicate and rank the firing evaluations."""
    options = hunt.options
    minimize_spent = 0
    confirm_spent = 0
    seen_fingerprints: set[str] = set()
    survivors: list[dict[str, Any]] = []
    # Best firing evaluations first; keep a margin over the cap so dedup
    # after minimisation can still fill it.
    ranked = sorted(
        hunt.fired, key=lambda e: (-hunt.history[e]["score"], e)
    )[: options.max_survivors * 3]
    for evaluation in ranked:
        parent_spec = hunt.specs[evaluation]
        search_score = hunt.history[evaluation]["score"]
        minimize_record: dict[str, Any] | None = None
        final_spec = parent_spec
        if options.minimize and options.minimize_evaluations:

            def fires(candidate: WorkloadSpec) -> tuple[bool, float]:
                result = evaluate_objective(options.objective, candidate)
                return (
                    result.status == "ok" and result.score >= hunt.threshold,
                    result.score,
                )

            reduction = minimize_spec(
                parent_spec, fires, max_evaluations=options.minimize_evaluations
            )
            minimize_spent += reduction.evaluations
            final_spec = reduction.spec
            minimize_record = {
                "evaluations": reduction.evaluations,
                "trace": reduction.trace,
                "from_size": list(spec_size(parent_spec)),
                "to_size": list(spec_size(final_spec)),
                "from_spec": parent_spec.to_dict(),
            }
        confirmation = evaluate_objective(options.objective, final_spec)
        confirm_spent += 1
        if not (
            confirmation.status == "ok" and confirmation.score >= hunt.threshold
        ):
            # The minimiser never keeps a non-firing reduction, so only a
            # flaky objective (wall time) can land here; drop it loudly in
            # the history rather than freeze a non-reproducing spec.
            hunt.history.append(
                {
                    "evaluation": len(hunt.history),
                    "phase": "confirm",
                    "parent": evaluation,
                    "ops": [],
                    "score": float(confirmation.score),
                    "status": confirmation.status,
                    "fired": False,
                }
            )
            continue
        try:
            fingerprint = workload_digest(generate_workload(final_spec))
        except WorkloadError:
            # Every registered objective generates the workload, so a spec
            # that fired cannot normally be ungeneratable; guard anyway so a
            # future objective skipping generation cannot crash the hunt.
            continue
        if fingerprint in seen_fingerprints:
            continue
        seen_fingerprints.add(fingerprint)
        survivors.append(
            {
                "score": float(confirmation.score),
                "threshold": float(hunt.threshold),
                "fingerprint": fingerprint,
                "spec": final_spec.to_dict(),
                "evidence": confirmation.evidence,
                "provenance": {
                    "objective": options.objective,
                    "found_at_evaluation": evaluation,
                    "phase": hunt.history[evaluation]["phase"],
                    "search_score": float(search_score),
                    "lineage": hunt.lineage(evaluation),
                    "minimize": minimize_record,
                },
            }
        )
        if len(survivors) >= options.max_survivors:
            break
    survivors.sort(key=lambda entry: (-entry["score"], entry["fingerprint"]))
    return survivors, {"minimize": minimize_spent, "confirm": confirm_spent}


def run_hunt(options: SearchOptions) -> SearchArtifact:
    """Run one budgeted hunt and return its ``repro-search/1`` artifact."""
    options.validate()
    objective = objective_info(options.objective)
    threshold = (
        objective.threshold if options.threshold is None else options.threshold
    )
    total = options.resolved_evaluations()
    sa_budget = max(1, round(total * options.sa_fraction)) if total else 0
    sa_budget = min(sa_budget, total)

    seed_chain = {
        "root": options.seed,
        "stream": SEARCH_SEED_STREAM,
        "init": derive_seed(options.seed, 0, stream=SEARCH_SEED_STREAM),
        "sa": derive_seed(options.seed, 1, stream=SEARCH_SEED_STREAM),
        "ga": derive_seed(options.seed, 2, stream=SEARCH_SEED_STREAM),
    }
    started = time.perf_counter()
    hunt = _Hunt(options, threshold)

    sa_rng = np.random.default_rng([seed_chain["init"], seed_chain["sa"]])
    _anneal(hunt, sa_rng, sa_budget)
    remaining = total - len(hunt.history)
    if remaining > 0:
        _refine(hunt, np.random.default_rng(seed_chain["ga"]), remaining)

    search_spent = len(hunt.history)
    counterexamples, aux_spent = _collect(hunt)
    best_score = max(
        (entry["score"] for entry in hunt.history if entry["status"] == "ok"),
        default=0.0,
    )
    return SearchArtifact.now(
        objective=options.objective,
        budget=options.budget if options.evaluations is None else "custom",
        seed=options.seed,
        threshold=float(threshold),
        options={
            "evaluations": total,
            "sa_evaluations": sa_budget,
            "sa_fraction": options.sa_fraction,
            "max_survivors": options.max_survivors,
            "minimize": options.minimize,
            "minimize_evaluations": options.minimize_evaluations,
        },
        seed_chain=seed_chain,
        history=hunt.history,
        counterexamples=counterexamples,
        evaluations={"search": search_spent, **aux_spent},
        best_score=float(best_score),
        seconds=time.perf_counter() - started,
    )
