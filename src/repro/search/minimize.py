"""Delta-debugging minimiser for counterexample workload specs.

A survivor of the hunt is a *spec*, so minimisation is spec-level delta
debugging: greedily reduce one parameter at a time — fewer tasks (dropping
tasks), fewer processors, a flatter period ladder (rounding periods), lower
utilisation (rounding WCETs, which the generators derive from utilisation),
sparser graphs — keeping a reduction only while the objective still fires.
Passes repeat to a fixpoint (or an evaluation budget), so the frozen
regression scenario is the smallest spec on the reduction lattice that still
reproduces the finding.

Every pass proposes values *strictly smaller* than the current one, so the
minimised spec is never larger than its parent on any component of
:func:`spec_size` — the property the hypothesis suite pins.
"""

from __future__ import annotations

import math
from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Any

from repro.workloads.spec import WorkloadSpec

__all__ = ["MinimizeResult", "minimize_spec", "spec_size"]

#: Smallest utilisation a reduction may reach (the generators reject 0).
_MIN_UTILIZATION = 0.05


def spec_size(spec: WorkloadSpec) -> tuple[float, ...]:
    """Size vector of a spec; minimisation only ever decreases components."""
    return (
        spec.task_count,
        spec.processor_count,
        spec.period_levels,
        spec.period_ratio,
        spec.base_period,
        round(spec.utilization, 9),
        round(spec.edge_probability, 9),
    )


def _floor_to_grid(value: float, grid: float, minimum: float) -> float:
    return max(math.floor(value / grid) * grid, minimum)


def _candidates(spec: WorkloadSpec) -> list[tuple[str, Any]]:
    """Reduction proposals, most aggressive first per field.

    ``task_count`` reduction drops tasks; ``utilization`` reduction rounds
    the WCETs the generator derives from it; ``base_period``/``period_*``
    reductions round and flatten the period ladder; ``edge_probability``
    reduction drops dependence edges.
    """
    proposals: list[tuple[str, Any]] = []
    for target in sorted({1, 2, spec.task_count // 2, spec.task_count - 1}):
        if 1 <= target < spec.task_count:
            proposals.append(("task_count", target))
    for target in range(1, spec.processor_count):
        proposals.append(("processor_count", target))
    for target in range(1, spec.period_levels):
        proposals.append(("period_levels", target))
    if spec.period_ratio > 2:
        proposals.append(("period_ratio", 2))
    for target in (10, 20):
        if target < spec.base_period:
            proposals.append(("base_period", target))
    for grid in (0.1, 0.05):
        target = _floor_to_grid(spec.utilization, grid, _MIN_UTILIZATION)
        if target < spec.utilization - 1e-12:
            proposals.append(("utilization", round(target, 9)))
    for target in (0.0, _floor_to_grid(spec.edge_probability, 0.1, 0.0)):
        if target < spec.edge_probability - 1e-12:
            proposals.append(("edge_probability", round(target, 9)))
    return proposals


@dataclass(slots=True)
class MinimizeResult:
    """Outcome of one minimisation run."""

    spec: WorkloadSpec
    #: Objective evaluations the minimiser spent.
    evaluations: int
    #: Every attempted reduction: field, from, to, kept?, score.
    trace: list[dict[str, Any]] = field(default_factory=list)


def minimize_spec(
    spec: WorkloadSpec,
    fires: Callable[[WorkloadSpec], tuple[bool, float]],
    *,
    max_evaluations: int = 80,
) -> MinimizeResult:
    """Greedily shrink ``spec`` while ``fires`` keeps returning ``True``.

    ``fires`` evaluates the objective on a candidate and returns
    ``(still_fires, score)``.  The input spec is assumed to fire (callers
    check before minimising); the result is the fixpoint of the reduction
    passes within the evaluation budget.
    """
    current = spec
    evaluations = 0
    trace: list[dict[str, Any]] = []
    improved = True
    while improved and evaluations < max_evaluations:
        improved = False
        for field_name, target in _candidates(current):
            if evaluations >= max_evaluations:
                break
            candidate = current.with_updates(**{field_name: target})
            fired, score = fires(candidate)
            evaluations += 1
            trace.append(
                {
                    "field": field_name,
                    "from": getattr(current, field_name),
                    "to": target,
                    "kept": bool(fired),
                    "score": float(score),
                }
            )
            if fired:
                current = candidate
                improved = True
                break  # restart the pass list from the shrunk spec
    return MinimizeResult(spec=current, evaluations=evaluations, trace=trace)
