"""Pluggable *badness* objectives of the adversarial scenario search.

An objective maps a candidate :class:`~repro.workloads.spec.WorkloadSpec`
to a real-valued **score** — higher is worse for the implementation under
test — plus structured evidence.  The hunt driver (:mod:`repro.search.driver`)
maximises the score; a candidate whose score reaches the objective's firing
threshold is a **counterexample** worth minimising and freezing.

Registered objectives
---------------------
``paper_infeasible``
    The paper heuristic returns an infeasible schedule on an instance where
    a baseline succeeds (``no_balancing`` keeps the feasible-by-construction
    initial schedule, so any schedulable instance is a baseline success).
    The retry ladder makes this impossible by design — any firing is a bug.
    Score: violation count of the paper-balanced schedule.
``approx_ratio``
    Worst measured greedy-vs-optimal memory ratio (Theorem 2) on instances
    small enough for :func:`~repro.baselines.branch_and_bound
    .optimal_min_max_partition` to solve exactly.  Score: ``ω / ω_opt`` of
    the blocks of the real initial schedule.  The Theorem-2 bound
    ``2 − 1/M`` caps how bad this can get; the hunt looks for instances
    that approach it.
``conformance_divergence``
    The discrete-event replay of the paper-balanced schedule contradicts
    the analytical model (the PR-5 oracle).  Score: divergence count of the
    ``repro-conformance/1`` report.  Any firing is a bug.
``walltime_blowup``
    Balancing wall time, normalised by a size model fitted to the nominal
    cost of the paper heuristic (quadratic in the block count).  Score:
    measured/model ratio.  Noisy by nature — scores are evidence for
    triage, not golden values.
``planted``
    Smoke-test objective with a known optimum: score ``1 − edge_probability``,
    firing at sparse graphs (``edge_probability <= 0.1``).  The CI hunt-smoke
    job uses it to assert the driver actually walks the parameter space.

Objectives never raise for unschedulable draws: an initial-scheduling
:class:`~repro.errors.InfeasibleError` becomes status ``"unschedulable"``
with score 0 (the search treats it as a dead end, not a crash).
"""

from __future__ import annotations

import time
from collections.abc import Callable
from dataclasses import dataclass
from typing import Any

from repro.api.config import (
    BalanceStage,
    PipelineConfig,
    ReportStage,
    VerifyStage,
    WorkloadStage,
)
from repro.api.pipeline import Pipeline, RunResult
from repro.errors import ConfigurationError, InfeasibleError, WorkloadError
from repro.workloads.spec import WorkloadSpec

__all__ = [
    "ObjectiveResult",
    "ObjectiveSpec",
    "available_objectives",
    "evaluate_objective",
    "objective_info",
    "register_objective",
]


@dataclass(frozen=True, slots=True)
class ObjectiveResult:
    """Score + evidence of one objective evaluation."""

    #: Badness score (higher = worse for the implementation; to maximise).
    score: float
    #: Structured evidence backing the score (JSON-safe).
    evidence: dict[str, Any]
    #: ``"ok"`` | ``"unschedulable"`` (initial scheduling infeasible) |
    #: ``"invalid"`` (spec outside the generators' valid region) — the
    #: non-``ok`` statuses score 0: dead ends, not errors.
    status: str = "ok"

    def to_dict(self) -> dict[str, Any]:
        return {
            "score": float(self.score),
            "status": self.status,
            "evidence": dict(self.evidence),
        }


@dataclass(frozen=True, slots=True)
class ObjectiveSpec:
    """One registered badness objective."""

    name: str
    title: str
    description: str
    #: Default firing threshold: a score ``>= threshold`` is a counterexample.
    threshold: float
    evaluate: Callable[[WorkloadSpec], ObjectiveResult]


_REGISTRY: dict[str, ObjectiveSpec] = {}


def register_objective(
    name: str, title: str, description: str, threshold: float
) -> Callable[[Callable[[WorkloadSpec], ObjectiveResult]], Callable[[WorkloadSpec], ObjectiveResult]]:
    """Register an objective under ``name`` (decorator form)."""

    def decorator(
        evaluate: Callable[[WorkloadSpec], ObjectiveResult],
    ) -> Callable[[WorkloadSpec], ObjectiveResult]:
        if name in _REGISTRY:
            raise ConfigurationError(f"Objective {name!r} is already registered")
        _REGISTRY[name] = ObjectiveSpec(
            name=name,
            title=title,
            description=description,
            threshold=threshold,
            evaluate=evaluate,
        )
        return evaluate

    return decorator


def available_objectives() -> tuple[str, ...]:
    """Registered objective names, sorted."""
    return tuple(sorted(_REGISTRY))


def objective_info(name: str) -> ObjectiveSpec:
    """Registry entry of ``name`` (raises :class:`ConfigurationError` if absent)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"Unknown objective {name!r}; registered: {list(available_objectives())}"
        ) from None


def evaluate_objective(name: str, spec: WorkloadSpec) -> ObjectiveResult:
    """Evaluate objective ``name`` on ``spec``.

    Dead ends score 0 instead of raising: an unschedulable draw (initial
    scheduling infeasible) gets status ``"unschedulable"``; a spec outside
    the generators' valid region (for example too few tasks for the
    sensor-fusion shape, which mutation and minimisation can both propose)
    gets status ``"invalid"``.
    """
    objective = objective_info(name)
    try:
        return objective.evaluate(spec)
    except InfeasibleError as error:
        return ObjectiveResult(
            score=0.0,
            status="unschedulable",
            evidence={"detail": str(error)},
        )
    except WorkloadError as error:
        return ObjectiveResult(
            score=0.0,
            status="invalid",
            evidence={"detail": str(error)},
        )


# ---------------------------------------------------------------------------
# shared pipeline plumbing


def _paper_config(spec: WorkloadSpec, *, conformance: bool = False) -> PipelineConfig:
    """Paper-heuristic pipeline config of a candidate spec (reports off)."""
    return PipelineConfig(
        workload=WorkloadStage(kind="spec", spec=spec),
        balance=BalanceStage(balancer="paper", params={"policy": "ratio"}),
        verify=VerifyStage(enabled=True, conformance=conformance),
        report=ReportStage(enabled=False),
        label=spec.label or "hunt",
    )


def _run_paper(spec: WorkloadSpec, *, conformance: bool = False) -> RunResult:
    return Pipeline(_paper_config(spec, conformance=conformance)).run()


# ---------------------------------------------------------------------------
# registered objectives


@register_objective(
    "paper_infeasible",
    "paper heuristic infeasible where a baseline succeeds",
    "violation count of the paper-balanced schedule on schedulable instances "
    "(no_balancing keeps the feasible initial schedule, so any schedulable "
    "instance is a baseline success); the retry ladder makes any firing a bug",
    threshold=1.0,
)
def _paper_infeasible(spec: WorkloadSpec) -> ObjectiveResult:
    result = _run_paper(spec)
    violations = list(result.violations)
    score = 0.0 if result.feasible else float(len(violations))
    return ObjectiveResult(
        score=score,
        evidence={
            "paper_feasible": bool(result.feasible),
            "baseline": "no_balancing",
            "baseline_feasible": True,
            "violations": violations[:10],
            "safety_level": result.safety_level,
        },
    )


@register_objective(
    "approx_ratio",
    "worst greedy-vs-optimal memory ratio (Theorem 2)",
    "omega / omega_opt of the blocks of the real initial schedule, with the "
    "optimum solved exactly by branch and bound on small instances; the paper "
    "bounds this by 2 - 1/M",
    threshold=1.30,
)
def _approx_ratio(spec: WorkloadSpec) -> ObjectiveResult:
    from repro.analysis.approximation import measure_greedy_ratio
    from repro.core.blocks import BlockBuildOptions, build_blocks
    from repro.scheduling.heuristic import schedule_application
    from repro.workloads.generator import generate_workload

    workload = generate_workload(spec)
    schedule = schedule_application(workload.graph, workload.architecture)
    blocks = list(build_blocks(schedule, BlockBuildOptions()))
    memories = [block.memory for block in blocks]
    sample = measure_greedy_ratio(
        memories, len(workload.architecture), node_limit=500_000
    )
    # An inexact optimum cannot certify a ratio — score it as a dead end.
    score = sample.ratio if sample.exact else 0.0
    return ObjectiveResult(
        score=score,
        evidence={
            "ratio": float(sample.ratio),
            "bound": float(sample.bound),
            "within_bound": bool(sample.within_bound),
            "exact": bool(sample.exact),
            "block_count": int(sample.block_count),
            "processor_count": int(sample.processor_count),
            "greedy_max_memory": float(sample.greedy_max_memory),
            "optimal_max_memory": float(sample.optimal_max_memory),
        },
    )


@register_objective(
    "conformance_divergence",
    "discrete-event replay contradicts the analytical model",
    "divergence count of the repro-conformance/1 report of the paper-balanced "
    "schedule (the PR-5 oracle); any firing is a bug",
    threshold=1.0,
)
def _conformance_divergence(spec: WorkloadSpec) -> ObjectiveResult:
    result = _run_paper(spec, conformance=True)
    report = result.conformance or {}
    consistent = bool(report.get("consistent", True))
    divergences = int(report.get("divergences", 0))
    score = 0.0 if consistent else float(max(divergences, 1))
    return ObjectiveResult(
        score=score,
        evidence={
            "consistent": consistent,
            "conforms": bool(report.get("conforms", False)),
            "divergences": divergences,
            "first_divergence": report.get("first_divergence"),
            "paper_feasible": bool(result.feasible),
        },
    )


#: Size model of the nominal balancing cost: a small constant plus a
#: quadratic block-count term (the heuristic sorts blocks and scans
#: processors per block; the conflict engine adds per-interval work).
_WALLTIME_BASE_SECONDS = 2e-3
_WALLTIME_PER_BLOCK2_SECONDS = 1e-5


@register_objective(
    "walltime_blowup",
    "balancing wall time far above the size-normalised model",
    "measured balance-stage seconds divided by a quadratic-in-blocks cost "
    "model; noisy by nature (wall time), so scores are triage evidence, not "
    "golden values",
    threshold=25.0,
)
def _walltime_blowup(spec: WorkloadSpec) -> ObjectiveResult:
    started = time.perf_counter()
    result = _run_paper(spec)
    total = time.perf_counter() - started
    balance_seconds = float(result.timings.get("balance", 0.0))
    block_count = len(result.trace) or spec.task_count
    model_seconds = (
        _WALLTIME_BASE_SECONDS + _WALLTIME_PER_BLOCK2_SECONDS * block_count**2
    )
    score = balance_seconds / model_seconds
    return ObjectiveResult(
        score=score,
        evidence={
            "balance_seconds": balance_seconds,
            "model_seconds": model_seconds,
            "total_seconds": total,
            "block_count": int(block_count),
            "task_count": int(spec.task_count),
            "processor_count": int(spec.processor_count),
        },
    )


@register_objective(
    "planted",
    "planted smoke-test objective (known optimum)",
    "score 1 - edge_probability: fires on sparse graphs (edge_probability "
    "<= 0.1); the CI hunt-smoke job uses it to assert the driver walks the "
    "parameter space to a known region",
    threshold=0.9,
)
def _planted(spec: WorkloadSpec) -> ObjectiveResult:
    from repro.workloads.generator import generate_workload

    # Generating keeps the objective honest: a survivor must be a real
    # workload (invalid parameter corners become score-0 dead ends exactly
    # as they do for the pipeline-backed objectives).
    workload = generate_workload(spec)
    score = 1.0 - float(spec.edge_probability)
    return ObjectiveResult(
        score=score,
        evidence={
            "edge_probability": float(spec.edge_probability),
            "edge_count": len(workload.graph.dependences),
        },
    )
