"""Freeze hunted counterexamples into the ``regression/*`` scenario registry.

:func:`freeze_counterexamples` merges the survivors of a ``repro-search/1``
artifact into a ``repro-regression/1`` registry file (by default the
``regression.json`` shipped inside :mod:`repro.scenarios`).  Names are
``regression/<objective>-<fingerprint8>``; entries already present — by name
*or* by structural fingerprint — are skipped, so re-running a hunt never
duplicates a frozen scenario.  Once committed, the frozen entries register
on import and every sweep/conformance gate replays them automatically.
"""

from __future__ import annotations

from pathlib import Path

from repro import jsonio
from repro.errors import ConfigurationError
from repro.scenarios.regression import (
    REGISTRY_PATH,
    REGRESSION_PREFIX,
    REGRESSION_SCHEMA,
    FrozenScenario,
    load_frozen,
)
from repro.search.artifact import SearchArtifact
from repro.search.objectives import objective_info
from repro.workloads.spec import WorkloadSpec

__all__ = ["freeze_counterexamples"]


def freeze_counterexamples(
    artifact: SearchArtifact,
    path: str | Path | None = None,
    *,
    limit: int | None = None,
) -> tuple[FrozenScenario, ...]:
    """Merge the artifact's counterexamples into a regression registry file.

    Returns the entries actually added (skipping any already frozen by name
    or fingerprint).  The registry file is rewritten atomically, sorted by
    name, whenever at least one entry is added.
    """
    path = REGISTRY_PATH if path is None else Path(path)
    objective = objective_info(artifact.objective)
    existing = load_frozen(path)
    known_names = {entry.name for entry in existing}
    known_fingerprints = {entry.fingerprint for entry in existing}

    added: list[FrozenScenario] = []
    for entry in artifact.counterexamples[: limit if limit is not None else None]:
        fingerprint = str(entry.get("fingerprint", ""))
        if not fingerprint:
            raise ConfigurationError(
                "Counterexample entry has no fingerprint; re-run the hunt with "
                "a current driver"
            )
        short = fingerprint[:8]
        name = f"{REGRESSION_PREFIX}{artifact.objective}-{short}"
        if name in known_names or fingerprint in known_fingerprints:
            continue
        spec = WorkloadSpec.from_dict(entry["spec"]).with_updates(
            label=f"regression-{artifact.objective}-{short}"
        )
        frozen = FrozenScenario(
            name=name,
            objective=artifact.objective,
            title=f"hunted: {objective.title}",
            score=float(entry.get("score", 0.0)),
            threshold=float(entry.get("threshold", artifact.threshold)),
            fingerprint=fingerprint,
            spec=spec,
            evidence=dict(entry.get("evidence") or {}),
            provenance=dict(entry.get("provenance") or {}),
        )
        known_names.add(name)
        known_fingerprints.add(fingerprint)
        added.append(frozen)

    if added:
        merged = sorted(list(existing) + added, key=lambda entry: entry.name)
        payload = {
            "schema": REGRESSION_SCHEMA,
            "scenarios": [entry.to_dict() for entry in merged],
        }
        try:
            jsonio.write_json_atomic(path, payload)
        except OSError as error:
            raise ConfigurationError(
                f"Cannot write regression registry to {path}: {error}"
            ) from None
    return tuple(added)
