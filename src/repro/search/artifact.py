"""The versioned ``repro-search/1`` artifact of one hunt invocation.

Mirrors the other artifact layers (``repro-bench/1``, ``repro-sweep/1``):
a strict-JSON, atomically written record of everything the hunt did —
objective, budget, the full seed chain, one history entry per objective
evaluation (phase, score, mutation ops, acceptance), and every surviving
counterexample with its minimisation trace and lineage.

Determinism contract: two hunts with the same objective, budget and seed
produce identical :meth:`SearchArtifact.canonical_dict` payloads — the
canonical form excludes only the wall-clock fields (``created``,
``seconds``) and the host ``environment`` fingerprint.  The CI hunt-smoke
job runs the driver twice and diffs the canonical forms.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Mapping

from repro import jsonio
from repro.bench.artifact import environment_fingerprint
from repro.errors import ConfigurationError
from repro.schemas import SEARCH_SCHEMA

__all__ = ["SEARCH_SCHEMA", "SearchArtifact"]


@dataclass(slots=True)
class SearchArtifact:
    """One serialisable hunt invocation (schema ``repro-search/1``)."""

    objective: str
    #: Budget name (``tiny``/``quick``/``full``) or ``"custom"``.
    budget: str
    #: Root seed of the hunt's seed chain.
    seed: int
    #: Firing threshold the hunt ran with.
    threshold: float
    #: UTC creation time, ISO-8601.
    created: str
    #: Options echo (evaluation budget, SA fraction, survivor cap, ...).
    options: dict[str, Any] = field(default_factory=dict)
    #: Derived sub-seeds, by consumer (``init``/``sa``/``ga``).
    seed_chain: dict[str, Any] = field(default_factory=dict)
    #: One record per objective evaluation, in order.
    history: list[dict[str, Any]] = field(default_factory=list)
    #: Surviving counterexamples (minimised, deduplicated, score-sorted).
    counterexamples: list[dict[str, Any]] = field(default_factory=list)
    #: Objective evaluations spent, by phase (search vs minimisation).
    evaluations: dict[str, int] = field(default_factory=dict)
    best_score: float = 0.0
    #: Wall-clock seconds of the whole hunt (excluded from canonical form).
    seconds: float = 0.0
    environment: dict[str, Any] = field(default_factory=environment_fingerprint)
    schema: str = SEARCH_SCHEMA

    @classmethod
    def now(cls, **kwargs: Any) -> "SearchArtifact":
        """Artifact stamped with the current UTC time."""
        created = datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ")
        return cls(created=created, **kwargs)

    @property
    def found(self) -> bool:
        """``True`` when the hunt surfaced at least one counterexample."""
        return bool(self.counterexamples)

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": self.schema,
            "objective": self.objective,
            "budget": self.budget,
            "seed": self.seed,
            "threshold": float(self.threshold),
            "created": self.created,
            "options": dict(self.options),
            "seed_chain": dict(self.seed_chain),
            "evaluations": dict(self.evaluations),
            "best_score": float(self.best_score),
            "found": self.found,
            "history": [dict(entry) for entry in self.history],
            "counterexamples": [dict(entry) for entry in self.counterexamples],
            "seconds": float(self.seconds),
            "environment": dict(self.environment),
        }

    def canonical_dict(self) -> dict[str, Any]:
        """The deterministic subset of :meth:`to_dict` (the CI diff target)."""
        data = self.to_dict()
        for volatile in ("created", "seconds", "environment"):
            data.pop(volatile, None)
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SearchArtifact":
        jsonio.check_artifact_schema(data, "repro-search", 1, kind="search artifact")
        schema = data.get("schema", SEARCH_SCHEMA)
        return cls(
            objective=str(data.get("objective", "")),
            budget=str(data.get("budget", "")),
            seed=int(data.get("seed", 0)),
            threshold=float(data.get("threshold", 0.0)),
            created=str(data.get("created", "")),
            options=dict(data.get("options") or {}),
            seed_chain=dict(data.get("seed_chain") or {}),
            history=[dict(entry) for entry in data.get("history") or []],
            counterexamples=[dict(entry) for entry in data.get("counterexamples") or []],
            evaluations={k: int(v) for k, v in (data.get("evaluations") or {}).items()},
            best_score=float(data.get("best_score", 0.0)),
            seconds=float(data.get("seconds", 0.0)),
            environment=dict(data.get("environment") or {}),
            schema=schema,
        )

    def save(self, target: str | Path) -> Path:
        """Write the artifact (atomically, as strict JSON).

        A directory target receives the conventional ``HUNT_<timestamp>.json``
        name; any other target is treated as the exact file path.
        """
        target = Path(target)
        try:
            if target.is_dir() or not target.suffix:
                target.mkdir(parents=True, exist_ok=True)
                stamp = self.created.replace("-", "").replace(":", "")
                target = target / f"HUNT_{stamp}.json"
            else:
                target.parent.mkdir(parents=True, exist_ok=True)
            jsonio.write_json_atomic(target, self.to_dict())
        except OSError as error:
            raise ConfigurationError(
                f"Cannot write search artifact to {target}: {error}"
            ) from None
        return target

    @classmethod
    def load(cls, path: str | Path) -> "SearchArtifact":
        """Read an artifact back from disk."""
        return cls.from_dict(
            jsonio.load_artifact(path, "repro-search", 1, kind="search artifact")
        )

    def render(self) -> str:
        """Hunt summary plus one line per counterexample (what the CLI prints)."""
        spent = sum(self.evaluations.values())
        lines = [
            f"hunt objective={self.objective} budget={self.budget} seed={self.seed}",
            f"  evaluations: {spent} "
            + " ".join(f"{k}={v}" for k, v in sorted(self.evaluations.items())),
            f"  best score: {self.best_score:g} (threshold {self.threshold:g})",
            f"  counterexamples: {len(self.counterexamples)}",
        ]
        for entry in self.counterexamples:
            spec = entry.get("spec") or {}
            lines.append(
                f"    {entry.get('fingerprint', '?')[:8]} score={entry.get('score', 0):g} "
                f"N={spec.get('task_count', '?')} M={spec.get('processor_count', '?')} "
                f"seed={spec.get('seed', '?')} shape={spec.get('shape', '?')}"
            )
        return "\n".join(lines)
