"""Experiment harness regenerating every artefact of the paper (E1–E8)."""

from repro.experiments.campaign import (
    CampaignRun,
    CampaignSummary,
    execute_run,
    experiment_result_dict,
    plan_campaign,
    plan_pipeline_campaign,
    run_campaign,
    run_pipeline_campaign,
)
from repro.experiments.configs import (
    PRESET_NAMES,
    AblationConfig,
    ComparisonConfig,
    ComplexityConfig,
    IdleFractionConfig,
    MultirateConfig,
    Theorem1Config,
    Theorem2Config,
)
from repro.experiments.runner import (
    run_e1_paper_example,
    run_e2_multirate_buffering,
    run_e3_complexity,
    run_e4_theorem1,
    run_e5_theorem2,
    run_e6_baseline_comparison,
    run_e7_ablation,
    run_e8_idle_fraction,
)
from repro.experiments.tables import ExperimentResult, build_table

__all__ = [
    "PRESET_NAMES",
    "AblationConfig",
    "CampaignRun",
    "CampaignSummary",
    "ComparisonConfig",
    "ComplexityConfig",
    "ExperimentResult",
    "IdleFractionConfig",
    "MultirateConfig",
    "Theorem1Config",
    "Theorem2Config",
    "build_table",
    "execute_run",
    "experiment_result_dict",
    "plan_campaign",
    "plan_pipeline_campaign",
    "run_campaign",
    "run_pipeline_campaign",
    "run_e1_paper_example",
    "run_e2_multirate_buffering",
    "run_e3_complexity",
    "run_e4_theorem1",
    "run_e5_theorem2",
    "run_e6_baseline_comparison",
    "run_e7_ablation",
    "run_e8_idle_fraction",
]

ALL_EXPERIMENTS = {
    "E1": run_e1_paper_example,
    "E2": run_e2_multirate_buffering,
    "E3": run_e3_complexity,
    "E4": run_e4_theorem1,
    "E5": run_e5_theorem2,
    "E6": run_e6_baseline_comparison,
    "E7": run_e7_ablation,
    "E8": run_e8_idle_fraction,
}
