"""Experiment configurations (E1–E8).

Every experiment of ``EXPERIMENTS.md`` is parameterised by a small dataclass
with three presets: ``tiny()`` (sub-second — smoke tests and campaign dry
runs), ``quick()`` (seconds — used by the test suite and the default
benchmark run) and ``full()`` (minutes — closer to a paper-grade campaign).
Benchmarks and the campaign runner accept any preset by name through
:meth:`PresetConfig.from_preset`, so the same code regenerates the tables at
every scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.scheduling.heuristic import PlacementPolicy, SchedulerOptions
from repro.workloads.spec import GraphShape, WorkloadSpec

__all__ = [
    "PRESET_NAMES",
    "PresetConfig",
    "preset_cli",
    "MultirateConfig",
    "ComplexityConfig",
    "Theorem1Config",
    "Theorem2Config",
    "ComparisonConfig",
    "AblationConfig",
    "IdleFractionConfig",
]

#: Recognised preset names, in increasing cost order.
PRESET_NAMES = ("tiny", "quick", "full")


class PresetConfig:
    """Mixin resolving a preset name (``tiny``/``quick``/``full``) to a config."""

    @classmethod
    def from_preset(cls, name: str):
        """Build the config for ``name``; raise :class:`ConfigurationError` otherwise."""
        if name not in PRESET_NAMES:
            raise ConfigurationError(
                f"Unknown experiment preset {name!r}; expected one of {PRESET_NAMES}"
            )
        return getattr(cls, name)()


def preset_cli(run, description: str, argv=None) -> int:
    """Shared ``--preset`` CLI glue of the ``benchmarks/bench_e*.py`` entry points.

    ``run`` is the benchmark's ``run(preset) -> ExperimentResult`` function;
    the rendered report goes to stdout and the exit code is non-zero when the
    experiment's verdict is FAIL.
    """
    import argparse

    parser = argparse.ArgumentParser(description=description)
    parser.add_argument("--preset", choices=PRESET_NAMES, default="quick")
    args = parser.parse_args(argv)
    result = run(args.preset)
    print(result.render())
    return 0 if result.passed is not False else 1


@dataclass(frozen=True, slots=True)
class MultirateConfig(PresetConfig):
    """E2 — Figure-1 multi-rate buffering."""

    period_ratios: tuple[int, ...] = (1, 2, 4, 8)
    producer_period: int = 3
    data_size: float = 1.0
    hyper_periods: int = 2

    @classmethod
    def tiny(cls) -> "MultirateConfig":
        return cls(period_ratios=(1, 2), hyper_periods=1)

    @classmethod
    def quick(cls) -> "MultirateConfig":
        return cls()

    @classmethod
    def full(cls) -> "MultirateConfig":
        return cls(period_ratios=(1, 2, 4, 8, 16, 32))


@dataclass(frozen=True, slots=True)
class ComplexityConfig(PresetConfig):
    """E3 — runtime scaling versus ``M · N_blocks``."""

    task_counts: tuple[int, ...] = (50, 100, 200)
    processor_counts: tuple[int, ...] = (2, 4, 8)
    seeds: tuple[int, ...] = (1, 2)
    utilization: float = 0.25
    base_period: int = 40

    @classmethod
    def tiny(cls) -> "ComplexityConfig":
        return cls(task_counts=(10, 14, 18), processor_counts=(2,), seeds=(1,))

    @classmethod
    def quick(cls) -> "ComplexityConfig":
        return cls()

    @classmethod
    def full(cls) -> "ComplexityConfig":
        return cls(
            task_counts=(50, 100, 200, 500, 1000, 2000),
            processor_counts=(2, 4, 8, 16, 32),
            seeds=(1, 2, 3),
        )


@dataclass(frozen=True, slots=True)
class Theorem1Config(PresetConfig):
    """E4 — gain bounds."""

    processor_counts: tuple[int, ...] = (2, 3, 4)
    seeds: tuple[int, ...] = tuple(range(8))
    task_count: int = 24
    utilization: float = 0.3
    shapes: tuple[GraphShape, ...] = (GraphShape.SENSOR_FUSION, GraphShape.PIPELINE)
    #: Placement policy of the initial scheduling heuristic.  The naive
    #: load-spreading policy creates inter-processor communications the
    #: balancer can then suppress, which is the situation of the paper's
    #: worked example.
    initial_policy: PlacementPolicy = PlacementPolicy.LEAST_LOADED

    def scheduler_options(self) -> SchedulerOptions:
        """Initial-scheduler options implied by the config."""
        return SchedulerOptions(policy=self.initial_policy)

    @classmethod
    def tiny(cls) -> "Theorem1Config":
        return cls(
            processor_counts=(2,),
            seeds=(0, 1),
            task_count=10,
            shapes=(GraphShape.PIPELINE,),
        )

    @classmethod
    def quick(cls) -> "Theorem1Config":
        return cls()

    @classmethod
    def full(cls) -> "Theorem1Config":
        return cls(
            processor_counts=(2, 3, 4, 6, 8),
            seeds=tuple(range(50)),
            shapes=tuple(GraphShape),
        )


@dataclass(frozen=True, slots=True)
class Theorem2Config(PresetConfig):
    """E5 — memory-only approximation ratio."""

    processor_counts: tuple[int, ...] = (2, 3, 4)
    block_counts: tuple[int, ...] = (6, 9, 12)
    seeds: tuple[int, ...] = tuple(range(10))
    memory_range: tuple[float, float] = (1.0, 20.0)

    @classmethod
    def tiny(cls) -> "Theorem2Config":
        return cls(processor_counts=(2,), block_counts=(6,), seeds=(0, 1))

    @classmethod
    def quick(cls) -> "Theorem2Config":
        return cls()

    @classmethod
    def full(cls) -> "Theorem2Config":
        return cls(
            processor_counts=(2, 3, 4, 6),
            block_counts=(6, 9, 12, 15),
            seeds=tuple(range(40)),
        )


def _default_comparison_spec() -> WorkloadSpec:
    return WorkloadSpec(
        task_count=28,
        processor_count=4,
        utilization=0.3,
        shape=GraphShape.PIPELINE,
        memory_capacity=float("inf"),
        label="comparison",
    )


@dataclass(frozen=True, slots=True)
class ComparisonConfig(PresetConfig):
    """E6 — proposed heuristic versus baselines."""

    spec: WorkloadSpec = field(default_factory=_default_comparison_spec)
    seeds: tuple[int, ...] = tuple(range(5))
    #: Per-processor memory capacity used to count overflow violations
    #: (expressed as a multiple of the ideal per-processor share).
    capacity_headroom: float = 1.4
    #: Placement policy of the initial scheduling heuristic.
    initial_policy: PlacementPolicy = PlacementPolicy.LEAST_LOADED

    def scheduler_options(self) -> SchedulerOptions:
        """Initial-scheduler options implied by the config."""
        return SchedulerOptions(policy=self.initial_policy)

    @classmethod
    def tiny(cls) -> "ComparisonConfig":
        return cls(
            spec=_default_comparison_spec().with_updates(task_count=12),
            seeds=(1,),
        )

    @classmethod
    def quick(cls) -> "ComparisonConfig":
        return cls()

    @classmethod
    def full(cls) -> "ComparisonConfig":
        return cls(seeds=tuple(range(20)))


@dataclass(frozen=True, slots=True)
class AblationConfig(PresetConfig):
    """E7 — cost-policy and rule ablations."""

    spec: WorkloadSpec = field(default_factory=_default_comparison_spec)
    seeds: tuple[int, ...] = tuple(range(5))
    #: Placement policy of the initial scheduling heuristic.
    initial_policy: PlacementPolicy = PlacementPolicy.LEAST_LOADED

    def scheduler_options(self) -> SchedulerOptions:
        """Initial-scheduler options implied by the config."""
        return SchedulerOptions(policy=self.initial_policy)

    @classmethod
    def tiny(cls) -> "AblationConfig":
        return cls(
            spec=_default_comparison_spec().with_updates(task_count=12),
            seeds=(1,),
        )

    @classmethod
    def quick(cls) -> "AblationConfig":
        return cls()

    @classmethod
    def full(cls) -> "AblationConfig":
        return cls(seeds=tuple(range(20)))


@dataclass(frozen=True, slots=True)
class IdleFractionConfig(PresetConfig):
    """E8 — processor idle fraction before/after balancing."""

    utilizations: tuple[float, ...] = (0.15, 0.3, 0.45)
    processor_count: int = 4
    task_count: int = 28
    seeds: tuple[int, ...] = tuple(range(5))
    shape: GraphShape = GraphShape.PIPELINE
    #: Placement policy of the initial scheduling heuristic.
    initial_policy: PlacementPolicy = PlacementPolicy.LEAST_LOADED

    def scheduler_options(self) -> SchedulerOptions:
        """Initial-scheduler options implied by the config."""
        return SchedulerOptions(policy=self.initial_policy)

    @classmethod
    def tiny(cls) -> "IdleFractionConfig":
        return cls(utilizations=(0.3,), task_count=12, seeds=(0,))

    @classmethod
    def quick(cls) -> "IdleFractionConfig":
        return cls()

    @classmethod
    def full(cls) -> "IdleFractionConfig":
        return cls(utilizations=(0.1, 0.2, 0.3, 0.4, 0.5, 0.6), seeds=tuple(range(20)))
