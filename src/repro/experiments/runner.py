"""Experiment runners E1–E8.

Each function regenerates one artefact of the paper (or one analysis claim)
and returns an :class:`~repro.experiments.tables.ExperimentResult` whose
table is what the corresponding benchmark prints and whose ``data`` is what
the test suite asserts against.  ``EXPERIMENTS.md`` records the paper-vs-
measured comparison produced by these runners.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.approximation import approximation_campaign, measure_greedy_ratio
from repro.analysis.bounds import check_theorem1, theorem1_campaign
from repro.analysis.complexity import fit_complexity, measure_runtime
from repro.api.balancers import BalanceOutcome, balance
from repro.core.load_balancer import LoadBalancer
from repro.epsilon import EPSILON
from repro.experiments.configs import (
    AblationConfig,
    ComparisonConfig,
    ComplexityConfig,
    IdleFractionConfig,
    MultirateConfig,
    Theorem1Config,
    Theorem2Config,
)
from repro.experiments.tables import ExperimentResult, build_table
from repro.metrics.balance import load_imbalance
from repro.metrics.memory import max_memory, memory_imbalance
from repro.model.architecture import Architecture, CommunicationModel
from repro.model.graph import TaskGraph
from repro.scheduling.communications import synthesize_communications
from repro.scheduling.feasibility import check_schedule
from repro.scheduling.schedule import Schedule, ScheduledInstance
from repro.simulation.engine import SimulationOptions, simulate
from repro.workloads.generator import scheduled_workloads
from repro.workloads.paper_example import (
    PAPER_EXPECTATIONS,
    paper_initial_schedule,
)

__all__ = [
    "run_e1_paper_example",
    "run_e2_multirate_buffering",
    "run_e3_complexity",
    "run_e4_theorem1",
    "run_e5_theorem2",
    "run_e6_baseline_comparison",
    "run_e7_ablation",
    "run_e8_idle_fraction",
]


# ----------------------------------------------------------------------
# E1 — the worked example (Figures 2-4, section 3.3)
# ----------------------------------------------------------------------
def run_e1_paper_example() -> ExperimentResult:
    """Reproduce the worked example exactly (decisions, makespan, memory)."""
    schedule = paper_initial_schedule()
    expectations = PAPER_EXPECTATIONS

    lex = balance(schedule, "paper", policy="lexicographic").raw
    ratio = balance(schedule, "paper", policy="ratio").raw

    decisions = [(d.block.label, d.chosen_processor) for d in lex.decisions]
    expected_decisions = [tuple(step) for step in expectations["decisions"]]
    memory_after = {k: float(v) for k, v in lex.memory_after.items()}

    checks = {
        "initial makespan": (expectations["makespan_before"], schedule.makespan),
        "initial memory": (expectations["memory_before"], schedule.memory_by_processor()),
        "block count": (expectations["block_count"], len(lex.blocks)),
        "decisions": (expected_decisions, decisions),
        "balanced makespan": (expectations["makespan_after"], lex.makespan_after),
        "balanced memory": (expectations["memory_after"], memory_after),
    }
    passed = all(paper == measured for paper, measured in checks.values())

    rows = [
        [name, str(paper), str(measured), "yes" if paper == measured else "NO"]
        for name, (paper, measured) in checks.items()
    ]
    rows.append(
        [
            "ratio-policy makespan (as-written eq. 5)",
            str(expectations["makespan_after"]),
            f"{ratio.makespan_after:g}",
            "n/a",
        ]
    )
    table = build_table(["quantity", "paper", "measured", "match"], rows)
    notes = [
        "LEXICOGRAPHIC policy reproduces every decision of section 3.3; the literal "
        "eq.-(5) ratio policy diverges at step 3 (see DESIGN.md §2, A1/B1).",
        f"ratio-policy memory after balancing: {ratio.memory_after}",
    ]
    return ExperimentResult(
        experiment="E1",
        title="Worked example (Figures 2-4, section 3.3)",
        paper_claim="Total execution time 15 -> 14; memory [16,4,4] -> [10,6,8] on 3 processors",
        table=table,
        data={
            "decisions": decisions,
            "makespan_after": lex.makespan_after,
            "memory_after": memory_after,
            "ratio_makespan_after": ratio.makespan_after,
        },
        passed=passed,
        notes=notes,
    )


# ----------------------------------------------------------------------
# E2 — Figure 1: multi-rate buffering
# ----------------------------------------------------------------------
def _two_task_schedule(ratio: int, config: MultirateConfig) -> Schedule:
    """Producer on P1, n-times-slower consumer on P2 (the Figure-1 situation)."""
    graph = TaskGraph(name=f"figure1-ratio-{ratio}")
    producer_period = config.producer_period
    graph.create_task(
        "prod", period=producer_period, wcet=1, memory=1, data_size=config.data_size
    )
    graph.create_task("cons", period=producer_period * ratio, wcet=1, memory=1)
    graph.connect("prod", "cons")
    architecture = Architecture.homogeneous(2, comm=CommunicationModel(latency=1.0))
    instances = []
    for index in range(ratio):
        instances.append(
            ScheduledInstance("prod", index, "P1", float(index * producer_period), 1.0, 1.0)
        )
    consumer_start = float((ratio - 1) * producer_period + 1 + 1)
    instances.append(ScheduledInstance("cons", 0, "P2", consumer_start, 1.0, 1.0))
    schedule = Schedule(graph, architecture, instances, ())
    return schedule.with_instances(schedule.instances, synthesize_communications(schedule))


def run_e2_multirate_buffering(config: MultirateConfig | None = None) -> ExperimentResult:
    """Measure consumer-side buffering for period ratios n (Figure 1 uses n=4)."""
    config = config or MultirateConfig()
    rows = []
    all_match = True
    peaks = {}
    for ratio in config.period_ratios:
        schedule = _two_task_schedule(ratio, config)
        result = simulate(
            schedule, SimulationOptions(hyper_periods=config.hyper_periods)
        )
        peak = result.memory.peak_buffer("P2")
        expected = ratio * config.data_size
        match = abs(peak - expected) < EPSILON and result.is_clean
        all_match = all_match and match
        peaks[ratio] = peak
        rows.append([ratio, expected, peak, len(result.violations), "yes" if match else "NO"])
    table = build_table(
        ["period ratio n", "expected buffer (n·size)", "measured peak buffer", "violations", "match"],
        rows,
    )
    return ExperimentResult(
        experiment="E2",
        title="Multi-rate data transfer buffering (Figure 1)",
        paper_claim="A consumer n times slower must buffer the n data items of its producer; "
        "memory reuse is impossible (n=4 in Figure 1)",
        table=table,
        data={"peaks": peaks},
        passed=all_match,
    )


# ----------------------------------------------------------------------
# E3 — complexity study (section 4)
# ----------------------------------------------------------------------
def run_e3_complexity(config: ComplexityConfig | None = None) -> ExperimentResult:
    """Measure the heuristic's runtime and fit it against the M·N_blocks model."""
    from repro.workloads.spec import WorkloadSpec

    config = config or ComplexityConfig()
    samples = []
    rows = []
    evaluation_counts_match = True
    for task_count in config.task_counts:
        for processor_count in config.processor_counts:
            for seed in config.seeds:
                spec = WorkloadSpec(
                    task_count=task_count,
                    processor_count=processor_count,
                    utilization=config.utilization,
                    base_period=config.base_period,
                    seed=seed,
                    label=f"complexity-N{task_count}-M{processor_count}-s{seed}",
                )
                pairs = list(scheduled_workloads(spec, [seed]))
                if not pairs:
                    continue
                _workload, schedule = pairs[0]
                sample = measure_runtime(schedule, label=spec.label)
                result = LoadBalancer(schedule).run()
                expected_evaluations = processor_count * len(result.blocks)
                evaluation_counts_match = (
                    evaluation_counts_match and result.evaluations == expected_evaluations
                )
                samples.append(sample)
                rows.append(
                    [
                        task_count,
                        processor_count,
                        sample.instances,
                        sample.blocks,
                        sample.work,
                        result.evaluations,
                        f"{sample.seconds * 1000:.1f}",
                    ]
                )
    fit = fit_complexity(samples)
    table = build_table(
        [
            "tasks N",
            "procs M",
            "instances",
            "blocks",
            "M·N_blocks",
            "λ evaluations",
            "runtime (ms)",
        ],
        rows,
    )
    notes = [
        "The paper's complexity claim counts cost-function evaluations: the heuristic "
        "performs exactly M·N_blocks of them (column 'λ evaluations').",
        f"wall-clock linear fit: runtime ≈ {fit.slope * 1000:.4f} ms per unit of M·N_blocks "
        f"+ {fit.intercept * 1000:.2f} ms, R² = {fit.r_squared:.3f} (bookkeeping around the "
        "evaluations — pattern checks, schedule rebuild — adds super-linear terms at scale).",
    ]
    return ExperimentResult(
        experiment="E3",
        title="Complexity study: runtime vs M·N_blocks (section 4)",
        paper_claim="The heuristic runs in O(M·N_blocks) and is fast because N_blocks is small",
        table=table,
        data={"fit": fit, "samples": samples, "evaluations_match": evaluation_counts_match},
        passed=evaluation_counts_match,
        notes=notes,
    )


# ----------------------------------------------------------------------
# E4 — Theorem 1: gain bounds
# ----------------------------------------------------------------------
def run_e4_theorem1(config: Theorem1Config | None = None) -> ExperimentResult:
    """Verify 0 <= G_total <= γ(M-1)! over random workloads."""
    from repro.workloads.spec import WorkloadSpec

    config = config or Theorem1Config()
    rows = []
    lower_bound_holds = True
    campaigns = {}
    excluded_total = 0
    for processor_count in config.processor_counts:
        results = []
        excluded = 0
        for shape in config.shapes:
            spec = WorkloadSpec(
                task_count=config.task_count,
                processor_count=processor_count,
                utilization=config.utilization,
                shape=shape,
                label=f"theorem1-{shape.value}-M{processor_count}",
            )
            for _workload, schedule in scheduled_workloads(
                spec, config.seeds, config.scheduler_options()
            ):
                result = LoadBalancer(schedule).run()
                # Only feasible balanced schedules count: an infeasible one
                # could fake a gain by starting tasks before their data.
                if check_schedule(result.balanced_schedule, check_memory=False).is_feasible:
                    results.append(result)
                else:
                    excluded += 1
        excluded_total += excluded
        campaign = theorem1_campaign(results)
        campaigns[processor_count] = campaign
        lower_bound_holds = lower_bound_holds and campaign.violations_lower == 0
        sample_check = check_theorem1(results[0]) if results else None
        factorial_bound = sample_check.factorial_bound if sample_check else float("nan")
        rows.append(
            [
                processor_count,
                campaign.samples,
                excluded,
                campaign.mean_gain,
                campaign.max_gain,
                factorial_bound,
                campaign.violations_lower,
                campaign.violations_factorial,
                campaign.violations_pair,
            ]
        )
    table = build_table(
        [
            "M",
            "runs",
            "excluded",
            "mean G_total",
            "max G_total",
            "γ(M-1)! bound",
            "viol. lower",
            "viol. factorial",
            "viol. pair-count",
        ],
        rows,
    )
    notes = [
        "The substantive claim of Theorem 1 — the heuristic never increases the total "
        "execution time (lower bound 0 <= G_total) — is what this experiment gates on.",
        "The printed upper bound γ(M-1)! can be exceeded when the initial schedule has "
        "several suppressible communications along its critical path (e.g. a pipeline spread "
        "over the processors); the paper's proof implicitly assumes only one communication "
        "per processor pair matters.  Upper-bound violations are therefore reported as a "
        "reproduction finding, not as a failure (DESIGN.md §2, A5).",
        f"{excluded_total} run(s) excluded because the balanced schedule was not feasible "
        "(the stranded-pinned-consumer limitation, see EXPERIMENTS.md).",
    ]
    return ExperimentResult(
        experiment="E4",
        title="Theorem 1: 0 <= G_total <= γ(M-1)!",
        paper_claim="The heuristic never increases the total execution time and its gain is "
        "bounded by γ times the number of processor pairs",
        table=table,
        data={"campaigns": campaigns, "excluded": excluded_total},
        passed=lower_bound_holds,
        notes=notes,
    )


# ----------------------------------------------------------------------
# E5 — Theorem 2: (2 - 1/M)-approximation
# ----------------------------------------------------------------------
def run_e5_theorem2(config: Theorem2Config | None = None) -> ExperimentResult:
    """Measure the memory-only greedy rule against the exact optimum."""
    config = config or Theorem2Config()
    rows = []
    all_hold = True
    campaigns = {}
    for processor_count in config.processor_counts:
        samples = []
        for block_count in config.block_counts:
            for seed in config.seeds:
                rng = np.random.default_rng(seed * 1000 + block_count * 10 + processor_count)
                memories = [
                    round(float(rng.uniform(*config.memory_range)), 1)
                    for _ in range(block_count)
                ]
                samples.append(measure_greedy_ratio(memories, processor_count))
        campaign = approximation_campaign(samples)
        campaigns[processor_count] = campaign
        all_hold = all_hold and campaign.holds
        rows.append(
            [
                processor_count,
                campaign.samples,
                campaign.mean_ratio,
                campaign.worst_ratio,
                campaign.bound,
                campaign.violations,
            ]
        )
    table = build_table(
        ["M", "instances", "mean ω/ω_opt", "worst ω/ω_opt", "bound 2-1/M", "violations"], rows
    )
    return ExperimentResult(
        experiment="E5",
        title="Theorem 2: the memory-only heuristic is (2 - 1/M)-approximate",
        paper_claim="ω/ω_opt <= 2 - 1/M for the memory-only cost function",
        table=table,
        data={"campaigns": campaigns},
        passed=all_hold,
    )


# ----------------------------------------------------------------------
# E6 — baseline comparison
# ----------------------------------------------------------------------
#: Display name -> (registry key, balancer parameters).  Every compared
#: strategy — the paper heuristic under several cost policies and all the
#: assignment-level baselines — goes through the same ``repro.api`` registry.
_E6_STRATEGIES: tuple[tuple[str, str, dict], ...] = (
    ("initial (no balancing)", "no_balancing", {}),
    ("proposed (ratio)", "paper", {"policy": "ratio"}),
    ("proposed (lexicographic)", "paper", {"policy": "lexicographic"}),
    ("load-only (memory-blind)", "paper", {"policy": "load_only"}),
    ("memory-only (Theorem 2)", "paper", {"policy": "memory_only"}),
    (
        "proposed (conservative)",
        "paper",
        {"policy": "ratio", "protect_unmoved": True, "protect_downstream": True},
    ),
    ("LPT assignment", "greedy_load", {}),
    ("FFD memory packing", "bin_packing", {}),
    ("genetic assignment", "genetic", {"population_size": 30, "generations": 40}),
)


def _strategy_outcomes(schedule: Schedule) -> dict[str, BalanceOutcome]:
    """Run every compared strategy on one initial schedule via the registry."""
    return {
        name: balance(schedule, key, **params) for name, key, params in _E6_STRATEGIES
    }


def run_e6_baseline_comparison(config: ComparisonConfig | None = None) -> ExperimentResult:
    """Compare the proposed heuristic with the baselines over a seed sweep."""
    config = config or ComparisonConfig()
    accumulators: dict[str, dict[str, list[float]]] = {}
    for _workload, schedule in scheduled_workloads(
        config.spec, config.seeds, config.scheduler_options()
    ):
        total_memory = sum(schedule.memory_by_processor().values())
        capacity = config.capacity_headroom * total_memory / len(schedule.architecture)
        for name, outcome in _strategy_outcomes(schedule).items():
            bucket = accumulators.setdefault(
                name,
                {
                    "makespan": [],
                    "gain": [],
                    "max_memory": [],
                    "memory_imbalance": [],
                    "load_imbalance": [],
                    "feasible": [],
                    "overflows": [],
                },
            )
            candidate = outcome.schedule
            usage = candidate.memory_by_processor()
            bucket["makespan"].append(candidate.makespan)
            bucket["gain"].append(schedule.makespan - candidate.makespan)
            bucket["max_memory"].append(max_memory(candidate))
            bucket["memory_imbalance"].append(memory_imbalance(candidate))
            bucket["load_imbalance"].append(load_imbalance(candidate))
            # The outcome's uniform verdict replaces the per-consumer
            # check_schedule re-runs E6 used to do.
            bucket["feasible"].append(1.0 if outcome.feasible else 0.0)
            bucket["overflows"].append(
                float(sum(1 for amount in usage.values() if amount > capacity + EPSILON))
            )

    rows = []
    for name, bucket in accumulators.items():
        rows.append(
            [
                name,
                float(np.mean(bucket["makespan"])),
                float(np.mean(bucket["gain"])),
                float(np.mean(bucket["max_memory"])),
                float(np.mean(bucket["memory_imbalance"])),
                float(np.mean(bucket["load_imbalance"])),
                f"{np.mean(bucket['feasible']):.0%}",
                float(np.mean(bucket["overflows"])),
            ]
        )
    table = build_table(
        [
            "strategy",
            "makespan",
            "gain",
            "max memory ω",
            "mem imbalance",
            "load imbalance",
            "feasible",
            "overflows/run",
        ],
        rows,
    )
    proposed_feasible = (
        float(np.mean(accumulators["proposed (ratio)"]["feasible"])) if accumulators else 0.0
    )
    notes = [
        "Assignment-level baselines (LPT, FFD, genetic) ignore dependence and strict "
        "periodicity and therefore lose feasibility; the proposed heuristic balances while "
        "keeping the constraints.",
        f"capacity for overflow counting = {config.capacity_headroom:.2f} × ideal share",
    ]
    return ExperimentResult(
        experiment="E6",
        title="Proposed heuristic vs baselines",
        paper_claim="Balancing reduces the total execution time and spreads memory, unlike "
        "memory-blind balancing which overflows limited memories",
        table=table,
        data={"metrics": accumulators},
        passed=None if not accumulators else proposed_feasible >= 0.8,
        notes=notes,
    )


# ----------------------------------------------------------------------
# E7 — ablation of the cost policy and rules
# ----------------------------------------------------------------------
def run_e7_ablation(config: AblationConfig | None = None) -> ExperimentResult:
    """Ablate the cost-function interpretation and the acceptance rules."""
    config = config or AblationConfig()
    # Variant name -> parameters of the registered "paper" balancer: the
    # ablation sweep is plain data over the one unified entry point.
    variants: dict[str, dict] = {
        "ratio (default)": {"policy": "ratio"},
        "ratio strict (eq. 5 literal)": {"policy": "ratio_strict"},
        "lexicographic (as exemplified)": {"policy": "lexicographic"},
        "no LCM condition": {"policy": "ratio", "enforce_lcm_condition": False},
        "no steady-state check": {"policy": "ratio", "enforce_steady_state": False},
        "safe mode (protect all)": {
            "policy": "ratio",
            "protect_unmoved": True,
            "protect_downstream": True,
        },
    }
    accumulators: dict[str, dict[str, list[float]]] = {
        name: {"gain": [], "max_memory": [], "moves": [], "feasible": []} for name in variants
    }
    for _workload, schedule in scheduled_workloads(
        config.spec, config.seeds, config.scheduler_options()
    ):
        for name, params in variants.items():
            outcome = balance(schedule, "paper", **params)
            accumulators[name]["gain"].append(outcome.total_gain)
            accumulators[name]["max_memory"].append(outcome.max_memory)
            accumulators[name]["moves"].append(float(outcome.moves))
            accumulators[name]["feasible"].append(1.0 if outcome.feasible else 0.0)

    rows = [
        [
            name,
            float(np.mean(bucket["gain"])),
            float(np.mean(bucket["max_memory"])),
            float(np.mean(bucket["moves"])),
            f"{np.mean(bucket['feasible']):.0%}",
        ]
        for name, bucket in accumulators.items()
    ]
    table = build_table(
        ["variant", "mean gain", "mean max memory", "mean moves", "feasible"], rows
    )
    return ExperimentResult(
        experiment="E7",
        title="Ablation: cost-policy interpretations and acceptance rules",
        paper_claim="(reproduction-specific) eq. (5) vs worked-example behaviour, and the "
        "role of the LCM / steady-state / protection rules",
        table=table,
        data={"metrics": accumulators},
        passed=None,
    )


# ----------------------------------------------------------------------
# E8 — idle fraction
# ----------------------------------------------------------------------
def run_e8_idle_fraction(config: IdleFractionConfig | None = None) -> ExperimentResult:
    """Measure processor idle fractions before and after balancing."""
    from repro.workloads.spec import WorkloadSpec

    config = config or IdleFractionConfig()
    rows = []
    data = {}
    for utilization in config.utilizations:
        spec = WorkloadSpec(
            task_count=config.task_count,
            processor_count=config.processor_count,
            utilization=utilization,
            shape=config.shape,
            label=f"idle-u{utilization:.2f}",
        )
        before_values, after_values, gains = [], [], []
        for _workload, schedule in scheduled_workloads(
            spec, config.seeds, config.scheduler_options()
        ):
            result = LoadBalancer(schedule).run()
            before_values.append(schedule.idle_fraction())
            after_values.append(result.balanced_schedule.idle_fraction())
            gains.append(result.total_gain)
        if not before_values:
            continue
        rows.append(
            [
                f"{utilization:.2f}",
                len(before_values),
                f"{np.mean(before_values):.1%}",
                f"{np.mean(after_values):.1%}",
                float(np.mean(gains)),
            ]
        )
        data[utilization] = {
            "before": float(np.mean(before_values)),
            "after": float(np.mean(after_values)),
        }
    table = build_table(
        ["platform utilisation", "runs", "idle before", "idle after", "mean gain"], rows
    )
    notes = [
        "The paper quotes [3]: 'over 65% of processors are idle at any given time' for "
        "general-purpose systems, and argues periodicity constraints make the figure larger "
        "for real-time systems.",
    ]
    return ExperimentResult(
        experiment="E8",
        title="Processor idle fraction before/after balancing",
        paper_claim="Real-time strictly periodic workloads leave processors idle most of the "
        "time; balancing reduces the makespan without increasing idle waste",
        table=table,
        data=data,
        passed=None,
        notes=notes,
    )
