"""Experiment result container and table helpers.

Every experiment runner returns an :class:`ExperimentResult`: a named,
self-describing object holding the rendered ASCII table (what gets printed by
benchmarks and the CLI), the raw data rows (what tests assert against) and a
pass/fail verdict where the experiment has one (theorem bounds, example
reproduction).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field
from typing import Any

from repro.metrics.report import render_table

__all__ = ["ExperimentResult", "build_table"]


@dataclass(slots=True)
class ExperimentResult:
    """Outcome of one experiment (E1–E8)."""

    #: Short identifier, e.g. ``"E1"``.
    experiment: str
    #: One-line title as used in EXPERIMENTS.md.
    title: str
    #: What the paper claims / shows for this artefact.
    paper_claim: str
    #: Rendered ASCII table of the measured results.
    table: str
    #: Raw data rows backing the table (experiment-specific structure).
    data: dict[str, Any] = field(default_factory=dict)
    #: ``True`` when the experiment has a pass/fail criterion and it passed;
    #: ``None`` for purely descriptive experiments.
    passed: bool | None = None
    #: Free-form observations recorded while running.
    notes: list[str] = field(default_factory=list)

    def render(self) -> str:
        """Full textual report of the experiment."""
        lines = [f"[{self.experiment}] {self.title}", f"paper: {self.paper_claim}"]
        if self.passed is not None:
            lines.append(f"verdict: {'PASS' if self.passed else 'FAIL'}")
        lines.append(self.table)
        if self.notes:
            lines.append("notes:")
            lines.extend(f"  - {note}" for note in self.notes)
        return "\n".join(lines)


def build_table(header: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render rows (any cell type) as an aligned ASCII table."""
    return render_table(list(header), [[_format(cell) for cell in row] for row in rows])


def _format(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.3g}" if abs(cell) < 1000 else f"{cell:.4g}"
    return str(cell)
