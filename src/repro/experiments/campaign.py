"""Parallel, resumable experiment campaigns over the E1–E8 runners.

The per-experiment runners of :mod:`repro.experiments.runner` regenerate one
artefact each; a *campaign* turns them into one orchestrated layer:

* the requested experiments are **planned** into independent runs — seed
  sweeps (E3, E4, E6, E7, …) are split into one run per seed so a workload
  sweep fans out instead of executing serially;
* runs execute on a **process pool** (``jobs`` workers; ``jobs=1`` stays
  in-process for deterministic debugging);
* every run writes a **JSON manifest** under ``<output>/runs/`` carrying the
  rendered table, verdict, notes, wall-time and a JSON-coerced copy of the
  raw data, and the campaign writes a ``campaign.json`` summary artifact;
* a campaign is **resumable**: with ``resume=True`` runs whose manifest
  already records a successful outcome are skipped and reported as cached.

Campaigns also fan out **pipeline runs**: :func:`run_pipeline_campaign`
executes a batch of serialised :class:`~repro.api.PipelineConfig` objects on
the same pool, and each manifest stores the structured
:class:`~repro.api.RunResult` artifact verbatim under ``run_result``.

The manifest schema is documented in ``DESIGN.md`` §4; the CLI front-end is
``repro-lb campaign`` (see ``EXPERIMENTS.md``, "Rerunning a campaign").
"""

from __future__ import annotations

import json
import time
import traceback
from collections.abc import Iterable, Sequence
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, is_dataclass, replace
from dataclasses import asdict as dataclass_asdict
from pathlib import Path

from repro import jsonio
from repro.errors import ConfigurationError
from repro.experiments.configs import (
    AblationConfig,
    ComparisonConfig,
    ComplexityConfig,
    IdleFractionConfig,
    MultirateConfig,
    PRESET_NAMES,
    Theorem1Config,
    Theorem2Config,
)
from repro.experiments.runner import (
    run_e1_paper_example,
    run_e2_multirate_buffering,
    run_e3_complexity,
    run_e4_theorem1,
    run_e5_theorem2,
    run_e6_baseline_comparison,
    run_e7_ablation,
    run_e8_idle_fraction,
)
from repro.experiments.tables import ExperimentResult, build_table
from repro.schemas import MANIFEST_SCHEMA

__all__ = [
    "MANIFEST_SCHEMA",
    "CampaignRun",
    "CampaignSummary",
    "experiment_result_dict",
    "plan_campaign",
    "plan_pipeline_campaign",
    "execute_run",
    "run_campaign",
    "run_pipeline_campaign",
]

#: Experiment id -> (runner, config class or ``None`` for config-less runners).
_EXPERIMENTS: dict[str, tuple[object, type | None]] = {
    "E1": (run_e1_paper_example, None),
    "E2": (run_e2_multirate_buffering, MultirateConfig),
    "E3": (run_e3_complexity, ComplexityConfig),
    "E4": (run_e4_theorem1, Theorem1Config),
    "E5": (run_e5_theorem2, Theorem2Config),
    "E6": (run_e6_baseline_comparison, ComparisonConfig),
    "E7": (run_e7_ablation, AblationConfig),
    "E8": (run_e8_idle_fraction, IdleFractionConfig),
}


@dataclass(frozen=True, slots=True)
class CampaignRun:
    """One independently executable unit of a campaign."""

    run_id: str
    experiment: str
    preset: str
    #: Seed subset this run covers (``None`` keeps the preset's own seeds,
    #: for experiments without a seed sweep or with seed splitting disabled).
    seeds: tuple[int, ...] | None = None
    #: Serialised :class:`~repro.api.PipelineConfig` for pipeline runs
    #: (``None`` for classic experiment runs).  Kept as a plain dict so the
    #: run pickles cheaply across the process pool.
    pipeline: dict | None = None


def _build_config(experiment: str, preset: str, seeds: tuple[int, ...] | None):
    """Config object of one run (``None`` for config-less experiments)."""
    try:
        _runner, config_cls = _EXPERIMENTS[experiment]
    except KeyError:
        raise ConfigurationError(
            f"Unknown experiment {experiment!r}; expected one of {sorted(_EXPERIMENTS)}"
        ) from None
    if config_cls is None:
        return None
    config = config_cls.from_preset(preset)
    if seeds is not None:
        config = replace(config, seeds=tuple(seeds))
    return config


def plan_campaign(
    experiments: Iterable[str], preset: str = "quick", *, split_seeds: bool = True
) -> tuple[CampaignRun, ...]:
    """Expand experiment names into independent runs.

    Seed sweeps are split into one run per seed (the fan-out unit of the
    process pool); experiments without a ``seeds`` axis map to a single run.
    """
    if preset not in PRESET_NAMES:
        raise ConfigurationError(
            f"Unknown campaign preset {preset!r}; expected one of {PRESET_NAMES}"
        )
    runs: list[CampaignRun] = []
    for name in experiments:
        config = _build_config(name, preset, None)
        seeds = getattr(config, "seeds", None) if split_seeds else None
        if seeds:
            runs.extend(
                CampaignRun(f"{name}-{preset}-s{seed}", name, preset, (int(seed),))
                for seed in seeds
            )
        else:
            runs.append(CampaignRun(f"{name}-{preset}", name, preset, None))
    return tuple(runs)


def _jsonable(value):
    """Best-effort coercion of experiment data into JSON-compatible values."""
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return float(value)
    if is_dataclass(value) and not isinstance(value, type):
        return _jsonable(dataclass_asdict(value))
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_jsonable(item) for item in value]
    # numpy scalars expose item(); anything else degrades to its repr.
    item = getattr(value, "item", None)
    if callable(item):
        try:
            return _jsonable(item())
        except (TypeError, ValueError):
            pass
    return repr(value)


def experiment_result_dict(result: ExperimentResult) -> dict:
    """JSON-safe form of an :class:`ExperimentResult` (manifest / ``--json``)."""
    return {
        "experiment": result.experiment,
        "title": result.title,
        "paper_claim": result.paper_claim,
        "passed": result.passed,
        "table": result.table,
        "notes": list(result.notes),
        "data": _jsonable(result.data),
    }


def execute_run(run: CampaignRun) -> dict:
    """Execute one run and return its manifest dictionary (never raises)."""
    started = time.perf_counter()
    manifest = {
        "schema": MANIFEST_SCHEMA,
        "run_id": run.run_id,
        "experiment": run.experiment,
        "preset": run.preset,
        "seeds": list(run.seeds) if run.seeds is not None else None,
    }
    try:
        if run.pipeline is not None:
            from repro.api import Pipeline, PipelineConfig

            config = PipelineConfig.from_dict(run.pipeline)
            result = Pipeline(config).run()
            # The structured artifact is stored verbatim: `run_result` is
            # exactly `RunResult.to_dict()`, round-trippable through
            # `RunResult.from_dict`.
            manifest.update(
                status="ok",
                title=config.label or run.run_id,
                passed=result.feasible,
                run_result=result.to_dict(),
            )
        else:
            runner, _config_cls = _EXPERIMENTS[run.experiment]
            config = _build_config(run.experiment, run.preset, run.seeds)
            result = runner(config) if config is not None else runner()
            manifest.update(status="ok", **experiment_result_dict(result))
    except Exception as error:  # noqa: BLE001 - a failed run must not kill the pool
        manifest.update(
            status="failed",
            error=f"{type(error).__name__}: {error}",
            traceback=traceback.format_exc(),
            passed=False,
        )
    manifest["seconds"] = time.perf_counter() - started
    return manifest


def _execute_payload(payload: dict) -> dict:
    """Pickle-friendly pool entry point (reconstructs the run from primitives)."""
    seeds = payload["seeds"]
    run = CampaignRun(
        run_id=payload["run_id"],
        experiment=payload["experiment"],
        preset=payload["preset"],
        seeds=tuple(seeds) if seeds is not None else None,
        pipeline=payload.get("pipeline"),
    )
    return execute_run(run)


@dataclass(slots=True)
class CampaignSummary:
    """Outcome of one campaign: per-run records plus the summary artifact."""

    directory: Path
    preset: str
    records: list[dict] = field(default_factory=list)
    seconds: float = 0.0

    @property
    def ok(self) -> bool:
        """``True`` when no run failed (a ``passed=False`` verdict also fails)."""
        return all(
            record["status"] in ("ok", "cached") and record.get("passed") is not False
            for record in self.records
        )

    @property
    def failures(self) -> list[dict]:
        """Records of the runs that failed or whose experiment verdict is FAIL."""
        return [
            record
            for record in self.records
            if record["status"] == "failed" or record.get("passed") is False
        ]

    @property
    def summary_path(self) -> Path:
        """Location of the ``campaign.json`` artifact."""
        return self.directory / "campaign.json"

    def render(self) -> str:
        """Aligned per-run status table (what the CLI prints)."""
        rows = [
            [
                record["run_id"],
                record["experiment"],
                record["status"],
                "n/a" if record.get("passed") is None else str(record.get("passed")),
                f"{record.get('seconds', 0.0):.2f}",
            ]
            for record in self.records
        ]
        return build_table(["run", "experiment", "status", "passed", "seconds"], rows)


def run_campaign(
    experiments: Sequence[str],
    preset: str = "quick",
    *,
    output_dir: str | Path = "campaign-results",
    jobs: int | None = None,
    resume: bool = False,
    split_seeds: bool = True,
) -> CampaignSummary:
    """Plan, execute (in parallel) and persist a campaign.

    Parameters
    ----------
    experiments:
        Experiment ids (``"E1"``..``"E8"``), in execution order.
    preset:
        Config preset every run uses (``tiny``/``quick``/``full``).
    output_dir:
        Directory receiving ``runs/<run_id>.json`` manifests and the
        ``campaign.json`` summary.
    jobs:
        Process-pool width; ``None`` lets the pool pick, ``1`` executes
        inline (no subprocesses).
    resume:
        Skip runs whose manifest already records a successful outcome.
    split_seeds:
        Fan seed sweeps out into one run per seed (the default).
    """
    started = time.perf_counter()
    runs = plan_campaign(experiments, preset, split_seeds=split_seeds)
    summary = _execute_campaign(runs, preset, output_dir=output_dir, jobs=jobs, resume=resume)
    summary.seconds = time.perf_counter() - started
    _write_summary(
        summary, {"experiments": list(experiments), "split_seeds": split_seeds}
    )
    return summary


def plan_pipeline_campaign(
    configs: Sequence[object], *, label: str = "pipeline"
) -> tuple[CampaignRun, ...]:
    """Expand serialisable pipeline configs into independent campaign runs.

    Each config may be a :class:`~repro.api.PipelineConfig` or its dict form;
    run ids combine the batch index with the config label so a batch with
    repeated labels stays unambiguous.  Identical configs — equal
    :meth:`~repro.api.PipelineConfig.fingerprint` — collapse to the first
    occurrence: a pipeline run is a pure function of its config, so a batch
    that repeats a config (scenario grids with overlapping cells, retry
    scripts concatenating lists) would only burn pool slots re-deriving the
    same manifest.
    """
    from repro.api import PipelineConfig

    runs: list[CampaignRun] = []
    seen: set[str] = set()
    for index, config in enumerate(configs):
        if not isinstance(config, PipelineConfig):
            config = PipelineConfig.from_dict(config)
        fingerprint = config.fingerprint()
        if fingerprint in seen:
            continue
        seen.add(fingerprint)
        raw_name = config.label or config.balance.balancer
        # Run ids become manifest filenames: keep them filesystem-safe
        # whatever the config label contains.
        name = "".join(c if c.isalnum() or c in "-_." else "-" for c in raw_name)
        runs.append(
            CampaignRun(
                run_id=f"{label}-{index:03d}-{name}",
                experiment="pipeline",
                preset=label,
                seeds=None,
                pipeline=config.to_dict(),
            )
        )
    return tuple(runs)


def run_pipeline_campaign(
    configs: Sequence[object],
    *,
    output_dir: str | Path = "campaign-results",
    jobs: int | None = None,
    resume: bool = False,
    label: str = "pipeline",
) -> CampaignSummary:
    """Fan a batch of pipeline configs out over the campaign pool.

    Every manifest stores the structured :class:`~repro.api.RunResult`
    verbatim under ``run_result`` (schema ``repro-run/1``), so downstream
    tooling reads the same artifact the ``repro-lb run --json`` flag emits.
    """
    started = time.perf_counter()
    runs = plan_pipeline_campaign(configs, label=label)
    summary = _execute_campaign(runs, label, output_dir=output_dir, jobs=jobs, resume=resume)
    summary.seconds = time.perf_counter() - started
    _write_summary(summary, {"pipelines": len(runs)})
    return summary


def _execute_campaign(
    runs: Sequence[CampaignRun],
    preset: str,
    *,
    output_dir: str | Path,
    jobs: int | None,
    resume: bool,
) -> CampaignSummary:
    """Shared campaign body: resume filtering, pool execution, persistence."""
    if jobs is not None and jobs < 1:
        raise ConfigurationError(f"jobs must be >= 1 (got {jobs}); use 1 to run inline")
    directory = Path(output_dir)
    runs_dir = directory / "runs"
    runs_dir.mkdir(parents=True, exist_ok=True)

    summary = CampaignSummary(directory=directory, preset=preset)
    pending: list[CampaignRun] = []
    for run in runs:
        manifest_path = runs_dir / f"{run.run_id}.json"
        cached = None
        if resume and manifest_path.exists():
            try:
                cached = json.loads(manifest_path.read_text())
            except (OSError, json.JSONDecodeError):
                cached = None
        # Only a successful outcome is reusable: a run that completed with a
        # FAIL verdict (passed False) must re-execute on resume, otherwise a
        # fixed experiment would keep reporting the stale failure forever.
        if (
            cached is not None
            and cached.get("status") == "ok"
            and cached.get("passed") is not False
        ):
            summary.records.append(
                {
                    "run_id": run.run_id,
                    "experiment": run.experiment,
                    "status": "cached",
                    "passed": cached.get("passed"),
                    "seconds": 0.0,
                    "manifest": str(manifest_path),
                }
            )
        else:
            pending.append(run)

    payloads = [
        {
            "run_id": run.run_id,
            "experiment": run.experiment,
            "preset": run.preset,
            "seeds": list(run.seeds) if run.seeds is not None else None,
            "pipeline": run.pipeline,
        }
        for run in pending
    ]
    if jobs == 1 or not payloads:
        manifests = [_execute_payload(payload) for payload in payloads]
    else:
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            manifests = list(pool.map(_execute_payload, payloads))

    for run, manifest in zip(pending, manifests, strict=True):
        manifest_path = runs_dir / f"{run.run_id}.json"
        # Atomic + strict: a worker killed mid-write must never leave a
        # truncated manifest behind (it would poison --resume), and a manifest
        # with non-finite metrics must stay parseable by standard JSON readers.
        jsonio.write_json_atomic(manifest_path, manifest)
        summary.records.append(
            {
                "run_id": run.run_id,
                "experiment": run.experiment,
                "status": manifest["status"],
                "passed": manifest.get("passed"),
                "seconds": manifest["seconds"],
                "manifest": str(manifest_path),
            }
        )

    # Keep the records in plan order so re-runs and resumes render identically.
    order = {run.run_id: index for index, run in enumerate(runs)}
    summary.records.sort(key=lambda record: order[record["run_id"]])
    return summary


def _write_summary(summary: CampaignSummary, extra: dict) -> None:
    """Persist the ``campaign.json`` artifact (atomically, as strict JSON)."""
    jsonio.write_json_atomic(
        summary.summary_path,
        {
            "schema": MANIFEST_SCHEMA,
            "preset": summary.preset,
            **extra,
            "runs": summary.records,
            "seconds": summary.seconds,
            "ok": summary.ok,
        },
    )
