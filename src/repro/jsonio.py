"""Strict JSON emission and atomic artifact writes.

Every artifact this project persists (``repro-run/1`` results, campaign
manifests, ``repro-bench/1`` baselines, ``repro-sweep/1`` sweeps) must be
readable by *standard* JSON parsers and must never be observed half-written.
Two historical bugs motivated centralising that here:

* ``json.dumps`` defaults to ``allow_nan=True``, so an infeasible run whose
  metrics carry ``float("inf")`` / ``float("nan")`` silently wrote the
  non-standard ``Infinity`` / ``NaN`` tokens — valid for Python's own
  ``json.loads`` but rejected by strict parsers (``jq``, browsers, most other
  languages).  :func:`dumps` sanitises non-finite floats to ``null`` first and
  passes ``allow_nan=False`` so any non-finite value that escapes the
  sanitiser fails loudly instead of corrupting the artifact.  Verdicts are
  never encoded *as* the non-finite number — artifacts carry explicit fields
  (``feasible``, ``status``, ...) next to the nulled metric.
* ``Path.write_text`` is not atomic: a campaign worker killed mid-write left
  a truncated manifest that broke ``--resume``.  :func:`write_text_atomic`
  writes to a temporary file in the same directory and ``os.replace``\\ s it
  into place, so readers only ever observe the old or the new content.
"""

from __future__ import annotations

import json
import math
import os
import tempfile
from pathlib import Path
from typing import Any

from repro.errors import ArtifactError, ConfigurationError

__all__ = [
    "sanitize",
    "dumps",
    "read_json",
    "load_json_path",
    "parse_schema_tag",
    "check_artifact_schema",
    "load_artifact",
    "write_text_atomic",
    "write_json_atomic",
]


def sanitize(value: Any) -> Any:
    """Copy of ``value`` with every non-finite float replaced by ``None``.

    Recurses through dicts, lists and tuples; every other type is returned
    unchanged (``json.dumps`` rejects what it cannot encode).
    """
    if isinstance(value, float):
        return value if math.isfinite(value) else None
    if isinstance(value, dict):
        return {key: sanitize(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [sanitize(item) for item in value]
    return value


def dumps(payload: Any, *, indent: int | None = 2, sort_keys: bool = True) -> str:
    """Serialise ``payload`` as strict JSON (non-finite floats become ``null``).

    ``indent=None`` selects the canonical single-line form with compact
    separators — the byte representation config fingerprints and the service
    result cache hash and store.
    """
    separators = (",", ":") if indent is None else None
    return json.dumps(
        sanitize(payload),
        indent=indent,
        sort_keys=sort_keys,
        allow_nan=False,
        separators=separators,
    )


def read_json(path: str | Path, *, kind: str = "JSON file") -> Any:
    """Read ``path`` as JSON, mapping every failure to a clean error.

    Unreadable files and malformed JSON both raise
    :class:`~repro.errors.ConfigurationError` naming the offending path (and,
    for parse errors, the line/column), so CLI verbs and artifact loaders
    exit cleanly instead of dumping a ``json`` traceback at the user.
    ``kind`` labels the payload in the message (``"pipeline config"``,
    ``"bench artifact"``, ...).
    """
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as error:
        raise ConfigurationError(f"Cannot read {kind} {path}: {error}") from None
    try:
        return json.loads(text)
    except json.JSONDecodeError as error:
        raise ConfigurationError(f"{kind} {path} is not valid JSON: {error}") from None


def load_json_path(path: str | Path, *, kind: str = "JSON file") -> dict[str, Any]:
    """Read ``path`` as a JSON *object*, mapping every failure to a clean error.

    The shared front door of every artifact loader and CLI ``--config``
    reader: unreadable files, malformed JSON and a payload that is not a JSON
    object all raise :class:`~repro.errors.ConfigurationError` naming the
    offending path, so each verb exits 2 with one consistent message instead
    of re-implementing the check (the pre-consolidation copies drifted).
    Every versioned artifact this project reads — pipeline configs, bench /
    sweep / search artifacts, the regression registry — is a JSON object by
    schema, so the object check lives here, next to the parse.
    """
    data = read_json(path, kind=kind)
    if not isinstance(data, dict):
        raise ConfigurationError(
            f"{kind} {Path(path)} must be a JSON object, got {type(data).__name__}"
        )
    return data


def parse_schema_tag(tag: Any) -> tuple[str, int]:
    """Split a ``repro-<family>/<version>`` schema tag into its parts.

    Raises
    ------
    ArtifactError
        When the tag is not a string of that exact shape.
    """
    if isinstance(tag, str):
        family, sep, version = tag.partition("/")
        if sep and family and version.isdigit():
            return family, int(version)
    raise ArtifactError(
        f"Malformed schema tag {tag!r}; expected '<family>/<version>' "
        "(e.g. 'repro-bench/1')",
        schema=tag if isinstance(tag, str) else None,
    )


def check_artifact_schema(
    data: Any,
    family: str,
    max_version: int,
    *,
    kind: str | None = None,
    path: str | Path | None = None,
) -> int:
    """Validate the ``schema`` header of an artifact payload; return its version.

    The one schema check every versioned-artifact loader shares: the payload
    must be a JSON object whose ``schema`` tag belongs to ``family`` at a
    version this build reads (``1 .. max_version``).  A missing tag defaults
    to ``family/1`` — the convention every artifact writer has followed since
    its first version.  Failures raise :class:`~repro.errors.ArtifactError`
    (a :class:`ConfigurationError`), naming ``kind`` and, when known, the
    offending ``path``.
    """
    kind = kind or f"{family} artifact"
    where = f" in {Path(path)}" if path is not None else ""
    if not isinstance(data, dict):
        raise ArtifactError(
            f"{kind}{where} must be a JSON object, got {type(data).__name__}",
            path=path,
        )
    tag = data.get("schema", f"{family}/1")
    got_family, version = parse_schema_tag(tag)
    if got_family != family or not 1 <= version <= max_version:
        raise ArtifactError(
            f"Unsupported {kind} schema {tag!r}{where}; this build reads "
            f"{family!r} versions 1..{max_version}",
            path=path,
            schema=tag,
        )
    return version


def load_artifact(
    path: str | Path,
    family: str,
    max_version: int,
    *,
    kind: str | None = None,
) -> dict[str, Any]:
    """Read a versioned artifact file and validate its ``schema`` header.

    The consolidated front door of every artifact loader (bench, sweep,
    search, regression registry, run results): read + object check
    (:func:`load_json_path`) followed by :func:`check_artifact_schema`, with
    every failure mode funnelled into one structured
    :class:`~repro.errors.ArtifactError` naming the offending path.
    """
    kind = kind or f"{family} artifact"
    try:
        data = load_json_path(path, kind=kind)
    except ArtifactError:
        raise
    except ConfigurationError as error:
        raise ArtifactError(str(error), path=path) from None
    check_artifact_schema(data, family, max_version, kind=kind, path=path)
    return data


def write_text_atomic(path: str | Path, text: str) -> Path:
    """Write ``text`` to ``path`` atomically (temp file + ``os.replace``)."""
    path = Path(path)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        # mkstemp creates 0600 files; artifacts must stay as readable as the
        # plain writes they replace, so re-apply the process umask.
        umask = os.umask(0)
        os.umask(umask)
        os.fchmod(fd, 0o666 & ~umask)
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path


def write_json_atomic(
    path: str | Path, payload: Any, *, indent: int | None = 2, sort_keys: bool = True
) -> Path:
    """Atomically write ``payload`` as strict JSON (with a trailing newline)."""
    return write_text_atomic(path, dumps(payload, indent=indent, sort_keys=sort_keys) + "\n")
