"""Communication metrics.

The load-balancing heuristic implicitly trades communications: moving a block
next to its producer suppresses an inter-processor transfer (that is where
the gain of eq. (3) comes from), while moving it away creates one.  These
helpers count the transfers and the transferred volume of a schedule and
compare two schedules edge by edge.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.scheduling.schedule import Schedule

__all__ = [
    "communication_count",
    "communication_volume",
    "communications_by_medium",
    "CommunicationDelta",
    "communication_delta",
]


def communication_count(schedule: Schedule) -> int:
    """Number of inter-processor transfers in the schedule."""
    return len(schedule.communications)


def communication_volume(schedule: Schedule) -> float:
    """Total data volume moved between processors."""
    return sum(op.data_size for op in schedule.communications)


def communications_by_medium(schedule: Schedule) -> dict[str, int]:
    """Number of transfers carried by each medium."""
    counts: dict[str, int] = {}
    for op in schedule.communications:
        counts[op.medium] = counts.get(op.medium, 0) + 1
    return counts


@dataclass(frozen=True, slots=True)
class CommunicationDelta:
    """Edge-level comparison of the transfers of two schedules."""

    before_count: int
    after_count: int
    suppressed: int
    created: int

    @property
    def net_change(self) -> int:
        """``after - before`` (negative when balancing removed transfers)."""
        return self.after_count - self.before_count


def communication_delta(before: Schedule, after: Schedule) -> CommunicationDelta:
    """Compare the inter-processor transfers of two schedules of the same graph."""
    before_edges = {(op.producer_key, op.consumer_key) for op in before.communications}
    after_edges = {(op.producer_key, op.consumer_key) for op in after.communications}
    return CommunicationDelta(
        before_count=len(before_edges),
        after_count=len(after_edges),
        suppressed=len(before_edges - after_edges),
        created=len(after_edges - before_edges),
    )
