"""Load-balance and idle-time metrics.

Classic load balancing equalises the *workloads* (executed time) of the
processors; the paper's introduction motivates this with the observation that
"over 65% of processors are idle at any given time" in general-purpose
distributed systems, and notes that strict periodicity makes the figure worse
for real-time systems.  These helpers quantify both aspects on a schedule:
per-processor busy time, balance indices, and idle fractions (experiment E8).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.scheduling.schedule import Schedule

__all__ = [
    "busy_time_by_processor",
    "load_imbalance",
    "load_balance_index",
    "idle_fraction",
    "idle_fraction_by_processor",
    "LoadSummary",
    "load_summary",
]


def busy_time_by_processor(schedule: Schedule) -> dict[str, float]:
    """Executed WCET per processor."""
    return schedule.busy_time_by_processor()


def load_imbalance(schedule: Schedule) -> float:
    """Ratio ``max / mean`` of the per-processor busy times (1.0 = balanced)."""
    busy = list(schedule.busy_time_by_processor().values())
    if not busy:
        return 1.0
    mean = sum(busy) / len(busy)
    if mean <= 0:
        return 1.0
    return max(busy) / mean


def load_balance_index(schedule: Schedule) -> float:
    """Jain's fairness index of the per-processor busy times.

    ``(Σx)² / (n·Σx²)`` — equals 1.0 for a perfectly equal split and tends to
    ``1/n`` when a single processor holds all the work.
    """
    busy = list(schedule.busy_time_by_processor().values())
    if not busy:
        return 1.0
    square_sum = sum(x * x for x in busy)
    if square_sum <= 0:
        return 1.0
    return (sum(busy) ** 2) / (len(busy) * square_sum)


def idle_fraction(schedule: Schedule, horizon: float | None = None) -> float:
    """Average fraction of idle processor time over ``[0, horizon]``."""
    return schedule.idle_fraction(horizon)


def idle_fraction_by_processor(
    schedule: Schedule, horizon: float | None = None
) -> dict[str, float]:
    """Idle fraction of each processor over ``[0, horizon]``."""
    horizon = schedule.makespan if horizon is None else horizon
    if horizon <= 0:
        return {name: 0.0 for name in schedule.architecture.processor_names}
    return {
        name: timeline.idle_time(horizon) / horizon
        for name, timeline in schedule.timelines().items()
    }


@dataclass(frozen=True, slots=True)
class LoadSummary:
    """Load figures of one schedule."""

    busy_by_processor: dict[str, float]
    imbalance: float
    fairness: float
    idle_fraction: float

    @property
    def balanced(self) -> bool:
        """``True`` when the busy-time imbalance ratio is below 1.05."""
        return self.imbalance <= 1.05


def load_summary(schedule: Schedule, horizon: float | None = None) -> LoadSummary:
    """Compute a :class:`LoadSummary` for ``schedule``."""
    return LoadSummary(
        busy_by_processor=schedule.busy_time_by_processor(),
        imbalance=load_imbalance(schedule),
        fairness=load_balance_index(schedule),
        idle_fraction=idle_fraction(schedule, horizon),
    )
