"""Memory-usage metrics.

The paper's memory objective is to *spread* the per-instance memory demand
over the processors: the quantity bounded by Theorem 2 is ``ω``, the maximum
memory used on any single processor.  These helpers compute ``ω``, the
per-processor breakdown, a normalised memory-balance index, and the
capacity-violation count when the architecture declares finite memories.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.epsilon import EPSILON
from repro.scheduling.schedule import Schedule

__all__ = [
    "memory_by_processor",
    "max_memory",
    "memory_imbalance",
    "capacity_violations",
    "buffered_memory_bound",
    "MemorySummary",
    "memory_summary",
]


def memory_by_processor(schedule: Schedule) -> dict[str, float]:
    """Static per-instance memory summed per processor (paper accounting)."""
    return schedule.memory_by_processor()


def max_memory(schedule: Schedule) -> float:
    """``ω``: the largest per-processor memory amount (Theorem 2's objective)."""
    return max(schedule.memory_by_processor().values(), default=0.0)


def memory_imbalance(schedule: Schedule) -> float:
    """Ratio ``max / mean`` of the per-processor memory amounts.

    1.0 means perfectly balanced memory; the paper's example improves this
    ratio from 2.0 (16 over a mean of 8) to 1.25 (10 over 8).
    """
    usage = list(schedule.memory_by_processor().values())
    if not usage:
        return 1.0
    mean = sum(usage) / len(usage)
    if mean <= 0:
        return 1.0
    return max(usage) / mean


def buffered_memory_bound(schedule: Schedule) -> dict[str, float]:
    """Analytic worst-case memory per processor: static + incoming buffers.

    Every inter-processor communication of the schedule may, in the worst
    case, be buffered on its target processor at the same time (Figure 1:
    samples accumulate until the consumer drains them).  The sum of the
    static memory and of all incoming transfer sizes is therefore a sound
    upper bound on the peak occupancy any replay of one hyper-period can
    observe — the conformance oracle checks the simulated peak against it.
    """
    usage = schedule.memory_by_processor()
    for op in schedule.communications:
        usage[op.target] = usage.get(op.target, 0.0) + op.data_size
    return usage


def capacity_violations(schedule: Schedule, *, include_buffers: bool = False) -> dict[str, float]:
    """Per-processor excess memory over the declared capacity (empty when it fits).

    Parameters
    ----------
    include_buffers:
        When ``True``, count the worst-case consumer-side buffer demand of the
        schedule's communication operations on top of the static memory.
    """
    architecture = schedule.architecture
    if not architecture.has_memory_limits():
        return {}
    capacity = architecture.memory_capacity
    usage = schedule.memory_by_processor()
    if include_buffers:
        for op in schedule.communications:
            usage[op.target] = usage.get(op.target, 0.0) + op.data_size
    return {
        name: amount - capacity for name, amount in usage.items() if amount > capacity + EPSILON
    }


@dataclass(frozen=True, slots=True)
class MemorySummary:
    """Memory figures of one schedule."""

    by_processor: dict[str, float]
    maximum: float
    mean: float
    imbalance: float
    violations: dict[str, float]

    @property
    def balanced(self) -> bool:
        """``True`` when the imbalance ratio is below 1.05."""
        return self.imbalance <= 1.05

    @property
    def fits(self) -> bool:
        """``True`` when no processor exceeds its memory capacity."""
        return not self.violations


def memory_summary(schedule: Schedule, *, include_buffers: bool = False) -> MemorySummary:
    """Compute a :class:`MemorySummary` for ``schedule``."""
    usage = schedule.memory_by_processor()
    values = list(usage.values())
    mean = sum(values) / len(values) if values else 0.0
    return MemorySummary(
        by_processor=usage,
        maximum=max(values, default=0.0),
        mean=mean,
        imbalance=memory_imbalance(schedule),
        violations=capacity_violations(schedule, include_buffers=include_buffers),
    )
