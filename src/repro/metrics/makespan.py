"""Total-execution-time (makespan) metrics.

The paper's primary performance figure is the *total execution time*: the
completion time of the last task of the hyper-period (15 units before
balancing and 14 after in the worked example).  These helpers compute that
quantity, the gain obtained by a balancing step (the ``G_total`` of Theorem
1), the critical-path lower bound used to normalise results across workloads,
and simple schedule-length statistics.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.model.architecture import Architecture
from repro.model.graph import TaskGraph
from repro.scheduling.schedule import Schedule
from repro.scheduling.unrolling import instance_count, predecessors_of_instance

__all__ = [
    "total_execution_time",
    "total_gain",
    "critical_path_length",
    "MakespanSummary",
    "makespan_summary",
]


def total_execution_time(schedule: Schedule) -> float:
    """Completion time of the last instance (the paper's total execution time)."""
    return schedule.makespan


def total_gain(before: Schedule, after: Schedule) -> float:
    """``G_total = L_former - L_new`` (Theorem 1's quantity)."""
    return before.makespan - after.makespan


def critical_path_length(graph: TaskGraph, architecture: Architecture | None = None) -> float:
    """Length of the longest instance-level dependence chain.

    Communication times are ignored (or included with the architecture's
    fixed latency when one is given), producing a lower bound on the total
    execution time of *any* schedule of the hyper-period: no heuristic can do
    better, so experiment tables normalise measured makespans by this value.
    """
    comm = architecture.comm.latency if architecture is not None else 0.0
    finish: dict[tuple[str, int], float] = {}

    def finish_time(key: tuple[str, int]) -> float:
        if key in finish:
            return finish[key]
        task = graph.task(key[0])
        release = key[1] * task.period
        ready = float(release)
        for edge in predecessors_of_instance(graph, key[0], key[1]):
            # Worst case: the producer is remote, one communication is paid.
            ready = max(ready, finish_time(edge.producer) + comm)
        value = ready + task.wcet
        finish[key] = value
        return value

    longest = 0.0
    for name in graph.topological_order():
        for index in range(instance_count(graph, name)):
            longest = max(longest, finish_time((name, index)))
    return longest


@dataclass(frozen=True, slots=True)
class MakespanSummary:
    """Makespan-related figures of one schedule."""

    makespan: float
    critical_path: float
    busy_time_total: float
    processor_count: int

    @property
    def normalized(self) -> float:
        """Makespan divided by the critical-path lower bound (>= 1)."""
        return self.makespan / self.critical_path if self.critical_path > 0 else float("nan")

    @property
    def parallel_lower_bound(self) -> float:
        """``max(critical path, total work / M)`` — the classic makespan bound."""
        if self.processor_count == 0:
            return self.critical_path
        return max(self.critical_path, self.busy_time_total / self.processor_count)


def makespan_summary(schedule: Schedule) -> MakespanSummary:
    """Compute a :class:`MakespanSummary` for ``schedule``.

    The critical path is computed *without* communication times so that it is
    a true lower bound on any schedule's makespan (paying a communication on
    every edge would not be: co-locating tasks avoids it).
    """
    return MakespanSummary(
        makespan=schedule.makespan,
        critical_path=critical_path_length(schedule.graph),
        busy_time_total=sum(schedule.busy_time_by_processor().values()),
        processor_count=len(schedule.architecture),
    )
