"""Metrics: makespan, memory, load balance, communications, combined reports."""

from repro.metrics.balance import (
    LoadSummary,
    busy_time_by_processor,
    idle_fraction,
    idle_fraction_by_processor,
    load_balance_index,
    load_imbalance,
    load_summary,
)
from repro.metrics.communication import (
    CommunicationDelta,
    communication_count,
    communication_delta,
    communication_volume,
    communications_by_medium,
)
from repro.metrics.makespan import (
    MakespanSummary,
    critical_path_length,
    makespan_summary,
    total_execution_time,
    total_gain,
)
from repro.metrics.memory import (
    MemorySummary,
    capacity_violations,
    max_memory,
    memory_by_processor,
    memory_imbalance,
    memory_summary,
)
from repro.metrics.report import ScheduleReport, compare_schedules, render_table

__all__ = [
    "CommunicationDelta",
    "LoadSummary",
    "MakespanSummary",
    "MemorySummary",
    "ScheduleReport",
    "busy_time_by_processor",
    "capacity_violations",
    "communication_count",
    "communication_delta",
    "communication_volume",
    "communications_by_medium",
    "compare_schedules",
    "critical_path_length",
    "idle_fraction",
    "idle_fraction_by_processor",
    "load_balance_index",
    "load_imbalance",
    "load_summary",
    "makespan_summary",
    "max_memory",
    "memory_by_processor",
    "memory_imbalance",
    "memory_summary",
    "render_table",
    "total_execution_time",
    "total_gain",
]
