"""Combined metric reports and ASCII table rendering.

The experiment harness and the benchmarks print small ASCII tables comparing
schedules (before/after balancing, heuristic vs baselines).  To keep those
tables consistent everywhere, this module provides a
:class:`ScheduleReport` gathering every metric of one schedule and a
:func:`render_table` helper for aligned, dependency-free table output.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import asdict, dataclass

from repro.metrics.balance import LoadSummary, load_summary
from repro.metrics.communication import communication_count, communication_volume
from repro.metrics.makespan import MakespanSummary, makespan_summary
from repro.metrics.memory import MemorySummary, memory_summary
from repro.scheduling.schedule import Schedule

__all__ = ["ScheduleReport", "compare_schedules", "render_table"]


@dataclass(frozen=True, slots=True)
class ScheduleReport:
    """All the metrics of one schedule, under one label."""

    label: str
    makespan: MakespanSummary
    memory: MemorySummary
    load: LoadSummary
    communications: int
    communication_volume: float

    @classmethod
    def of(cls, label: str, schedule: Schedule, *, include_buffers: bool = False) -> "ScheduleReport":
        """Build the report of ``schedule``."""
        return cls(
            label=label,
            makespan=makespan_summary(schedule),
            memory=memory_summary(schedule, include_buffers=include_buffers),
            load=load_summary(schedule),
            communications=communication_count(schedule),
            communication_volume=communication_volume(schedule),
        )

    def to_dict(self) -> dict:
        """JSON-safe dictionary of every metric (the machine-readable twin of
        the ASCII table row — the CLI ``--json`` flag and the ``RunResult``
        artifact are built from this)."""
        makespan = asdict(self.makespan)
        makespan["normalized"] = self.makespan.normalized
        makespan["parallel_lower_bound"] = self.makespan.parallel_lower_bound
        return {
            "label": self.label,
            "makespan": makespan,
            "memory": asdict(self.memory),
            "load": asdict(self.load),
            "communications": self.communications,
            "communication_volume": self.communication_volume,
        }

    def row(self) -> list[str]:
        """Row of :func:`compare_schedules`' table."""
        return [
            self.label,
            f"{self.makespan.makespan:g}",
            f"{self.makespan.normalized:.2f}",
            f"{self.memory.maximum:g}",
            f"{self.memory.imbalance:.2f}",
            f"{self.load.imbalance:.2f}",
            f"{self.load.idle_fraction:.2%}",
            f"{self.communications}",
            f"{len(self.memory.violations)}",
        ]


_COMPARE_HEADER = [
    "schedule",
    "makespan",
    "norm.",
    "max mem",
    "mem imb.",
    "load imb.",
    "idle",
    "comms",
    "overflows",
]


def compare_schedules(reports: Iterable[ScheduleReport]) -> str:
    """ASCII comparison table of several :class:`ScheduleReport` objects."""
    rows = [report.row() for report in reports]
    return render_table(_COMPARE_HEADER, rows)


def render_table(header: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """Render an aligned ASCII table (no external dependency).

    Every cell is converted with ``str``; columns are right-aligned except the
    first one.
    """
    table = [list(map(str, header))] + [list(map(str, row)) for row in rows]
    widths = [max(len(row[col]) for row in table) for col in range(len(header))]

    def render_row(row: Sequence[str]) -> str:
        cells = []
        for col, cell in enumerate(row):
            cells.append(cell.ljust(widths[col]) if col == 0 else cell.rjust(widths[col]))
        return "  ".join(cells)

    separator = "  ".join("-" * width for width in widths)
    lines = [render_row(table[0]), separator]
    lines.extend(render_row(row) for row in table[1:])
    return "\n".join(lines)
