"""Tests of repro.model.architecture."""

import math

import pytest

from repro.errors import ArchitectureError
from repro.model.architecture import Architecture, CommunicationModel, Medium, Processor


class TestProcessorAndMedium:
    def test_processor_defaults(self):
        processor = Processor("P1")
        assert math.isinf(processor.memory_capacity)

    def test_processor_rejects_bad_capacity(self):
        with pytest.raises(ArchitectureError):
            Processor("P1", memory_capacity=0)

    def test_processor_rejects_empty_name(self):
        with pytest.raises(ArchitectureError):
            Processor("")

    def test_medium_links(self):
        medium = Medium("bus", ("P1", "P2", "P3"))
        assert medium.links("P1", "P3")
        assert not medium.links("P1", "P4")

    def test_medium_needs_two_endpoints(self):
        with pytest.raises(ArchitectureError):
            Medium("bus", ("P1",))

    def test_medium_rejects_duplicates(self):
        with pytest.raises(ArchitectureError):
            Medium("bus", ("P1", "P1"))


class TestCommunicationModel:
    def test_fixed_latency(self):
        comm = CommunicationModel(latency=1.0)
        assert comm.time(1000.0) == 1.0
        assert comm.is_fixed

    def test_bandwidth_model(self):
        comm = CommunicationModel(latency=1.0, bandwidth=2.0)
        assert comm.time(4.0) == pytest.approx(3.0)
        assert not comm.is_fixed

    def test_same_processor_is_free(self):
        comm = CommunicationModel(latency=5.0)
        assert comm.time(10.0, same_processor=True) == 0.0

    def test_rejects_negative_latency(self):
        with pytest.raises(ArchitectureError):
            CommunicationModel(latency=-1.0)

    def test_rejects_negative_data_size(self):
        with pytest.raises(ArchitectureError):
            CommunicationModel().time(-1.0)


class TestArchitecture:
    def test_homogeneous_factory(self):
        arch = Architecture.homogeneous(3, memory_capacity=32.0)
        assert arch.processor_names == ("P1", "P2", "P3")
        assert arch.memory_capacity == 32.0
        assert arch.has_memory_limits()
        assert len(arch.media) == 1  # implicit shared bus

    def test_default_has_no_memory_limit(self):
        arch = Architecture.homogeneous(2)
        assert not arch.has_memory_limits()

    def test_rejects_heterogeneous_memory(self):
        with pytest.raises(ArchitectureError):
            Architecture([Processor("P1", memory_capacity=8), Processor("P2", memory_capacity=16)])

    def test_rejects_duplicate_names(self):
        with pytest.raises(ArchitectureError):
            Architecture([Processor("P1"), Processor("P1")])

    def test_rejects_disconnected(self):
        with pytest.raises(ArchitectureError):
            Architecture(
                [Processor("P1"), Processor("P2"), Processor("P3")],
                [Medium("m", ("P1", "P2"))],
            )

    def test_single_processor_needs_no_medium(self):
        arch = Architecture(["P1"])
        assert len(arch.media) == 0

    def test_medium_between(self):
        arch = Architecture.homogeneous(3)
        assert arch.medium_between("P1", "P3").name == "Med"
        with pytest.raises(ArchitectureError):
            arch.medium_between("P1", "P1")

    def test_comm_time(self):
        arch = Architecture.homogeneous(2, comm=CommunicationModel(latency=2.0))
        assert arch.comm_time("P1", "P2") == 2.0
        assert arch.comm_time("P1", "P1") == 0.0

    def test_processor_pairs(self):
        arch = Architecture.homogeneous(3)
        assert len(arch.processor_pairs()) == 3

    def test_unknown_processor(self):
        arch = Architecture.homogeneous(2)
        with pytest.raises(ArchitectureError):
            arch.processor("P9")

    def test_paper_architecture(self, paper_arch):
        assert len(paper_arch) == 3
        assert paper_arch.comm.latency == 1.0
        assert paper_arch.are_connected("P1", "P3")
