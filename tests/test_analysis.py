"""Tests of repro.analysis (Theorem 1, Theorem 2, complexity)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    approximation_campaign,
    check_theorem1,
    fit_complexity,
    measure_greedy_ratio,
    measure_runtime,
    theorem1_campaign,
    theorem2_bound,
)
from repro.analysis.complexity import ComplexitySample
from repro.core import balance_schedule
from repro.errors import AnalysisError


class TestTheorem1:
    def test_paper_example_check(self, paper_schedule):
        result = balance_schedule(paper_schedule)
        check = check_theorem1(result)
        assert check.gain == pytest.approx(result.total_gain)
        assert check.gamma == pytest.approx(1.0)
        assert check.lower_ok
        assert check.factorial_bound == pytest.approx(2.0)  # gamma * (3-1)!
        assert check.pair_bound == pytest.approx(3.0)
        assert check.holds

    def test_campaign_aggregation(self, paper_schedule):
        results = [balance_schedule(paper_schedule) for _ in range(3)]
        campaign = theorem1_campaign(results)
        assert campaign.samples == 3
        assert campaign.violations_lower == 0
        assert campaign.holds

    def test_empty_campaign(self):
        campaign = theorem1_campaign([])
        assert campaign.samples == 0


class TestTheorem2:
    def test_bound_values(self):
        assert theorem2_bound(1) == pytest.approx(1.0)
        assert theorem2_bound(2) == pytest.approx(1.5)
        assert theorem2_bound(4) == pytest.approx(1.75)
        with pytest.raises(AnalysisError):
            theorem2_bound(0)

    def test_measure_greedy_ratio_small_case(self):
        sample = measure_greedy_ratio([4.0, 3.0, 3.0, 2.0], 2)
        assert sample.optimal_max_memory == pytest.approx(6.0)
        assert sample.ratio >= 1.0
        assert sample.within_bound

    def test_campaign_requires_same_processor_count(self):
        a = measure_greedy_ratio([1.0, 2.0], 2)
        b = measure_greedy_ratio([1.0, 2.0], 3)
        with pytest.raises(AnalysisError):
            approximation_campaign([a, b])
        campaign = approximation_campaign([a, a])
        assert campaign.samples == 2
        assert campaign.holds

    @given(
        st.lists(st.floats(0.5, 20.0), min_size=1, max_size=10),
        st.integers(2, 4),
    )
    @settings(max_examples=40, deadline=None)
    def test_theorem2_bound_always_holds(self, memories, processors):
        """Property: the greedy rule never exceeds 2 - 1/M times the optimum."""
        sample = measure_greedy_ratio(memories, processors)
        assert sample.exact
        assert sample.ratio <= theorem2_bound(processors) + 1e-6


class TestComplexity:
    def test_measure_runtime(self, paper_schedule):
        sample = measure_runtime(paper_schedule, label="paper")
        assert sample.blocks == 7
        assert sample.processors == 3
        assert sample.seconds > 0
        assert sample.work == 21.0

    def test_measure_runtime_rejects_bad_repetitions(self, paper_schedule):
        with pytest.raises(AnalysisError):
            measure_runtime(paper_schedule, repetitions=0)

    def test_fit_complexity_on_synthetic_linear_data(self):
        rng = np.random.default_rng(0)
        samples = [
            ComplexitySample(
                tasks=10 * i,
                instances=20 * i,
                processors=2,
                blocks=10 * i,
                seconds=0.001 * (2 * 10 * i) + 0.002 + rng.normal(0, 1e-4),
            )
            for i in range(1, 10)
        ]
        fit = fit_complexity(samples)
        assert fit.r_squared > 0.95
        assert fit.slope == pytest.approx(0.001, rel=0.2)
        assert fit.is_linear

    def test_fit_complexity_needs_three_samples(self):
        with pytest.raises(AnalysisError):
            fit_complexity([ComplexitySample(1, 1, 1, 1, 0.1)])
