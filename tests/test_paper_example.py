"""End-to-end reproduction tests of the paper's worked example (section 3.3).

These are the tests that gate experiment E1: the LEXICOGRAPHIC policy must
replay every numbered step of the paper and land on the exact final figures.
"""

import pytest

from repro.core import CostPolicy, LoadBalancer, LoadBalancerOptions
from repro.scheduling import check_schedule
from repro.workloads.paper_example import PAPER_EXPECTATIONS, paper_initial_schedule


@pytest.fixture(scope="module")
def lex_result():
    schedule = paper_initial_schedule()
    return LoadBalancer(schedule, LoadBalancerOptions(policy=CostPolicy.LEXICOGRAPHIC)).run()


class TestInitialSchedule:
    def test_figure3_metrics(self, paper_schedule):
        assert paper_schedule.makespan == PAPER_EXPECTATIONS["makespan_before"]
        assert paper_schedule.memory_by_processor() == PAPER_EXPECTATIONS["memory_before"]

    def test_figure3_is_feasible(self, paper_schedule):
        assert check_schedule(paper_schedule).is_feasible


class TestWorkedExample:
    def test_every_decision_matches_the_paper(self, lex_result):
        decisions = [(d.block.label, d.chosen_processor) for d in lex_result.decisions]
        assert decisions == [tuple(step) for step in PAPER_EXPECTATIONS["decisions"]]

    def test_step3_gain_and_update(self, lex_result):
        step3 = lex_result.decisions[2]
        assert step3.block.label == "[b#0-c#0]"
        assert step3.gain == pytest.approx(1.0)
        assert step3.updated_blocks, "the start-time update of [b#1-c#1] was not propagated"

    def test_step6_only_p1_feasible(self, lex_result):
        step6 = lex_result.decisions[5]
        assert step6.block.label == "[b#1-c#1]"
        assert step6.start_before == pytest.approx(PAPER_EXPECTATIONS["updated_block_start"]["[b#1-c#1]"])
        feasible_targets = {
            c.target for c in step6.candidates if c.evaluation.feasible
        }
        assert feasible_targets == {"P1"}

    def test_step7_lcm_condition_excludes_p1(self, lex_result):
        from repro.core.conditions import ProcessorState, satisfies_lcm_condition

        step7 = lex_result.decisions[6]
        assert step7.block.label == "[d#0-e#0]"
        p1 = step7.candidate_for("P1")
        assert p1 is not None and p1.evaluation.feasible
        # Placing the block at its P1 start (12, execution 2) violates eq. (4)
        # because the first block moved to P1 starts at 0 and the LCM is 12 —
        # exactly the reason the paper gives for not using P1 in step 7.
        first_on_p1 = ProcessorState("P1", moved_blocks=1, first_start=0.0)
        assert not satisfies_lcm_condition(
            step7.block, p1.evaluation.placement_start, first_on_p1, 12
        )
        # The ranking tries P3 first (it passes), so P1's LCM flag may remain
        # unevaluated — but P1 must never be the chosen processor.
        assert p1.lcm_ok in (False, None)
        assert step7.chosen_processor == "P3"

    def test_final_makespan(self, lex_result):
        assert lex_result.makespan_after == PAPER_EXPECTATIONS["makespan_after"]
        assert lex_result.total_gain == PAPER_EXPECTATIONS["total_gain"]

    def test_final_memory_distribution(self, lex_result):
        assert lex_result.memory_after == PAPER_EXPECTATIONS["memory_after"]

    def test_final_schedule_feasible(self, lex_result):
        assert check_schedule(lex_result.balanced_schedule).is_feasible

    def test_no_forced_placements(self, lex_result):
        assert not any(decision.forced for decision in lex_result.decisions)

    def test_block_count(self, lex_result):
        assert len(lex_result.blocks) == PAPER_EXPECTATIONS["block_count"]


class TestRatioPolicyOnExample:
    def test_ratio_policy_never_worse_than_initial(self, paper_schedule):
        result = LoadBalancer(paper_schedule, LoadBalancerOptions(policy=CostPolicy.RATIO)).run()
        assert result.makespan_after <= result.makespan_before
        assert check_schedule(result.balanced_schedule).is_feasible
        # The literal eq.-(5) interpretation spreads memory but misses the
        # gain of step 3 (documented divergence, DESIGN.md §2 A1/B1).
        assert result.max_memory_after <= 10.0 + 1e-9
