"""Tests of repro.scheduling.feasibility (constraint checking)."""

import pytest

from repro.errors import ValidationError
from repro.scheduling.feasibility import assert_feasible, check_schedule
from repro.workloads.paper_example import paper_architecture, paper_initial_schedule


class TestCleanSchedule:
    def test_paper_schedule_is_feasible(self, paper_schedule):
        report = check_schedule(paper_schedule)
        assert report.is_feasible
        assert "feasible" in report.summary()
        assert_feasible(paper_schedule)


class TestViolationDetection:
    def test_missing_instance(self, paper_schedule):
        partial = paper_schedule.with_instances(list(paper_schedule.instances)[:-1], ())
        report = check_schedule(partial)
        assert report.missing_instances
        assert not report.is_feasible

    def test_strict_periodicity_violation(self, paper_schedule):
        broken = paper_schedule.moved({("a", 2): ("P1", 6.5)})
        report = check_schedule(broken)
        assert report.periodicity_violations

    def test_overlap_violation(self, paper_schedule):
        broken = paper_schedule.moved({("b", 0), }.__class__())  # no-op guard
        broken = paper_schedule.moved({("b", 0): ("P1", 3.2)})
        report = check_schedule(broken)
        assert report.overlap_violations or report.precedence_violations

    def test_precedence_violation(self, paper_schedule):
        # Start d before b's data can possibly arrive.
        broken = paper_schedule.moved({("d", 0): ("P3", 2.0)})
        report = check_schedule(broken)
        assert report.precedence_violations

    def test_repeatability_violation(self, paper_graph, paper_arch):
        schedule = paper_initial_schedule(paper_graph, paper_arch)
        # Push e to an offset that collides, modulo the hyper-period (12),
        # with a#0's slot at [0, 1): 24.5 mod 12 = 0.5.
        broken = schedule.moved({("e", 0): ("P1", 24.5)})
        report = check_schedule(broken, check_repeatability=True)
        assert report.repeatability_violations

    def test_repeatability_can_be_disabled(self, paper_schedule):
        broken = paper_schedule.moved({("e", 0): ("P1", 24.5)})
        report = check_schedule(broken, check_repeatability=False)
        assert not report.repeatability_violations

    def test_memory_capacity_violation(self, paper_graph):
        arch = paper_architecture(memory_capacity=10.0)
        schedule = paper_initial_schedule(paper_graph, arch)
        report = check_schedule(schedule)  # P1 holds 16 > 10
        assert report.memory_violations
        clean = check_schedule(schedule, check_memory=False)
        assert not clean.memory_violations

    def test_buffer_demand_can_be_included(self, paper_graph):
        arch = paper_architecture(memory_capacity=16.0)
        schedule = paper_initial_schedule(paper_graph, arch)
        without = check_schedule(schedule, include_buffers=False)
        with_buffers = check_schedule(schedule, include_buffers=True)
        assert len(with_buffers.memory_violations) >= len(without.memory_violations)

    def test_assert_feasible_raises(self, paper_schedule):
        broken = paper_schedule.moved({("d", 0): ("P3", 2.0)})
        with pytest.raises(ValidationError):
            assert_feasible(broken)
