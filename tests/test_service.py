"""Tests for the balancing service (``repro.service``) and its bench tier."""

from __future__ import annotations

import hashlib
import json
import socket

import pytest

from repro.api import ChurnTimeline, Pipeline, PipelineConfig, WcetDrift
from repro.errors import ConfigurationError
from repro.experiments.campaign import plan_pipeline_campaign
from repro.service import (
    ResultCache,
    ServiceClient,
    ServiceClientError,
    ServiceThread,
    canonical_result_bytes,
    deterministic_result_dict,
    wait_until_ready,
)
from repro.service.protocol import (
    ServiceRequestError,
    parse_rebalance_payload,
    parse_submit_payload,
    rebalance_fingerprint,
)


def config_with_label(label: str) -> PipelineConfig:
    return PipelineConfig.from_dict(
        {
            "schema": "repro-pipeline/1",
            "label": label,
            "workload": {"kind": "paper_example"},
        }
    )


@pytest.fixture(scope="module")
def service_handle():
    """One thread-pool service shared by the fast end-to-end tests."""
    with ServiceThread(pool="thread", jobs=2) as handle:
        wait_until_ready(handle.host, handle.port)
        yield handle


@pytest.fixture()
def client(service_handle):
    with ServiceClient(service_handle.host, service_handle.port) as instance:
        yield instance


# ----------------------------------------------------------------------
# Fingerprints (satellite a)
# ----------------------------------------------------------------------
class TestFingerprint:
    def test_fingerprint_is_sha256_of_canonical_bytes(self):
        config = PipelineConfig.paper_example()
        payload = config.canonical_bytes()
        assert config.fingerprint() == hashlib.sha256(payload).hexdigest()

    def test_canonical_bytes_are_compact_sorted_and_stable(self):
        config = PipelineConfig.paper_example()
        payload = config.canonical_bytes()
        assert b"\n" not in payload
        assert b": " not in payload and b", " not in payload
        decoded = json.loads(payload)
        assert decoded == config.to_dict()
        assert payload == PipelineConfig.from_dict(decoded).canonical_bytes()

    def test_equal_configs_share_a_fingerprint(self):
        assert config_with_label("x").fingerprint() == config_with_label("x").fingerprint()
        assert config_with_label("x").fingerprint() != config_with_label("y").fingerprint()

    def test_campaign_planner_dedupes_identical_configs(self):
        distinct = [config_with_label("a"), config_with_label("b")]
        runs = plan_pipeline_campaign(distinct + [config_with_label("a")])
        assert len(runs) == 2
        assert [run.pipeline["label"] for run in runs] == ["a", "b"]


# ----------------------------------------------------------------------
# Result cache
# ----------------------------------------------------------------------
class TestResultCache:
    def test_lru_eviction_and_stats(self):
        cache = ResultCache(max_entries=2)
        cache.put("a", b"1")
        cache.put("b", b"22")
        assert cache.get("a") == b"1"  # refresh "a": "b" becomes LRU
        cache.put("c", b"333")
        assert cache.peek("b") is None
        assert cache.peek("a") == b"1"
        stats = cache.stats()
        assert stats["entries"] == 2
        assert stats["evictions"] == 1
        assert stats["stored_bytes"] == len(b"1") + len(b"333")

    def test_hit_rate_counts_get_but_not_peek(self):
        cache = ResultCache()
        cache.put("a", b"1")
        assert cache.get("missing") is None
        assert cache.get("a") == b"1"
        cache.peek("missing")
        assert cache.hit_rate == 0.5

    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ConfigurationError, match="max_entries"):
            ResultCache(max_entries=0)


# ----------------------------------------------------------------------
# Submit-payload parsing
# ----------------------------------------------------------------------
class TestParseSubmitPayload:
    def test_bare_config_defaults_to_wait(self):
        config, wait = parse_submit_payload({"schema": "repro-pipeline/1"})
        assert wait is True and config == {"schema": "repro-pipeline/1"}

    def test_envelope_form(self):
        config, wait = parse_submit_payload({"config": {"x": 1}, "wait": False})
        assert wait is False and config == {"x": 1}

    @pytest.mark.parametrize(
        "payload, match",
        [
            ([1, 2], "must be a JSON object"),
            ({"config": 5}, "must be a JSON object"),
            ({"config": {}, "bogus": 1}, "unknown submit key"),
            ({"config": {}, "wait": "yes"}, "must be a boolean"),
        ],
    )
    def test_malformed_payloads_raise_400(self, payload, match):
        with pytest.raises(ServiceRequestError, match=match) as excinfo:
            parse_submit_payload(payload)
        assert excinfo.value.status == 400


class TestParseRebalancePayload:
    def test_envelope_form(self):
        config, delta, wait = parse_rebalance_payload(
            {"config": {"x": 1}, "delta": {"kind": "remove_task"}, "wait": False}
        )
        assert config == {"x": 1}
        assert delta == {"kind": "remove_task"}
        assert wait is False

    def test_wait_defaults_to_true(self):
        _, _, wait = parse_rebalance_payload({"config": {}, "delta": {}})
        assert wait is True

    @pytest.mark.parametrize(
        "payload, match",
        [
            ("nope", "must be a JSON object"),
            ({"config": {}, "delta": {}, "bogus": 1}, "unknown rebalance key"),
            ({"config": {}}, "missing required key"),
            ({"delta": {}}, "missing required key"),
            ({"config": {}, "delta": {}, "wait": 1}, "must be a boolean"),
            ({"config": 5, "delta": {}}, "pipeline config must be a JSON object"),
            ({"config": {}, "delta": [1]}, "delta must be a JSON object"),
        ],
    )
    def test_malformed_payloads_raise_400(self, payload, match):
        with pytest.raises(ServiceRequestError, match=match) as excinfo:
            parse_rebalance_payload(payload)
        assert excinfo.value.status == 400

    def test_composite_fingerprint_is_order_sensitive_sha256(self):
        fp = rebalance_fingerprint("cf", "dd")
        assert fp == hashlib.sha256(b"rebalance:cf:dd").hexdigest()
        assert fp != rebalance_fingerprint("dd", "cf")


# ----------------------------------------------------------------------
# End-to-end over a real socket (satellite d)
# ----------------------------------------------------------------------
class TestServiceEndToEnd:
    def test_health_and_stats(self, client):
        health = client.health()
        assert health["schema"] == "repro-service/1"
        assert health["status"] == "ok"
        stats = client.stats()
        assert stats["pool"] == {"kind": "thread", "workers": 2}

    def test_sync_submit_runs_the_pipeline(self, client):
        config = PipelineConfig.paper_example()
        job = client.submit(config)
        assert job["status"] == "done"
        assert job["result"]["metrics"]["makespan_after"] == 14.0
        assert job["fingerprint"] == config.fingerprint()

    def test_async_submit_poll_and_cache_fetch(self, client):
        config = config_with_label("e2e-async")
        queued = client.submit(config, wait=False)
        assert queued["status"] in ("queued", "running", "done")
        done = client.wait_for(queued["job_id"])
        assert done["status"] == "done"
        cached = client.cached_result(config.fingerprint())
        assert cached is not None
        assert json.loads(cached) == done["result"]

    def test_cache_hit_is_byte_identical(self, client):
        config = config_with_label("e2e-cache")
        first = client.submit(config)
        assert first["cached"] is False
        raw_first = client.cached_result(config.fingerprint())
        second = client.submit(config)
        assert second["cached"] is True
        raw_second = client.cached_result(config.fingerprint())
        # The byte-identity contract: the cached endpoint returns the stored
        # bytes verbatim, and a cache-hit submit embeds exactly that result.
        assert raw_first == raw_second
        assert second["result"] == json.loads(raw_first)

    def test_cached_result_matches_direct_pipeline_run(self, client):
        config = config_with_label("e2e-direct")
        client.submit(config)
        served = json.loads(client.cached_result(config.fingerprint()))
        direct = Pipeline(config).run().to_dict()
        assert canonical_result_bytes(
            deterministic_result_dict(served)
        ) == canonical_result_bytes(deterministic_result_dict(direct))

    def test_unknown_job_and_fingerprint_are_404(self, client):
        with pytest.raises(ServiceClientError) as excinfo:
            client.job("job-99999999")
        assert excinfo.value.status == 404
        assert client.cached_result("0" * 64) is None

    def test_malformed_submits_are_structured_4xx(self, client, service_handle):
        status, body = client.request("POST", "/v1/submit", b"{not json")
        assert status == 400
        payload = json.loads(body)
        assert payload["schema"] == "repro-service/1" and "error" in payload

        status, body = client.request(
            "POST", "/v1/submit", json.dumps({"config": {}, "bogus": 1}).encode()
        )
        assert status == 400

        bad_config = {"schema": "repro-pipeline/1", "workload": {"kind": "mystery"}}
        status, body = client.request("POST", "/v1/submit", json.dumps(bad_config).encode())
        assert status == 422
        assert "invalid pipeline config" in json.loads(body)["error"]

        status, _ = client.request("PUT", "/v1/submit", b"{}")
        assert status == 405
        status, _ = client.request("GET", "/v1/nope")
        assert status == 404
        # The server survived all of it.
        assert client.health()["status"] == "ok"

    def test_rebalance_endpoint_runs_and_caches(self, client):
        config = config_with_label("e2e-rebalance")
        timeline = ChurnTimeline.of(WcetDrift(name="a", wcet=0.5))

        first = client.rebalance(config, timeline)
        assert first["status"] == "done"
        assert first["cached"] is False
        expected = rebalance_fingerprint(config.fingerprint(), timeline.digest())
        assert first["fingerprint"] == expected
        result = first["result"]
        assert result["schema"] == "repro-run/2"
        assert result["rebalance"]["delta_digest"] == timeline.digest()
        assert result["rebalance"]["delta"] == timeline.to_dict()

        # Same (config fingerprint, delta digest) pair -> composite cache hit.
        second = client.rebalance(config, timeline)
        assert second["cached"] is True
        assert second["fingerprint"] == expected
        assert second["result"] == result

        # A single bare delta (dict with a "kind") is accepted as well.
        single = client.rebalance(config, WcetDrift(name="a", wcet=0.5))
        assert single["status"] == "done"
        assert single["fingerprint"] == expected  # same one-entry timeline

    def test_rebalance_rejects_bad_payloads(self, client):
        config = config_with_label("e2e-rebalance-bad")

        # Unknown delta kind is a 422 (valid envelope, invalid delta).
        body = json.dumps(
            {"config": config.to_dict(), "delta": {"kind": "mystery"}, "wait": True}
        ).encode()
        status, payload = client.request("POST", "/v1/rebalance", body)
        assert status == 422
        assert "delta" in json.loads(payload)["error"]

        # Missing delta key is a 400 (malformed envelope).
        body = json.dumps({"config": config.to_dict(), "wait": True}).encode()
        status, _ = client.request("POST", "/v1/rebalance", body)
        assert status == 400

        status, _ = client.request("GET", "/v1/rebalance")
        assert status == 405
        assert client.health()["status"] == "ok"

    def test_malformed_request_line_gets_400_not_a_crash(self, client, service_handle):
        with socket.create_connection((service_handle.host, service_handle.port)) as raw:
            raw.sendall(b"THIS IS NOT HTTP\r\n\r\n")
            response = raw.recv(4096)
        assert response.startswith(b"HTTP/1.1 400 ")
        assert client.health()["status"] == "ok"

    def test_oversized_body_is_413(self):
        with ServiceThread(pool="thread", jobs=1, max_body_bytes=64) as handle:
            wait_until_ready(handle.host, handle.port)
            with ServiceClient(handle.host, handle.port) as client:
                status, body = client.request("POST", "/v1/submit", b"x" * 65)
                assert status == 413
                assert json.loads(body)["status"] == 413


class TestBatchingAndShutdown:
    def test_concurrent_clients_get_micro_batched(self):
        import threading

        clients = 4
        with ServiceThread(pool="thread", jobs=2, batch_window_ms=200.0) as handle:
            wait_until_ready(handle.host, handle.port)
            barrier = threading.Barrier(clients)
            failures: list[Exception] = []

            def drive(index: int) -> None:
                try:
                    with ServiceClient(handle.host, handle.port) as client:
                        barrier.wait()
                        job = client.submit(config_with_label(f"batch-{index}"))
                        assert job["status"] == "done"
                except Exception as error:  # pragma: no cover - surfaced below
                    failures.append(error)

            threads = [
                threading.Thread(target=drive, args=(index,)) for index in range(clients)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert not failures
            batcher = handle.service.stats()["batcher"]
        assert batcher["dispatched"] == clients
        # The 200ms window must have collected at least one real batch.
        assert batcher["max_batch"] > 1

    def test_graceful_shutdown_drains_in_flight_jobs(self):
        handle = ServiceThread(pool="thread", jobs=2, batch_window_ms=200.0)
        handle.start()
        try:
            wait_until_ready(handle.host, handle.port)
            with ServiceClient(handle.host, handle.port) as client:
                jobs = [
                    client.submit(config_with_label(f"drain-{index}"), wait=False)
                    for index in range(3)
                ]
                assert any(job["status"] != "done" for job in jobs)
        finally:
            # Stop while the batch window still holds the jobs: drain must
            # finish them rather than dropping them.
            handle.stop(drain=True)
        service = handle.service
        assert [service.job_state(job["job_id"]) for job in jobs] == ["done"] * 3
        for job in jobs:
            assert service.cached_bytes(job["fingerprint"]) is not None

    def test_submits_after_drain_are_rejected_503(self):
        with ServiceThread(pool="thread", jobs=1) as handle:
            wait_until_ready(handle.host, handle.port)
        # The context exit stopped the service; a fresh connection fails.
        with pytest.raises(ServiceClientError):
            ServiceClient(handle.host, handle.port, timeout_s=2.0).submit(
                config_with_label("late")
            )


# ----------------------------------------------------------------------
# Bench tier (satellite d + tentpole wiring)
# ----------------------------------------------------------------------
class TestServiceBench:
    def test_bench_artifact_round_trip_and_compare(self, tmp_path):
        from repro.bench import compare, run_service_bench
        from repro.bench.artifact import BenchArtifact

        artifact = run_service_bench(
            clients=3, requests_per_client=3, unique=2, pool="thread", jobs=2
        )
        record = artifact.record("SVC")
        assert artifact.preset == "service"
        assert record is not None and record.passed is True
        metrics = record.metrics
        assert metrics["requests"] == 9.0
        assert metrics["errors"] == 0.0
        assert metrics["requests_per_sec"] > 0.0
        assert 0.0 < metrics["p50_ms"] <= metrics["p99_ms"] <= metrics["max_ms"]
        # Repeated-config mix: the cache must have served real hits, and the
        # byte-identity probe must hold for every unique config.
        assert metrics["cache_hit_rate"] > 0.0
        assert metrics["byte_identical"] == 1.0

        saved = artifact.save(tmp_path)
        loaded = BenchArtifact.load(saved)
        report = compare(loaded, artifact)
        assert report.ok

    def test_workload_mix_is_unique_and_schedulable(self):
        from repro.bench.service import service_workload_mix

        mix = service_workload_mix("tiny", unique=3)
        assert 1 <= len(mix) <= 3
        fingerprints = {config.fingerprint() for config, _reference in mix}
        assert len(fingerprints) == len(mix)
        for _config, reference in mix:
            assert reference["schema"] == "repro-run/1"


# ----------------------------------------------------------------------
# CLI satellites (b, c)
# ----------------------------------------------------------------------
class TestCliSatellites:
    def test_version_flag(self, capsys):
        from repro._version import __version__
        from repro.cli import main

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert capsys.readouterr().out.strip() == f"repro-lb {__version__}"

    def test_load_json_path_rejects_non_objects(self, tmp_path):
        from repro.jsonio import load_json_path

        target = tmp_path / "payload.json"
        target.write_text("[1, 2, 3]")
        with pytest.raises(ConfigurationError, match="must be a JSON object"):
            load_json_path(target, kind="test payload")
        with pytest.raises(ConfigurationError, match="missing.json"):
            load_json_path(tmp_path / "missing.json")

    def test_bench_service_cli_smoke(self, capsys, tmp_path):
        from repro.cli import main

        output = tmp_path / "BENCH_svc.json"
        code = main(
            [
                "bench",
                "service",
                "--clients",
                "2",
                "--requests",
                "2",
                "--unique",
                "1",
                "--pool",
                "thread",
                "--jobs",
                "1",
                "--output",
                str(output),
            ]
        )
        assert code == 0
        printed = capsys.readouterr().out
        assert "bench service:" in printed and "cache hit rate" in printed
        assert json.loads(output.read_text())["preset"] == "service"
