"""Tests of the scenario registry and the differential sweep harness."""

from __future__ import annotations

import json

import pytest

from repro.api import PipelineConfig, balance
from repro.cli import main
from repro.errors import ConfigurationError
from repro.scenarios import (
    SCENARIO_PRESETS,
    SWEEP_SCHEMA,
    SweepArtifact,
    SweepCell,
    available_scenarios,
    execute_cell,
    grid_fingerprint,
    plan_sweep,
    run_sweep,
    scenario_info,
    scenario_scale,
    sweep_pipeline_configs,
    workload_digest,
)
from repro.workloads.generator import scheduled_workload

#: Structural digest of the entire tiny scenario grid.  This value changing
#: means the generated workloads changed — deliberate generator/scenario
#: edits must re-pin it; anything else is a determinism regression (seed
#: derivation, RNG consumption order, dict ordering, ...).
GOLDEN_TINY_FINGERPRINT = "172c91d2437bd660"

#: A cheap scenario/balancer subset used where the full grid would be slow.
FAST_BALANCERS = ("paper", "no_balancing", "greedy_load")


class TestRegistry:
    def test_families_are_registered(self):
        names = available_scenarios()
        assert len(names) >= 8
        assert names == tuple(sorted(names))

    def test_every_scenario_generates_schedules_and_balances_tiny(self):
        # Completeness gate: every registered family must produce a workload
        # that the initial scheduler places and the paper heuristic balances
        # at the tiny scale (seed index 0).
        for name in available_scenarios():
            spec = scenario_info(name).workload_spec("tiny", 0)
            spec.validate()
            workload, schedule = scheduled_workload(spec)
            assert len(workload.graph) >= 1, name
            outcome = balance(schedule, "paper")
            assert outcome.feasible, (name, outcome.violations)

    def test_per_seed_determinism(self):
        spec = scenario_info("fork_join_scatter")
        first = spec.workload("tiny", 1)
        second = spec.workload("tiny", 1)
        assert workload_digest(first) == workload_digest(second)
        assert first.spec == second.spec

    def test_indices_and_families_get_distinct_streams(self):
        fork = scenario_info("fork_join_scatter")
        assert fork.workload_spec("tiny", 0).seed != fork.workload_spec("tiny", 1).seed
        other = scenario_info("sensor_fusion_fanin")
        assert fork.workload_spec("tiny", 0).seed != other.workload_spec("tiny", 0).seed

    def test_scale_is_applied(self):
        for preset, scale in SCENARIO_PRESETS.items():
            spec = scenario_info("layered_baseline").workload_spec(preset, 0)
            assert spec.task_count == scale.task_count
            assert spec.processor_count == scale.processor_count
        assert scenario_scale("tiny").seeds >= 2

    def test_unknown_names_rejected(self):
        with pytest.raises(ConfigurationError):
            scenario_info("nope")
        with pytest.raises(ConfigurationError):
            scenario_scale("huge")
        with pytest.raises(ConfigurationError):
            scenario_info("layered_baseline").workload_spec("tiny", -1)

    def test_golden_grid_fingerprint(self):
        assert grid_fingerprint("tiny") == GOLDEN_TINY_FINGERPRINT


class TestPlanning:
    def test_grid_covers_every_cell(self):
        cells = plan_sweep("tiny")
        from repro.api import available_balancers

        # Frozen regression scenarios pin one workload, so they contribute
        # exactly one cell each; synthetic families sweep every seed index.
        expected = sum(
            scenario_info(name).cell_count("tiny") for name in available_scenarios()
        ) * len(available_balancers())
        assert len(cells) == expected
        assert len(set(cells)) == len(cells)

    def test_oracle_sampling_hits_paper_cells_only(self):
        cells = plan_sweep("tiny", balancers=("paper", "greedy_load"), oracle_stride=2)
        paper = [cell for cell in cells if cell.balancer == "paper"]
        assert [cell.oracle for cell in paper] == [
            index % 2 == 0 for index in range(len(paper))
        ]
        assert not any(cell.oracle for cell in cells if cell.balancer != "paper")

    def test_plan_validates_names_up_front(self):
        with pytest.raises(ConfigurationError):
            plan_sweep("tiny", scenarios=("nope",))
        with pytest.raises(ConfigurationError):
            plan_sweep("tiny", balancers=("nope",))
        with pytest.raises(ConfigurationError):
            plan_sweep("tiny", oracle_stride=-1)


class TestSweep:
    def test_cell_record_shape(self):
        record = execute_cell(SweepCell("prime_ladder", 0, "paper", "tiny", True))
        assert record["status"] == "ok"
        assert record["findings"] == []
        assert record["feasible"] is True
        assert record["seed"] == scenario_info("prime_ladder").workload_spec("tiny", 0).seed
        assert record["makespan_after"] <= record["makespan_before"] + 1e-9

    def test_differential_sweep_snapshot(self, tmp_path):
        # Golden end-to-end snapshot on a cheap sub-grid: every cell ok, zero
        # findings, and the artifact survives strict JSON + a disk round trip.
        artifact = run_sweep(
            "tiny",
            scenarios=("prime_ladder", "single_processor"),
            balancers=FAST_BALANCERS,
        )
        assert artifact.ok
        counts = artifact.counts
        assert counts["cells"] == 2 * scenario_scale("tiny").seeds * len(FAST_BALANCERS)
        assert counts["ok"] == counts["cells"]
        assert counts["findings"] == 0

        path = artifact.save(tmp_path / "sweep.json")
        parsed = json.loads(path.read_text(), parse_constant=pytest.fail)
        assert parsed["schema"] == SWEEP_SCHEMA
        reloaded = SweepArtifact.load(path)
        assert reloaded.counts == counts
        assert reloaded.cells == artifact.cells

    def test_sweep_is_deterministic_modulo_timing(self):
        def stripped(artifact):
            return [
                {k: v for k, v in cell.items() if k != "seconds"}
                for cell in artifact.cells
            ]

        first = run_sweep("tiny", scenarios=("prime_ladder",), balancers=("paper",))
        second = run_sweep("tiny", scenarios=("prime_ladder",), balancers=("paper",))
        assert stripped(first) == stripped(second)

    def test_findings_fail_the_artifact(self):
        artifact = SweepArtifact.now("tiny")
        assert artifact.ok
        artifact.findings.append(
            {"scenario": "x", "index": 0, "balancer": "paper", "invariant": "never_worse", "detail": "d"}
        )
        assert not artifact.ok

    def test_schema_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            SweepArtifact.from_dict({"schema": "repro-sweep/2"})


class TestCampaignIntegration:
    def test_sweep_pipeline_configs_round_trip(self):
        configs = sweep_pipeline_configs(
            "tiny", scenarios=("prime_ladder",), balancers=("paper", "no_balancing")
        )
        assert len(configs) == scenario_scale("tiny").seeds * 2
        for config in configs:
            rebuilt = PipelineConfig.from_dict(json.loads(json.dumps(config.to_dict())))
            assert rebuilt == config

    def test_sweep_grid_runs_through_the_campaign_pool(self, tmp_path):
        from repro.experiments.campaign import run_pipeline_campaign

        configs = sweep_pipeline_configs(
            "tiny", scenarios=("single_processor",), balancers=("no_balancing",)
        )
        summary = run_pipeline_campaign(
            configs, output_dir=tmp_path / "camp", jobs=1, label="sweep"
        )
        assert summary.ok
        assert len(summary.records) == len(configs)
        manifest = json.loads(open(summary.records[0]["manifest"]).read())
        assert manifest["run_result"]["schema"] == "repro-run/1"


class TestCli:
    def test_sweep_clean_exit_and_artifact(self, tmp_path, capsys):
        out = tmp_path / "sweep.json"
        code = main(
            [
                "sweep",
                "--preset",
                "tiny",
                "--scenarios",
                "prime_ladder",
                "--balancers",
                "paper",
                "no_balancing",
                "--output",
                str(out),
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "finding(s)" in captured.out
        parsed = json.loads(out.read_text(), parse_constant=pytest.fail)
        assert parsed["ok"] is True

    def test_sweep_json_output_is_strict(self, capsys):
        code = main(
            [
                "sweep",
                "--scenarios",
                "single_processor",
                "--balancers",
                "no_balancing",
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out, parse_constant=pytest.fail)
        assert payload["schema"] == SWEEP_SCHEMA

    def test_list_mentions_scenarios(self, capsys):
        assert main(["list"]) == 0
        assert "prime_ladder" in capsys.readouterr().out
